//! Optimizers beyond plain SGD: momentum and weight decay (a natural
//! extension of the paper's training setup; the paper itself uses plain
//! batched SGD, which remains the default elsewhere).

use crate::checkpoint::{CheckpointError, LayerState};
use crate::net::Mlp;
use apa_gemm::Mat;

/// Configuration for SGD with optional momentum and L2 weight decay.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    pub lr: f32,
    /// 0.0 = plain SGD.
    pub momentum: f32,
    /// L2 penalty coefficient added to the weight gradient.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// Stateful optimizer holding per-layer velocity buffers.
pub struct Optimizer {
    pub cfg: SgdConfig,
    vel_w: Vec<Mat<f32>>,
    vel_b: Vec<Vec<f32>>,
}

impl Optimizer {
    /// Allocate velocity state matching `net`'s layers.
    pub fn new(cfg: SgdConfig, net: &Mlp) -> Self {
        let vel_w = net
            .layers
            .iter()
            .map(|l| Mat::zeros(l.inputs(), l.outputs()))
            .collect();
        let vel_b = net.layers.iter().map(|l| vec![0.0; l.outputs()]).collect();
        Self { cfg, vel_w, vel_b }
    }

    /// Copy out the velocity buffers for a checkpoint (same geometry as
    /// the layers they update).
    pub fn export_velocities(&self) -> Vec<LayerState> {
        self.vel_w
            .iter()
            .zip(&self.vel_b)
            .map(|(w, b)| LayerState {
                w: w.clone(),
                b: b.clone(),
            })
            .collect()
    }

    /// Restore velocity buffers from a checkpoint, refusing a geometry
    /// mismatch.
    pub fn restore_velocities(&mut self, saved: &[LayerState]) -> Result<(), CheckpointError> {
        let ok = saved.len() == self.vel_w.len()
            && saved
                .iter()
                .zip(&self.vel_w)
                .zip(&self.vel_b)
                .all(|((s, vw), vb)| {
                    (s.w.rows(), s.w.cols()) == (vw.rows(), vw.cols()) && s.b.len() == vb.len()
                });
        if !ok {
            return Err(CheckpointError::Mismatch {
                what: "optimizer velocity geometry differs from checkpoint".to_string(),
            });
        }
        for ((s, vw), vb) in saved.iter().zip(&mut self.vel_w).zip(&mut self.vel_b) {
            *vw = s.w.clone();
            vb.copy_from_slice(&s.b);
        }
        Ok(())
    }

    /// Consume the gradients stored by the last backward pass and update
    /// the weights: `v ← μ·v + (g + wd·w)`, `w ← w − lr·v`.
    pub fn step(&mut self, net: &mut Mlp) {
        assert_eq!(net.layers.len(), self.vel_w.len(), "optimizer/net mismatch");
        for (li, layer) in net.layers.iter_mut().enumerate() {
            let Some(gw) = layer.grad_w.take() else {
                continue;
            };
            let gb = layer.grad_b.take().unwrap_or_default();
            let vw = &mut self.vel_w[li];
            let (mu, wd, lr) = (self.cfg.momentum, self.cfg.weight_decay, self.cfg.lr);
            for ((v, &g), w) in vw
                .as_mut_slice()
                .iter_mut()
                .zip(gw.as_slice())
                .zip(layer.w.as_mut_slice())
            {
                *v = mu * *v + (g + wd * *w);
                *w -= lr * *v;
            }
            let vb = &mut self.vel_b[li];
            for ((v, &g), b) in vb.iter_mut().zip(&gb).zip(layer.b.iter_mut()) {
                *v = mu * *v + g;
                *b -= lr * *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::classical;
    use crate::loss::softmax_cross_entropy;
    use apa_gemm::Mat;

    fn toy_net() -> Mlp {
        Mlp::new(&[4, 8, 2], vec![classical(1); 2], 3)
    }

    fn toy_batch() -> (Mat<f32>, Vec<u8>) {
        let x = Mat::from_fn(6, 4, |i, j| {
            let c = (i % 2) as f32 * 2.0 - 1.0;
            c + (j as f32) * 0.05
        });
        let labels = (0..6).map(|i| (i % 2) as u8).collect();
        (x, labels)
    }

    fn train(cfg: SgdConfig, steps: usize) -> f32 {
        let mut net = toy_net();
        let mut opt = Optimizer::new(cfg, &net);
        let (x, labels) = toy_batch();
        let mut last = f32::MAX;
        for _ in 0..steps {
            let logits = net.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            last = loss;
            net.backward_only(&grad);
            opt.step(&mut net);
        }
        last
    }

    #[test]
    fn plain_sgd_reduces_loss() {
        let start = train(
            SgdConfig {
                lr: 0.0,
                ..Default::default()
            },
            1,
        );
        let end = train(
            SgdConfig {
                lr: 0.2,
                ..Default::default()
            },
            40,
        );
        assert!(end < start, "{end} !< {start}");
        assert!(end < 0.1, "loss should be near zero: {end}");
    }

    #[test]
    fn momentum_accelerates_on_this_problem() {
        let plain = train(
            SgdConfig {
                lr: 0.05,
                momentum: 0.0,
                weight_decay: 0.0,
            },
            15,
        );
        let momentum = train(
            SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            15,
        );
        assert!(
            momentum < plain,
            "momentum {momentum} should beat plain {plain} in few steps"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = toy_net();
        let norm = |n: &Mlp| -> f64 {
            n.layers[0]
                .w
                .as_slice()
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let before = norm(&net);
        // Zero gradient steps with decay only: weights must shrink.
        let mut opt = Optimizer::new(
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
            },
            &net,
        );
        let (x, labels) = toy_batch();
        let logits = net.forward(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        // Scale gradient to ~zero so decay dominates.
        let zero_grad = Mat::zeros(grad.rows(), grad.cols());
        net.backward_only(&zero_grad);
        opt.step(&mut net);
        let after = norm(&net);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn step_consumes_gradients() {
        let mut net = toy_net();
        let mut opt = Optimizer::new(SgdConfig::default(), &net);
        let (x, labels) = toy_batch();
        let logits = net.forward(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        net.backward_only(&grad);
        assert!(net.layers[0].grad_w.is_some());
        opt.step(&mut net);
        assert!(net.layers[0].grad_w.is_none());
    }
}
