//! Empirical error measurement (the paper's Fig. 1 metric).
//!
//! Relative Frobenius-norm error ‖C − Ĉ‖_F / ‖C‖_F, where Ĉ is the fast
//! algorithm's single-precision result and C the classical double-precision
//! reference — exactly the paper's §2.3 protocol.

use crate::peel::{fast_matmul_any_into, PeelMode};
use crate::plan::ExecPlan;
use crate::schedule::{FusionPolicy, Strategy};
use apa_core::BilinearAlgorithm;
use apa_gemm::{matmul, Mat};

/// Typed errors for the `multiply_into` family.
///
/// The engine's internal invariants stay `debug_assert`s, but *operand*
/// mismatches are caller bugs that must fail loudly in release builds too —
/// silently mis-partitioning a wrongly-shaped operand would corrupt the
/// output (or read out of bounds) with no diagnostic. `try_multiply_into`
/// surfaces these as values; the panicking entry points format them.
///
/// Execution failures are also typed: a panicked worker lane unwinds
/// cleanly out of the pool barrier and reaches the caller as
/// [`MatmulError::WorkerPanicked`]; a multiply that blew through the
/// configured watchdog deadline surfaces as [`MatmulError::LaneTimeout`].
/// Either way the instance stays usable — the next multiply succeeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatmulError {
    /// `A` is `m×k` but `B` is `k'×n` with `k ≠ k'`.
    InnerDimMismatch {
        a: (usize, usize),
        b: (usize, usize),
    },
    /// `C` storage does not match the `m×n` product shape.
    OutputShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// A gemm worker lane panicked during this multiply. The pool drained
    /// and was rebuilt; `C` may be partially written.
    WorkerPanicked { detail: String },
    /// The multiply exceeded the watchdog deadline (milliseconds shown)
    /// on every rung it was allowed to try.
    LaneTimeout { deadline_ms: u64 },
    /// The ABFT checksum tier found corruption in the classical floor's
    /// product that the scalar-tier recompute could not repair (the
    /// re-verification still failed) — there is no rung below to retry
    /// on and the output buffer cannot be trusted.
    SilentCorruption { regions: u64 },
}

impl std::fmt::Display for MatmulError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatmulError::InnerDimMismatch { a, b } => write!(
                f,
                "inner dimensions must match: A is {}x{}, B is {}x{}",
                a.0, a.1, b.0, b.1
            ),
            MatmulError::OutputShapeMismatch { expected, got } => write!(
                f,
                "output shape mismatch: product is {}x{}, C is {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            MatmulError::WorkerPanicked { detail } => {
                write!(f, "worker lane panicked: {detail}")
            }
            MatmulError::LaneTimeout { deadline_ms } => {
                write!(
                    f,
                    "multiply exceeded the {deadline_ms} ms watchdog deadline"
                )
            }
            MatmulError::SilentCorruption { regions } => {
                write!(
                    f,
                    "silent data corruption in {regions} region(s) of the classical \
                     floor's product could not be repaired"
                )
            }
        }
    }
}

impl std::error::Error for MatmulError {}

/// Validate the `(A, B, C)` operand shapes of a `C ← A·B` call.
pub(crate) fn check_operands(
    a: (usize, usize),
    b: (usize, usize),
    c: (usize, usize),
) -> Result<(), MatmulError> {
    if a.1 != b.0 {
        return Err(MatmulError::InnerDimMismatch { a, b });
    }
    if c != (a.0, b.1) {
        return Err(MatmulError::OutputShapeMismatch {
            expected: (a.0, b.1),
            got: c,
        });
    }
    Ok(())
}

/// Deterministic uniform(-1, 1) matrix (paper: "uniform random inputs").
pub fn uniform_mat_f32(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xD1B54A32D192ED03);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

/// Run `alg` at `lambda` on random n×n f32 inputs and return the relative
/// Frobenius error against the f64 classical reference.
pub fn measure_error(alg: &BilinearAlgorithm, lambda: f64, n: usize, steps: u32, seed: u64) -> f64 {
    let plan = ExecPlan::compile(alg, lambda);
    let a = uniform_mat_f32(n, n, seed);
    let b = uniform_mat_f32(n, n, seed.wrapping_add(1));

    let mut c_hat = Mat::<f32>::zeros(n, n);
    fast_matmul_any_into(
        &plan,
        a.as_ref(),
        b.as_ref(),
        c_hat.as_mut(),
        steps,
        Strategy::Seq,
        1,
        PeelMode::Dynamic,
        FusionPolicy::Auto,
    );

    // f64 classical reference (blocked kernel, double precision).
    let a64 = Mat::<f64>::from_fn(n, n, |i, j| a.at(i, j) as f64);
    let b64 = Mat::<f64>::from_fn(n, n, |i, j| b.at(i, j) as f64);
    let c_ref = matmul(a64.as_ref(), b64.as_ref());

    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let d = c_hat.at(i, j) as f64 - c_ref.at(i, j);
            num += d * d;
            den += c_ref.at(i, j) * c_ref.at(i, j);
        }
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::{catalog, error_model};

    #[test]
    fn operand_checks_catch_both_mismatch_kinds() {
        assert_eq!(check_operands((3, 4), (4, 5), (3, 5)), Ok(()));
        assert_eq!(
            check_operands((3, 4), (7, 5), (3, 5)),
            Err(MatmulError::InnerDimMismatch {
                a: (3, 4),
                b: (7, 5)
            })
        );
        assert_eq!(
            check_operands((3, 4), (4, 5), (3, 6)),
            Err(MatmulError::OutputShapeMismatch {
                expected: (3, 5),
                got: (3, 6)
            })
        );
        let msg = check_operands((3, 4), (7, 5), (3, 5))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("3x4") && msg.contains("7x5"), "{msg}");
    }

    #[test]
    fn classical_baseline_error_is_single_precision() {
        // gemm f32 vs f64 reference on n=64: error near 2^-23·√n growth.
        let alg = catalog::classical(apa_core::Dims::new(2, 2, 2));
        let e = measure_error(&alg, 0.0, 64, 0, 7);
        assert!(e > 1e-9 && e < 1e-5, "e = {e}");
    }

    #[test]
    fn bini_error_near_table1_prediction() {
        // Paper Table 1: ⟨3,2,2⟩ predicted error 3.5e-4 at the optimal λ.
        let alg = catalog::bini322();
        let lambda = error_model::optimal_lambda(1, 1, error_model::D_SINGLE, 1);
        let e = measure_error(&alg, lambda, 60, 1, 11);
        assert!(
            e > 1e-6 && e < 3.5e-3,
            "expected error within an order of the 3.5e-4 bound, got {e}"
        );
    }

    #[test]
    fn exact_fast_rules_stay_at_machine_precision() {
        let e = measure_error(&catalog::fast444(), 0.0, 64, 1, 13);
        assert!(e < 1e-5, "e = {e}");
    }

    #[test]
    fn lambda_too_small_amplifies_roundoff() {
        // λ far below optimal: the λ⁻¹ output scaling amplifies f32
        // roundoff, so error should exceed the tuned-λ error.
        let alg = catalog::bini322();
        let tuned = measure_error(&alg, 2.0_f64.powf(-11.5), 60, 1, 17);
        let tiny = measure_error(&alg, 2.0_f64.powi(-21), 60, 1, 17);
        assert!(
            tiny > tuned,
            "roundoff regime should dominate: tuned {tuned}, tiny-λ {tiny}"
        );
    }

    #[test]
    fn lambda_too_large_amplifies_truncation() {
        let alg = catalog::bini322();
        let tuned = measure_error(&alg, 2.0_f64.powf(-11.5), 60, 1, 19);
        let huge = measure_error(&alg, 2.0_f64.powi(-3), 60, 1, 19);
        assert!(
            huge > tuned * 10.0,
            "approximation regime should dominate: tuned {tuned}, huge-λ {huge}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let alg = catalog::bini322();
        let e1 = measure_error(&alg, 1e-3, 30, 1, 23);
        let e2 = measure_error(&alg, 1e-3, 30, 1, 23);
        assert_eq!(e1, e2);
    }
}
