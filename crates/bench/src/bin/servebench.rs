//! Serving throughput: dynamic batching vs unbatched request-at-a-time.
//!
//! A closed-loop load generator drives an [`apa_serve::InferenceService`]
//! twice with identical client pressure — once with `target_batch = 1`
//! (every request is its own 1-row forward pass) and once with the
//! default target (= input width, the square-ish shape the engine is
//! fastest at). The acceptance criterion (EXPERIMENTS.md) is ≥ 3×
//! throughput from batching at width 1024: a 1-row multiply re-streams
//! the full weight matrix per request, a width-row batch streams it once.
//!
//! Usage: `cargo run --release -p apa-bench --bin servebench
//!         [--width 1024] [--lanes 2] [--threads 1] [--clients 8]
//!         [--burst 0 (= target batch)] [--requests 0 (= 4×width)]
//!         [--backend classical|apa|guarded|planned]`

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_nn::{apa, classical, guarded, planned, Backend, Mlp};
use apa_serve::{InferenceService, Replica, ServeConfig, ServeError, ServeStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Load {
    width: usize,
    lanes: usize,
    clients: usize,
    /// Tickets each client keeps in flight before draining them.
    burst: usize,
    requests: usize,
}

fn make_backend(kind: &str, threads: usize) -> Backend {
    match kind {
        "classical" => classical(threads),
        "apa" => apa(catalog::bini322(), threads),
        "guarded" => guarded(catalog::bini322(), threads),
        "planned" => planned(threads),
        other => panic!("unknown --backend {other} (classical|apa|guarded|planned)"),
    }
}

fn make_replica(kind: &str, threads: usize, width: usize, seed: u64) -> Replica {
    let backend = make_backend(kind, threads);
    Replica::new(Mlp::new(
        &[width, width, 10],
        vec![backend.clone(), backend],
        seed,
    ))
}

/// Run one closed-loop measurement; returns (requests/s, final stats).
fn run_mode(kind: &str, threads: usize, target_batch: usize, load: &Load) -> (f64, ServeStats) {
    let replicas: Vec<Replica> = (0..load.lanes)
        .map(|lane| make_replica(kind, threads, load.width, 0xBEEF + lane as u64))
        .collect();
    // Warm a geometric ladder of batch sizes below the target so a
    // ragged batch pads to the nearest power of two instead of all the
    // way up — padding rows cost full multiply time for zero answers.
    let mut warm_batches = Vec::new();
    let mut b = 32;
    while target_batch != 0 && b < load.width {
        warm_batches.push(b);
        b *= 2;
    }
    let service = InferenceService::start(
        replicas,
        ServeConfig {
            target_batch,
            queue_capacity: (load.clients * load.burst * 2).max(64),
            max_linger: Duration::from_millis(2),
            warm_batches,
            ..ServeConfig::default()
        },
    );

    let remaining = Arc::new(AtomicUsize::new(load.requests));
    let input: Arc<Vec<f32>> = Arc::new((0..load.width).map(|i| (i as f32 * 0.13).sin()).collect());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..load.clients {
            let handle = service.handle();
            let remaining = remaining.clone();
            let input = input.clone();
            s.spawn(move || loop {
                // Claim up to a burst of the remaining work.
                let mut claimed = 0;
                while claimed < load.burst {
                    if remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    claimed += 1;
                }
                if claimed == 0 {
                    return;
                }
                let mut tickets = Vec::with_capacity(claimed);
                for _ in 0..claimed {
                    loop {
                        match handle.submit(input.as_ref().clone()) {
                            Ok(t) => break tickets.push(t),
                            Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
                for t in tickets {
                    t.wait().expect("inference failed under load");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, load.requests, "lost responses");
    (load.requests as f64 / elapsed, stats)
}

fn main() {
    let args = Args::parse();
    let width = args.get("width", 1024usize);
    let lanes = args.get("lanes", 2usize);
    let threads = args.get("threads", 1usize);
    let clients = args.get("clients", 8usize);
    let kind = args.get_str("backend").unwrap_or("classical").to_string();
    // Enough in-flight work to fill every lane's target batch twice over.
    let burst = match args.get("burst", 0usize) {
        0 => (2 * lanes * width).div_ceil(clients).max(1),
        b => b,
    };
    let requests = match args.get("requests", 0usize) {
        0 => 4 * width,
        r => r,
    };
    let load = Load {
        width,
        lanes,
        clients,
        burst,
        requests,
    };

    // What is this machine actually running? One merged report: kernel
    // dispatch tier, gemm blocking, planner cache state.
    println!("{}", apa_repro::diagnostics());

    banner(
        "Serving throughput: dynamic batching vs unbatched",
        &[
            &format!("MLP [{width}, {width}, 10], {kind} backend, {threads} thread(s)/lane"),
            &format!("{lanes} lane(s), {clients} closed-loop clients × burst {burst}"),
            &format!("{requests} requests per mode; criterion: batched ≥ 3× unbatched"),
        ],
    );

    let (unbatched_rps, unbatched) = run_mode(&kind, threads, 1, &load);
    let (batched_rps, batched) = run_mode(&kind, threads, 0, &load);
    let speedup = batched_rps / unbatched_rps;

    let header = [
        "mode",
        "req/s",
        "mean batch",
        "p50 ms",
        "p99 ms",
        "padded rows",
    ];
    let row = |name: &str, rps: f64, s: &ServeStats| {
        vec![
            name.to_string(),
            format!("{rps:.0}"),
            format!("{:.1}", s.mean_batch_rows()),
            format!("{:.2}", s.latency.p50().as_secs_f64() * 1e3),
            format!("{:.2}", s.latency.p99().as_secs_f64() * 1e3),
            format!("{}", s.padded_rows),
        ]
    };
    let rows = vec![
        row("unbatched", unbatched_rps, &unbatched),
        row("batched", batched_rps, &batched),
    ];
    print_table(&header, &rows);
    print_csv(&header, &rows);
    println!("\nbatching speedup: {speedup:.2}x (criterion: >= 3x at width 1024)");
}
