//! Construction search + non-stationary execution: derive the best
//! available rule for a shape automatically, then run a two-level chain of
//! different algorithms — the paper's §6 "uniform, non-stationary" idea.
//!
//! Run with: `cargo run --release --example derive_and_chain`

use apa_repro::core::{derive::DeriveTable, Dims};
use apa_repro::matmul::ApaChain;
use apa_repro::prelude::*;

fn random(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn main() {
    println!("== Construction search (apa-core::derive) ==");
    let table = DeriveTable::build(Dims::new(7, 7, 7));
    for (m, k, n) in [
        (4, 2, 2),
        (3, 3, 3),
        (5, 5, 2),
        (4, 4, 4),
        (6, 6, 6),
        (7, 7, 7),
    ] {
        let d = Dims::new(m, k, n);
        println!("  {}", table.explain(d).unwrap());
    }
    let best = table.materialize(Dims::new(6, 6, 6)).unwrap();
    println!(
        "\nmaterialized {}: ideal speedup {:.1}% (classical rank {})",
        best.summary(),
        best.ideal_speedup() * 100.0,
        6 * 6 * 6
    );

    println!("\n== Non-stationary chain (paper §6) ==");
    let n = 1008; // divisible by Bini ⊗ Strassen level dims (6, 4, 4)
    let a = random(n, 1);
    let b = random(n, 2);
    let classical = ClassicalMatmul::new();
    let t0 = std::time::Instant::now();
    let c_ref = classical.multiply(a.as_ref(), b.as_ref());
    let t_classical = t0.elapsed().as_secs_f64();

    let chain = ApaChain::new(vec![catalog::bini322(), catalog::strassen()]);
    let t1 = std::time::Instant::now();
    let c = chain.multiply(a.as_ref(), b.as_ref());
    let t_chain = t1.elapsed().as_secs_f64();
    println!(
        "  bini322 → strassen chain at n={n}: {t_chain:.3}s vs classical {t_classical:.3}s \
         ({:+.1}%), rel error {:.2e}",
        (t_classical / t_chain - 1.0) * 100.0,
        c.rel_frobenius_error(&c_ref)
    );
    println!("  (two levels: 10·7 = 70 multiplications instead of 12·8 = 96 classical blocks)");
}
