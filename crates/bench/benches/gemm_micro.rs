//! Criterion micro-benchmarks for the GEMM substrate: blocked vs naive,
//! packing, linear-combination kernels.

use apa_gemm::{combine, combine_axpy, gemm_st, matmul_naive, Mat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn probe(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in &[128usize, 256, 512] {
        let a = probe(n, 1);
        let b = probe(n, 2);
        let mut out = Mat::<f32>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut()));
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| matmul_naive(a.as_ref(), b.as_ref()));
            });
        }
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 512;
    let srcs: Vec<Mat<f32>> = (0..4).map(|s| probe(n, s + 10)).collect();
    let terms: Vec<(f32, _)> = srcs.iter().map(|m| (0.5f32, m.as_ref())).collect();
    let mut dst = Mat::<f32>::zeros(n, n);
    group.bench_function("write_once_4term", |b| {
        b.iter(|| combine(dst.as_mut(), false, &terms));
    });
    group.bench_function("chained_axpy_4term", |b| {
        b.iter(|| combine_axpy(dst.as_mut(), false, &terms));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_combine);
criterion_main!(benches);
