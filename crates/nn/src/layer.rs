//! Dense (fully connected) layers with pluggable matmul backends.
//!
//! Forward:  `Z = X·W + b`, `A = act(Z)` with `X: batch×in`, `W: in×out`.
//! Backward: `dZ = dA ⊙ act'(Z)`, `dW = Xᵀ·dZ`, `db = Σ_rows dZ`,
//!           `dX = dZ·Wᵀ`.
//!
//! The three matmuls (`X·W`, `Xᵀ·dZ`, `dZ·Wᵀ`) all route through the
//! layer's backend — exactly the multiplications the paper replaces with
//! APA operators in both propagation directions (§4.2).

use crate::backend::Backend;
use crate::tensor::{add_bias_rows, axpy, col_sums, relu_backward_inplace};
use apa_gemm::{transpose_into, Mat, MatRef};

/// Activation applied after the affine map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    /// No activation — used for the output layer feeding softmax-CE.
    Identity,
}

/// A dense layer with cached forward state for backpropagation.
pub struct Dense {
    /// `in × out` weights.
    pub w: Mat<f32>,
    /// `out` biases.
    pub b: Vec<f32>,
    pub activation: Activation,
    backend: Backend,
    // Cached from the last forward pass (buffers are reused across steps
    // at a fixed batch size, so steady-state training doesn't reallocate
    // them):
    input: Option<Mat<f32>>,
    pre_activation: Option<Mat<f32>>,
    // Backward-pass scratch, likewise reused across steps: dZ plus the
    // materialized Xᵀ/Wᵀ operands of the gradient multiplications.
    dz_buf: Mat<f32>,
    xt_buf: Mat<f32>,
    wt_buf: Mat<f32>,
    // Last computed gradients:
    pub grad_w: Option<Mat<f32>>,
    pub grad_b: Option<Vec<f32>>,
}

impl Dense {
    /// He-style initialization scaled for ReLU stacks, deterministic in
    /// `seed` (the reproduction needs bit-identical reruns).
    pub fn new(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        backend: Backend,
        seed: u64,
    ) -> Self {
        let scale = (2.0 / inputs as f64).sqrt();
        let mut state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0x2545F4914F6CDD1D);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        };
        let w = Mat::from_fn(inputs, outputs, |_, _| (next() * scale) as f32);
        Self {
            w,
            b: vec![0.0; outputs],
            activation,
            backend,
            input: None,
            pre_activation: None,
            dz_buf: Mat::zeros(0, 0),
            xt_buf: Mat::zeros(0, 0),
            wt_buf: Mat::zeros(0, 0),
            grad_w: None,
            grad_b: None,
        }
    }

    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    pub fn backend_name(&self) -> String {
        self.backend.name()
    }

    /// Shared handle to the layer's current backend — used by the
    /// fallback-rerun path in [`crate::net::Mlp::train_batch`] to restore
    /// the original backends after a demoted step.
    pub fn backend(&self) -> Backend {
        self.backend.clone()
    }

    /// Swap the matmul backend (e.g. classical → APA) without touching the
    /// weights — used by the experiment harnesses to compare algorithms on
    /// identical networks.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Forward pass; caches `X` and `Z` for the backward pass. The cached
    /// buffers from the previous step are reused in place whenever the
    /// shapes still fit.
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        assert_eq!(x.cols(), self.inputs(), "input width mismatch");
        let mut z = self
            .pre_activation
            .take()
            .unwrap_or_else(|| Mat::zeros(0, 0));
        z.resize(x.rows(), self.outputs());
        self.backend
            .matmul_into(x.as_ref(), self.w.as_ref(), z.as_mut());
        add_bias_rows(&mut z, &self.b);
        let a = match self.activation {
            Activation::Relu => {
                let mut a = z.clone();
                for v in a.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                a
            }
            Activation::Identity => z.clone(),
        };
        let mut xin = self.input.take().unwrap_or_else(|| Mat::zeros(0, 0));
        xin.resize(x.rows(), x.cols());
        xin.as_mut().copy_from(x.as_ref());
        self.input = Some(xin);
        self.pre_activation = Some(z);
        a
    }

    /// Inference-only forward: no caching, no clone of the input.
    pub fn forward_inference(&self, x: &Mat<f32>) -> Mat<f32> {
        let mut z = Mat::zeros(x.rows(), self.outputs());
        self.forward_inference_into(x.as_ref(), &mut z);
        z
    }

    /// Inference-only forward into a caller-owned output buffer (resized
    /// to `batch × outputs` in place). At a steady batch size the buffer —
    /// like the backend's workspace cache — is reused across calls, so the
    /// serving hot path performs no per-request heap allocation. Bitwise
    /// identical to [`Self::forward_inference`].
    pub fn forward_inference_into(&self, x: MatRef<'_, f32>, out: &mut Mat<f32>) {
        assert_eq!(x.cols(), self.inputs(), "input width mismatch");
        out.resize(x.rows(), self.outputs());
        self.backend.matmul_into(x, self.w.as_ref(), out.as_mut());
        add_bias_rows(out, &self.b);
        if self.activation == Activation::Relu {
            for v in out.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Warm the backend for the inference shapes of the given batch sizes
    /// (`batch × in · in × out`), so the first real forward pass at any of
    /// them is allocation-free. Must run on the inference thread — the
    /// gemm pack buffers it settles are thread-local.
    pub fn warm(&self, batch_sizes: &[usize]) {
        for &b in batch_sizes {
            self.backend.warm(&[(b, self.inputs(), self.outputs())]);
        }
    }

    /// Backward pass from `dA` (gradient w.r.t. this layer's output);
    /// stores `dW`/`db` and returns `dX`.
    pub fn backward(&mut self, grad_out: &Mat<f32>) -> Mat<f32> {
        let Self {
            w,
            activation,
            backend,
            input,
            pre_activation,
            dz_buf,
            xt_buf,
            wt_buf,
            grad_w,
            grad_b,
            ..
        } = self;
        let x = input
            .as_ref()
            .expect("backward() requires a prior forward()");
        let z = pre_activation.as_ref().unwrap();
        dz_buf.resize(grad_out.rows(), grad_out.cols());
        dz_buf.as_mut().copy_from(grad_out.as_ref());
        if *activation == Activation::Relu {
            relu_backward_inplace(dz_buf, z);
        }
        // dW = Xᵀ·dZ, db = column sums, dX = dZ·Wᵀ — all through the
        // layer's backend, exactly the gradient multiplications the paper
        // replaces with APA operators. The transposes are materialized into
        // the layer's reusable scratch so steady-state steps don't
        // reallocate them (the backend's own intermediates are likewise
        // reused via its workspace cache).
        xt_buf.resize(x.cols(), x.rows());
        transpose_into(x.as_ref(), xt_buf.as_mut());
        let dw = backend.matmul(xt_buf.as_ref(), dz_buf.as_ref());
        let db = col_sums(dz_buf.as_ref());
        wt_buf.resize(w.cols(), w.rows());
        transpose_into(w.as_ref(), wt_buf.as_mut());
        let dx = backend.matmul(dz_buf.as_ref(), wt_buf.as_ref());
        *grad_w = Some(dw);
        *grad_b = Some(db);
        dx
    }

    /// SGD step: `W ← W − lr·dW`, `b ← b − lr·db`.
    pub fn apply_sgd(&mut self, lr: f32) {
        if let Some(dw) = self.grad_w.take() {
            axpy(-lr, &dw, &mut self.w);
        }
        if let Some(db) = self.grad_b.take() {
            for (b, &g) in self.b.iter_mut().zip(&db) {
                *b -= lr * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::classical;

    fn layer(inputs: usize, outputs: usize, act: Activation) -> Dense {
        Dense::new(inputs, outputs, act, classical(1), 42)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer(4, 3, Activation::Identity);
        l.b = vec![1.0, 2.0, 3.0];
        let x = Mat::zeros(2, 4);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (2, 3));
        // Zero inputs → output equals bias.
        assert_eq!(y.at(0, 0), 1.0);
        assert_eq!(y.at(1, 2), 3.0);
    }

    #[test]
    fn relu_clamps_negative_preactivations() {
        let mut l = layer(1, 2, Activation::Relu);
        l.w = Mat::from_vec(1, 2, vec![1.0, -1.0]);
        let x = Mat::from_vec(1, 1, vec![2.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dW on a tiny layer with L = Σ output.
        let mut l = layer(3, 2, Activation::Relu);
        let x = Mat::from_fn(4, 3, |i, j| ((i + j) as f32 * 0.3) - 0.4);
        let y = l.forward(&x);
        let ones = Mat::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        l.backward(&ones);
        let analytic = l.grad_w.clone().unwrap();

        let eps = 1e-3f32;
        for (wi, wj) in [(0, 0), (1, 1), (2, 0)] {
            let orig = l.w.at(wi, wj);
            l.w.set(wi, wj, orig + eps);
            let lp: f32 = l.forward_inference(&x).as_slice().iter().sum();
            l.w.set(wi, wj, orig - eps);
            let lm: f32 = l.forward_inference(&x).as_slice().iter().sum();
            l.w.set(wi, wj, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.at(wi, wj);
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dW[{wi}][{wj}]: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut l = layer(3, 2, Activation::Identity);
        let x = Mat::from_fn(2, 3, |i, j| (i as f32 - j as f32) * 0.25);
        let _ = l.forward(&x);
        let ones = Mat::from_fn(2, 2, |_, _| 1.0);
        let dx = l.backward(&ones);
        // With identity activation and all-ones upstream gradient,
        // dX[i][j] = Σ_o W[j][o].
        for i in 0..2 {
            for j in 0..3 {
                let expect: f32 = (0..2).map(|o| l.w.at(j, o)).sum();
                assert!((dx.at(i, j) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn sgd_moves_weights_against_gradient() {
        let mut l = layer(2, 2, Activation::Identity);
        let x = Mat::from_fn(1, 2, |_, _| 1.0);
        let _ = l.forward(&x);
        let g = Mat::from_fn(1, 2, |_, _| 1.0);
        l.backward(&g);
        let before = l.w.at(0, 0);
        let dw00 = l.grad_w.as_ref().unwrap().at(0, 0);
        l.apply_sgd(0.1);
        assert!((l.w.at(0, 0) - (before - 0.1 * dw00)).abs() < 1e-6);
        assert!(l.grad_w.is_none(), "gradients consumed by the step");
    }

    #[test]
    fn deterministic_initialization() {
        let l1 = layer(5, 5, Activation::Relu);
        let l2 = layer(5, 5, Activation::Relu);
        assert_eq!(l1.w, l2.w);
    }
}
