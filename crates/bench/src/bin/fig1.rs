//! Figure 1 — relative Frobenius-norm error of the APA algorithms on
//! uniform random inputs, across matrix dimension.
//!
//! Protocol (paper §2.3): f32 algorithms vs the f64 classical reference;
//! per algorithm, λ is tuned over the 5 powers of 2 nearest the
//! theoretical optimum. The paper sweeps n up to ~10k and observes (a)
//! little fluctuation over dimension, (b) the error ordering follows the
//! (σ, φ) parameters, (c) the theoretical bound is an upper bound.
//!
//! Usage: `cargo run --release -p apa-bench --bin fig1 [--full] [--tune-n N]`
//!   default dims: 256 512 768 1024; --full adds 1536 2048 3072 4096.

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::{catalog, error_model};
use apa_matmul::{measure_error, tune_lambda};

fn main() {
    let args = Args::parse();
    let mut dims = vec![256usize, 512, 768, 1024];
    if args.flag("full") {
        dims.extend([1536, 2048, 3072, 4096]);
    }
    let tune_n = args.get("tune-n", 240usize);

    banner(
        "Figure 1: relative Frobenius error vs dimension (f32 vs f64 classical)",
        &[
            "lambda tuned per algorithm over the 5 nearest powers of 2 (paper protocol)",
            &format!("dims: {dims:?}; tuning probe n = {tune_n}"),
        ],
    );

    let mut algs = vec![catalog::classical(apa_core::Dims::new(2, 2, 2))];
    algs.extend(catalog::paper_lineup());

    let mut header: Vec<String> = vec!["algorithm".into(), "lambda".into(), "bound".into()];
    header.extend(dims.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for alg in &algs {
        let tuned = tune_lambda(alg, tune_n, 1, 0xF16);
        let t1 = error_model::table1_row(alg);
        let mut row = vec![
            alg.name.clone(),
            if tuned.lambda == 0.0 {
                "-".into()
            } else {
                format!("2^{:.0}", tuned.lambda.log2())
            },
            format!("{:.1e}", t1.error),
        ];
        for &n in &dims {
            let e = measure_error(alg, tuned.lambda, n, 1, 0xF1A);
            row.push(format!("{e:.1e}"));
        }
        rows.push(row);
        eprintln!("  measured {}", alg.name);
    }

    print_table(&header_refs, &rows);
    println!();
    print_csv(&header_refs, &rows);
    println!();
    println!("expected shape (paper): errors flat in n; ordering follows sigma/(sigma+phi);");
    println!("bound column upper-bounds every measured value; classical sits at ~1e-7·sqrt(n).");
}
