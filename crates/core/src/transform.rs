//! Correctness-preserving transformations of bilinear rules.
//!
//! The paper (§6) notes that an algorithm for ⟨m,n,k⟩ can be translated to
//! any reordering of the dimensions; together with direct sums and tensor
//! (Kronecker) products these transformations let us *derive* provably
//! correct APA rules for every base shape in the paper's Table 1 starting
//! from the two fully published rules (Bini ⟨3,2,2;10⟩ and Strassen
//! ⟨2,2,2;7⟩). Every transformation output is machine-checkable with
//! [`crate::brent::validate`], and the unit tests here do exactly that.

use crate::bilinear::{BilinearAlgorithm, Dims};
use crate::coeffs::CoeffMatrix;

/// Cyclic rotation ⟨m,k,n⟩ → ⟨k,n,m⟩.
///
/// Follows from the symmetry of the trilinear form `tr(A·B·C)`: the roles
/// (U, V, W) rotate to (V, W̃, Ũ) with the appropriate transposed index
/// flattenings. φ is invariant (the per-triplet sum of negative degrees
/// does not change when the triple is rotated).
pub fn rotate(alg: &BilinearAlgorithm) -> BilinearAlgorithm {
    let Dims { m, k, n } = alg.dims;
    let new_dims = Dims::new(k, n, m);
    let r = alg.rank();

    // U' = V verbatim: A' (k×n) flattens (a,j) → a·n+j exactly like B did.
    let u = alg.v.clone();
    // V'[(j,i)] = W[(i,j)]: B' is n×m, row j·m+i ← W row i·n+j.
    let mut v = CoeffMatrix::zeros(n * m, r);
    for t in 0..r {
        for (rw, p) in alg.w.col(t) {
            let (i, j) = (rw / n, rw % n);
            v.add(j * m + i, t, p);
        }
    }
    // W'[(a,i)] = U[(i,a)]: C' is k×m, row a·m+i ← U row i·k+a.
    let mut w = CoeffMatrix::zeros(k * m, r);
    for t in 0..r {
        for (ru, p) in alg.u.col(t) {
            let (i, a) = (ru / k, ru % k);
            w.add(a * m + i, t, p);
        }
    }
    BilinearAlgorithm::new(format!("{}~rot", alg.name), new_dims, u, v, w)
}

/// Transpose dual ⟨m,k,n⟩ → ⟨n,k,m⟩ via `Cᵀ = Bᵀ·Aᵀ`.
pub fn transpose_dual(alg: &BilinearAlgorithm) -> BilinearAlgorithm {
    let Dims { m, k, n } = alg.dims;
    let new_dims = Dims::new(n, k, m);
    let r = alg.rank();

    // U'[(j,a)] = V[(a,j)]: A' = Bᵀ is n×k.
    let mut u = CoeffMatrix::zeros(n * k, r);
    for t in 0..r {
        for (rv, p) in alg.v.col(t) {
            let (a, j) = (rv / n, rv % n);
            u.add(j * k + a, t, p);
        }
    }
    // V'[(a,i)] = U[(i,a)]: B' = Aᵀ is k×m.
    let mut v = CoeffMatrix::zeros(k * m, r);
    for t in 0..r {
        for (ru, p) in alg.u.col(t) {
            let (i, a) = (ru / k, ru % k);
            v.add(a * m + i, t, p);
        }
    }
    // W'[(j,i)] = W[(i,j)]: C' = Cᵀ is n×m.
    let mut w = CoeffMatrix::zeros(n * m, r);
    for t in 0..r {
        for (rw, p) in alg.w.col(t) {
            let (i, j) = (rw / n, rw % n);
            w.add(j * m + i, t, p);
        }
    }
    BilinearAlgorithm::new(format!("{}~T", alg.name), new_dims, u, v, w)
}

/// A permutation of the three dimensions, as positions of (m, k, n) in the
/// target triple. `Perm::MKN` is the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Perm {
    Mkn,
    Knm,
    Nmk,
    Nkm,
    Mnk,
    Kmn,
}

/// Apply an arbitrary dimension permutation by composing [`rotate`] and
/// [`transpose_dual`]. The resulting dims are the source dims reordered.
pub fn permute(alg: &BilinearAlgorithm, perm: Perm) -> BilinearAlgorithm {
    match perm {
        Perm::Mkn => alg.clone(),
        Perm::Knm => rotate(alg),
        Perm::Nmk => rotate(&rotate(alg)),
        Perm::Nkm => transpose_dual(alg),
        Perm::Kmn => rotate(&transpose_dual(alg)),
        Perm::Mnk => rotate(&rotate(&transpose_dual(alg))),
    }
}

/// Direct sum along m: given P for ⟨m1,k,n⟩ and Q for ⟨m2,k,n⟩, build the
/// rule for ⟨m1+m2,k,n⟩ of rank r1+r2 that computes the two row-blocks of
/// `C` independently (paper-style block splitting, used to pad shapes).
pub fn direct_sum_m(p: &BilinearAlgorithm, q: &BilinearAlgorithm) -> BilinearAlgorithm {
    assert_eq!(p.dims.k, q.dims.k, "direct_sum_m requires equal k");
    assert_eq!(p.dims.n, q.dims.n, "direct_sum_m requires equal n");
    let (m1, k, n) = (p.dims.m, p.dims.k, p.dims.n);
    let m2 = q.dims.m;
    let dims = Dims::new(m1 + m2, k, n);

    let u1 = p.u.map_rows(dims.m * k, |r| r); // rows (i,a), i < m1: unchanged flattening
    let u2 = q.u.map_rows(dims.m * k, |r| {
        let (i, a) = (r / k, r % k);
        (i + m1) * k + a
    });
    let v = p.v.hcat(&q.v);
    let w1 = p.w.map_rows(dims.m * n, |r| r);
    let w2 = q.w.map_rows(dims.m * n, |r| {
        let (i, j) = (r / n, r % n);
        (i + m1) * n + j
    });
    BilinearAlgorithm::new(
        format!("{}+{}", p.name, q.name),
        dims,
        u1.hcat(&u2),
        v,
        w1.hcat(&w2),
    )
}

/// Direct sum along n: ⟨m,k,n1⟩ ⊕ ⟨m,k,n2⟩ → ⟨m,k,n1+n2⟩ (column blocks of
/// `B` and `C` computed independently).
pub fn direct_sum_n(p: &BilinearAlgorithm, q: &BilinearAlgorithm) -> BilinearAlgorithm {
    assert_eq!(p.dims.m, q.dims.m, "direct_sum_n requires equal m");
    assert_eq!(p.dims.k, q.dims.k, "direct_sum_n requires equal k");
    let (m, k, n1) = (p.dims.m, p.dims.k, p.dims.n);
    let n2 = q.dims.n;
    let n = n1 + n2;
    let dims = Dims::new(m, k, n);

    let u = p.u.hcat(&q.u);
    let v1 = p.v.map_rows(k * n, |r| {
        let (a, j) = (r / n1, r % n1);
        a * n + j
    });
    let v2 = q.v.map_rows(k * n, |r| {
        let (a, j) = (r / n2, r % n2);
        a * n + j + n1
    });
    let w1 = p.w.map_rows(m * n, |r| {
        let (i, j) = (r / n1, r % n1);
        i * n + j
    });
    let w2 = q.w.map_rows(m * n, |r| {
        let (i, j) = (r / n2, r % n2);
        i * n + j + n1
    });
    BilinearAlgorithm::new(
        format!("{}|{}", p.name, q.name),
        dims,
        u,
        v1.hcat(&v2),
        w1.hcat(&w2),
    )
}

/// Direct sum along k: ⟨m,k1,n⟩ ⊕ ⟨m,k2,n⟩ → ⟨m,k1+k2,n⟩. Here the two
/// partial products write into the *same* `C` and their contributions add.
pub fn direct_sum_k(p: &BilinearAlgorithm, q: &BilinearAlgorithm) -> BilinearAlgorithm {
    assert_eq!(p.dims.m, q.dims.m, "direct_sum_k requires equal m");
    assert_eq!(p.dims.n, q.dims.n, "direct_sum_k requires equal n");
    let (m, k1, n) = (p.dims.m, p.dims.k, p.dims.n);
    let k2 = q.dims.k;
    let k = k1 + k2;
    let dims = Dims::new(m, k, n);

    let u1 = p.u.map_rows(m * k, |r| {
        let (i, a) = (r / k1, r % k1);
        i * k + a
    });
    let u2 = q.u.map_rows(m * k, |r| {
        let (i, a) = (r / k2, r % k2);
        i * k + a + k1
    });
    let v1 = p.v.map_rows(k * n, |r| r); // rows (a,j), a < k1: unchanged
    let v2 = q.v.map_rows(k * n, |r| {
        let (a, j) = (r / n, r % n);
        (a + k1) * n + j
    });
    let w = p.w.hcat(&q.w);
    BilinearAlgorithm::new(
        format!("{}&{}", p.name, q.name),
        dims,
        u1.hcat(&u2),
        v1.hcat(&v2),
        w,
    )
}

/// Tensor (Kronecker) product: ⟨m1,k1,n1;r1⟩ ⊗ ⟨m2,k2,n2;r2⟩ →
/// ⟨m1m2, k1k2, n1n2; r1r2⟩. Strassen ⊗ Strassen is the classic ⟨4,4,4;49⟩;
/// Bini ⊗ its two rotations is the historic ⟨12,12,12;1000⟩ behind
/// O(n^2.7799).
pub fn tensor(p: &BilinearAlgorithm, q: &BilinearAlgorithm) -> BilinearAlgorithm {
    let (d1, d2) = (p.dims, q.dims);
    let dims = Dims::new(d1.m * d2.m, d1.k * d2.k, d1.n * d2.n);

    let u = p.u.tensor(&q.u, dims.m * dims.k, |r1, r2| {
        let (i1, a1) = (r1 / d1.k, r1 % d1.k);
        let (i2, a2) = (r2 / d2.k, r2 % d2.k);
        (i1 * d2.m + i2) * dims.k + (a1 * d2.k + a2)
    });
    let v = p.v.tensor(&q.v, dims.k * dims.n, |r1, r2| {
        let (a1, j1) = (r1 / d1.n, r1 % d1.n);
        let (a2, j2) = (r2 / d2.n, r2 % d2.n);
        (a1 * d2.k + a2) * dims.n + (j1 * d2.n + j2)
    });
    let w = p.w.tensor(&q.w, dims.m * dims.n, |r1, r2| {
        let (i1, j1) = (r1 / d1.n, r1 % d1.n);
        let (i2, j2) = (r2 / d2.n, r2 % d2.n);
        (i1 * d2.m + i2) * dims.n + (j1 * d2.n + j2)
    });
    BilinearAlgorithm::new(format!("{}x{}", p.name, q.name), dims, u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brent::validate;
    use crate::catalog;

    #[test]
    fn rotate_classical_is_valid() {
        let c = catalog::classical(Dims::new(2, 3, 4));
        let r = rotate(&c);
        assert_eq!(r.dims, Dims::new(3, 4, 2));
        assert_eq!(r.rank(), c.rank());
        assert!(validate(&r).unwrap().exact);
    }

    #[test]
    fn rotate_three_times_is_identity_dims() {
        let c = catalog::strassen();
        let r3 = rotate(&rotate(&rotate(&c)));
        assert_eq!(r3.dims, c.dims);
        assert!(validate(&r3).unwrap().exact);
    }

    #[test]
    fn transpose_dual_is_valid() {
        let c = catalog::classical(Dims::new(2, 3, 4));
        let t = transpose_dual(&c);
        assert_eq!(t.dims, Dims::new(4, 3, 2));
        assert!(validate(&t).unwrap().exact);
    }

    #[test]
    fn all_six_permutations_of_bini_validate() {
        let b = catalog::bini322();
        for perm in [
            Perm::Mkn,
            Perm::Knm,
            Perm::Nmk,
            Perm::Nkm,
            Perm::Mnk,
            Perm::Kmn,
        ] {
            let p = permute(&b, perm);
            let report =
                validate(&p).unwrap_or_else(|e| panic!("perm {perm:?} failed validation: {e}"));
            assert_eq!(report.sigma, Some(1), "perm {perm:?} should stay σ=1");
            assert_eq!(p.rank(), 10);
            assert_eq!(p.phi(), b.phi(), "φ must be permutation-invariant");
        }
    }

    #[test]
    fn permutations_cover_expected_dims() {
        // Use pairwise-distinct dims so every permutation is unambiguous.
        let c = catalog::classical(Dims::new(2, 3, 4)); // (m,k,n) = (2,3,4)
        assert_eq!(permute(&c, Perm::Mkn).dims, Dims::new(2, 3, 4));
        assert_eq!(permute(&c, Perm::Knm).dims, Dims::new(3, 4, 2));
        assert_eq!(permute(&c, Perm::Nmk).dims, Dims::new(4, 2, 3));
        assert_eq!(permute(&c, Perm::Nkm).dims, Dims::new(4, 3, 2));
        assert_eq!(permute(&c, Perm::Kmn).dims, Dims::new(3, 2, 4));
        assert_eq!(permute(&c, Perm::Mnk).dims, Dims::new(2, 4, 3));
        for p in [Perm::Knm, Perm::Nmk, Perm::Nkm, Perm::Kmn, Perm::Mnk] {
            assert!(validate(&permute(&c, p)).unwrap().exact, "{p:?}");
        }
    }

    #[test]
    fn direct_sum_m_is_valid() {
        let p = catalog::bini322();
        let q = catalog::classical(Dims::new(1, 2, 2));
        let s = direct_sum_m(&p, &q);
        assert_eq!(s.dims, Dims::new(4, 2, 2));
        assert_eq!(s.rank(), 14);
        let r = validate(&s).unwrap();
        assert_eq!(r.sigma, Some(1));
    }

    #[test]
    fn direct_sum_n_is_valid() {
        let p = catalog::classical(Dims::new(2, 2, 1));
        let q = catalog::strassen();
        let s = direct_sum_n(&p, &q);
        assert_eq!(s.dims, Dims::new(2, 2, 3));
        assert_eq!(s.rank(), 4 + 7);
        assert!(validate(&s).unwrap().exact);
    }

    #[test]
    fn direct_sum_k_is_valid() {
        let p = catalog::strassen();
        let q = catalog::classical(Dims::new(2, 1, 2));
        let s = direct_sum_k(&p, &q);
        assert_eq!(s.dims, Dims::new(2, 3, 2));
        assert_eq!(s.rank(), 11);
        assert!(validate(&s).unwrap().exact);
    }

    #[test]
    fn direct_sum_k_with_bini_is_apa() {
        let p = catalog::bini322();
        let q = catalog::classical(Dims::new(3, 1, 2));
        let s = direct_sum_k(&p, &q);
        assert_eq!(s.dims, Dims::new(3, 3, 2));
        assert_eq!(s.rank(), 16);
        assert_eq!(validate(&s).unwrap().sigma, Some(1));
    }

    #[test]
    fn tensor_strassen_strassen_is_444_49() {
        let s = catalog::strassen();
        let t = tensor(&s, &s);
        assert_eq!(t.dims, Dims::new(4, 4, 4));
        assert_eq!(t.rank(), 49);
        assert!(validate(&t).unwrap().exact);
        assert!(t.ideal_speedup() > 0.30 && t.ideal_speedup() < 0.31);
    }

    #[test]
    fn tensor_bini_with_trivial_is_valid_apa() {
        let b = catalog::bini322();
        let t2 = catalog::classical(Dims::new(1, 1, 2));
        let t = tensor(&b, &t2);
        assert_eq!(t.dims, Dims::new(3, 2, 4));
        assert_eq!(t.rank(), 20);
        assert_eq!(validate(&t).unwrap().sigma, Some(1));
    }

    #[test]
    fn tensor_of_two_apa_rules_validates() {
        let b = catalog::bini322();
        let rb = rotate(&b);
        let t = tensor(&b, &rb);
        assert_eq!(t.dims, Dims::new(6, 4, 6));
        assert_eq!(t.rank(), 100);
        let r = validate(&t).unwrap();
        assert_eq!(r.sigma, Some(1));
        // φ of a tensor product adds per-factor contributions.
        assert!(t.phi() >= b.phi());
    }
}
