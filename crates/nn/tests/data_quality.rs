//! Dataset-quality tests: the synthetic MNIST substitution must actually
//! carry class signal (DESIGN.md §2), and the IDX loader must round-trip
//! through real files on disk.

use apa_gemm::Mat;
use apa_nn::{load_mnist_idx, synthetic_mnist, Dataset};
use std::fs;

/// Nearest-centroid accuracy — a classifier-free measure of class signal.
fn nearest_centroid_accuracy(train: &Dataset, test: &Dataset) -> f64 {
    let f = train.features();
    let classes = train.num_classes();
    let mut centroids = vec![vec![0.0f64; f]; classes];
    let mut counts = vec![0usize; classes];
    for i in 0..train.len() {
        let c = train.labels()[i] as usize;
        counts[c] += 1;
        for (acc, &v) in centroids[c]
            .iter_mut()
            .zip(&train.images().as_slice()[i * f..(i + 1) * f])
        {
            *acc += v as f64;
        }
    }
    for (c, count) in counts.iter().enumerate() {
        for v in &mut centroids[c.min(classes - 1)] {
            *v /= (*count).max(1) as f64;
        }
    }
    let mut correct = 0usize;
    for i in 0..test.len() {
        let row = &test.images().as_slice()[i * f..(i + 1) * f];
        let mut best = (f64::MAX, 0usize);
        for (c, centroid) in centroids.iter().enumerate() {
            let d: f64 = row
                .iter()
                .zip(centroid)
                .map(|(&x, &m)| (x as f64 - m) * (x as f64 - m))
                .sum();
            if d < best.0 {
                best = (d, c);
            }
        }
        if best.1 == test.labels()[i] as usize {
            correct += 1;
        }
    }
    correct as f64 / test.len() as f64
}

#[test]
fn synthetic_digits_carry_strong_class_signal() {
    let all = synthetic_mnist(600, 0xD161);
    let (train, test) = all.split_at(500);
    let acc = nearest_centroid_accuracy(&train, &test);
    // Chance is 0.1. The ±2px translation jitter blurs pixel-space
    // centroids (MNIST gives ~0.8 under this classifier; trained MLPs
    // reach ~1.0 on this data), so 0.6 is the class-signal floor.
    assert!(acc > 0.6, "nearest-centroid accuracy only {acc}");
}

#[test]
fn per_class_image_variability_is_nonzero() {
    // Jitter matters: two samples of the same class must differ, or the
    // accuracy experiment degenerates to memorization.
    let ds = synthetic_mnist(40, 3);
    let f = ds.features();
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); 10];
    for i in 0..ds.len() {
        per_class[ds.labels()[i] as usize].push(i);
    }
    for (c, idxs) in per_class.iter().enumerate() {
        if idxs.len() < 2 {
            continue;
        }
        let a = &ds.images().as_slice()[idxs[0] * f..(idxs[0] + 1) * f];
        let b = &ds.images().as_slice()[idxs[1] * f..(idxs[1] + 1) * f];
        let diff: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            diff > 1.0,
            "class {c}: two samples nearly identical (diff {diff})"
        );
    }
}

#[test]
fn idx_files_roundtrip_on_disk() {
    // Write a miniature MNIST-format dataset to a temp dir, load it back
    // through the public loader.
    let dir = std::env::temp_dir().join(format!("apa-idx-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();

    let write_images = |name: &str, imgs: &Mat<f32>| {
        let mut buf = vec![0u8, 0, 8, 3];
        buf.extend_from_slice(&(imgs.rows() as u32).to_be_bytes());
        buf.extend_from_slice(&28u32.to_be_bytes());
        buf.extend_from_slice(&28u32.to_be_bytes());
        for &v in imgs.as_slice() {
            buf.push((v * 255.0).round().clamp(0.0, 255.0) as u8);
        }
        fs::write(dir.join(name), buf).unwrap();
    };
    let write_labels = |name: &str, labels: &[u8]| {
        let mut buf = vec![0u8, 0, 8, 1];
        buf.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        buf.extend_from_slice(labels);
        fs::write(dir.join(name), buf).unwrap();
    };

    let ds = synthetic_mnist(20, 9);
    let (train, test) = ds.split_at(15);
    write_images("train-images-idx3-ubyte", train.images());
    write_labels("train-labels-idx1-ubyte", train.labels());
    write_images("t10k-images-idx3-ubyte", test.images());
    write_labels("t10k-labels-idx1-ubyte", test.labels());

    let (ltrain, ltest) = load_mnist_idx(&dir).expect("loader should find the files");
    assert_eq!(ltrain.len(), 15);
    assert_eq!(ltest.len(), 5);
    assert_eq!(ltrain.labels(), train.labels());
    // Pixels quantized to u8: within 1/255.
    for (a, b) in ltrain
        .images()
        .as_slice()
        .iter()
        .zip(train.images().as_slice())
    {
        assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_idx_directory_is_rejected() {
    let dir = std::env::temp_dir().join(format!("apa-idx-partial-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("train-images-idx3-ubyte"), [0u8, 0, 8, 3]).unwrap();
    // Missing the other three files → None, not a panic.
    assert!(load_mnist_idx(&dir).is_none());
    fs::remove_dir_all(&dir).ok();
}
