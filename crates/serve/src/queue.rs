//! The bounded MPMC submission queue.
//!
//! Requests *wait here* until a lane takes a batch, so the capacity bound
//! is the service's entire buffering: a full queue rejects the submit with
//! [`ServeError::QueueFull`] instead of buffering unboundedly, and a
//! request that out-waits its deadline is dropped here with
//! [`ServeError::DeadlineExceeded`] before ever touching a lane.
//!
//! Lanes block in [`SubmissionQueue::next_batch`], which applies the
//! [`crate::batcher`] policy under the queue lock: take a full target
//! batch immediately, flush a partial one at the linger deadline, flush
//! everything during drain.

use crate::batcher::{decide, BatchPolicy, Decision};
use crate::error::ServeError;
use crate::service::Response;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// A submitted request waiting for a lane: the input row, its timing, and
/// the channel its [`crate::Ticket`] is blocked on.
pub(crate) struct Pending {
    pub input: Vec<f32>,
    pub submitted: Instant,
    /// Absolute deadline: the tighter of the service-wide queue deadline
    /// and the request's own (`SubmitOptions::deadline`). When every
    /// request carries the uniform service deadline the queue's front
    /// expires first and the sweep in [`SubmissionQueue::next_batch`]
    /// catches everything; per-request deadlines can expire out of order,
    /// which the lanes' batch-assembly shed backstops (see
    /// `service::run_batch`).
    pub deadline: Option<Instant>,
    pub tx: Sender<Result<Response, ServeError>>,
}

struct State {
    items: VecDeque<Pending>,
    /// False once drain began: submissions are rejected, lanes flush what
    /// remains and then exit.
    open: bool,
}

pub(crate) struct SubmissionQueue {
    capacity: usize,
    state: Mutex<State>,
    /// Signals waiting lanes: new work arrived, or drain began.
    work: Condvar,
}

impl SubmissionQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                open: true,
            }),
            work: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue a request; returns the depth after the push. Typed
    /// backpressure: `QueueFull` at capacity, `ShuttingDown` after
    /// [`Self::close`].
    pub fn try_push(&self, pending: Pending) -> Result<usize, ServeError> {
        let mut st = self.lock();
        if !st.open {
            return Err(ServeError::ShuttingDown);
        }
        if st.items.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        st.items.push_back(pending);
        let depth = st.items.len();
        drop(st);
        self.work.notify_one();
        Ok(depth)
    }

    /// Begin the drain: reject new submissions, wake every lane so the
    /// backlog is flushed immediately (linger no longer applies).
    pub fn close(&self) {
        self.lock().open = false;
        self.work.notify_all();
    }

    /// True once [`Self::close`] was called. Lanes parked by an open
    /// circuit breaker poll this so a drain is never held hostage by a
    /// cool-down.
    pub fn is_closed(&self) -> bool {
        !self.lock().open
    }

    /// Block until a batch is due per `policy` and take it (up to
    /// `policy.target_batch` requests). Requests that out-waited their
    /// deadline are moved into `expired` for the caller to answer; when
    /// only expirations happened, an **empty** batch is returned so the
    /// caller answers them promptly instead of blocking here with dead
    /// tickets in hand. Returns `None` once the queue is closed and empty
    /// — the lane's signal to exit.
    pub fn next_batch(
        &self,
        policy: &BatchPolicy,
        expired: &mut Vec<Pending>,
    ) -> Option<Vec<Pending>> {
        let mut st = self.lock();
        loop {
            let now = Instant::now();
            while st
                .items
                .front()
                .is_some_and(|p| crate::batcher::expired_at(p.deadline, now))
            {
                expired.push(st.items.pop_front().expect("front checked above"));
            }
            if !expired.is_empty() {
                return Some(Vec::new());
            }
            let draining = !st.open;
            let oldest_age = st.items.front().map(|p| now.duration_since(p.submitted));
            match decide(st.items.len(), oldest_age, draining, policy) {
                Decision::Take => {
                    let take = st.items.len().min(policy.target_batch);
                    let batch: Vec<Pending> = st.items.drain(..take).collect();
                    if !st.items.is_empty() {
                        // Leftovers: let another lane start forming the
                        // next batch without waiting for a submit.
                        self.work.notify_one();
                    }
                    return Some(batch);
                }
                Decision::WaitForWork => {
                    if draining {
                        return None;
                    }
                    st = self.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                Decision::WaitFor(linger_left) => {
                    // Wake at the linger deadline — or earlier if the
                    // oldest request's queue deadline lands first.
                    let wait = match st.items.front().and_then(|p| p.deadline) {
                        Some(d) => linger_left.min(d.saturating_duration_since(now)),
                        None => linger_left,
                    };
                    let (guard, _timeout) = self
                        .work
                        .wait_timeout(st, wait)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use std::sync::mpsc::channel;
    use std::sync::Arc;
    use std::time::Duration;

    /// Concurrent submitters racing lane drains and a mid-flight close:
    /// every request that entered the queue must resolve **exactly once**
    /// (an answer from a drainer), and every rejected submit must have
    /// failed with a typed error — no request may hang or be answered
    /// twice.
    #[test]
    fn hammered_queue_resolves_every_request_exactly_once() {
        const SUBMITTERS: usize = 4;
        const PER_THREAD: usize = 200;
        let queue = Arc::new(SubmissionQueue::new(64));
        let policy = BatchPolicy {
            target_batch: 8,
            max_linger: Duration::from_micros(200),
            attempts: 1,
        };

        // Lane stand-ins: take batches, answer each request Ok.
        let reply = |p: Pending| {
            let _ = p.tx.send(Ok(Response {
                output: p.input,
                lane: 0,
                batch_rows: 1,
                padded_rows: 1,
                latency: p.submitted.elapsed(),
            }));
        };
        let mut drainers = Vec::new();
        for _ in 0..2 {
            let queue = queue.clone();
            drainers.push(std::thread::spawn(move || {
                let mut expired = Vec::new();
                while let Some(batch) = queue.next_batch(&policy, &mut expired) {
                    for p in expired.drain(..) {
                        let _ = p.tx.send(Err(ServeError::DeadlineExceeded {
                            waited: p.submitted.elapsed(),
                        }));
                    }
                    for p in batch {
                        reply(p);
                    }
                }
            }));
        }

        let mut submitters = Vec::new();
        for t in 0..SUBMITTERS {
            let queue = queue.clone();
            submitters.push(std::thread::spawn(move || {
                let mut tickets = Vec::new();
                let mut rejected = 0usize;
                for i in 0..PER_THREAD {
                    let (tx, rx) = channel();
                    let pending = Pending {
                        input: vec![(t * PER_THREAD + i) as f32],
                        submitted: Instant::now(),
                        deadline: None,
                        tx,
                    };
                    match queue.try_push(pending) {
                        Ok(_) => tickets.push(rx),
                        Err(ServeError::QueueFull { .. }) | Err(ServeError::ShuttingDown) => {
                            rejected += 1;
                        }
                        Err(e) => panic!("untyped rejection: {e}"),
                    }
                    if i.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
                (tickets, rejected)
            }));
        }

        // Close while submitters are still racing — late pushes must see
        // ShuttingDown, in-queue requests must still drain.
        std::thread::sleep(Duration::from_millis(2));
        queue.close();

        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for s in submitters {
            let (tickets, r) = s.join().unwrap();
            rejected += r;
            for rx in tickets {
                accepted += 1;
                // Exactly once: one answer arrives…
                let first = rx.recv_timeout(Duration::from_secs(10));
                assert!(first.is_ok(), "an accepted request was never answered");
                // …and the channel then closes without a second.
                assert!(rx.recv().is_err(), "request answered twice");
            }
        }
        for d in drainers {
            d.join().unwrap();
        }
        assert_eq!(accepted + rejected, SUBMITTERS * PER_THREAD);
        assert!(accepted > 0, "nothing was accepted — drill proved nothing");
        assert_eq!(queue.depth(), 0);
    }
}
