//! The adaptive micro-batching policy: *when* does a lane take work?
//!
//! The decision logic is a pure function of the queue's observable state
//! so it can be unit-tested without threads. The rule:
//!
//! * a full target batch is always taken immediately;
//! * a partial batch is taken once the **oldest** waiting request has
//!   lingered `max_linger` (bounded first-request latency);
//! * during drain every remaining request is flushed immediately;
//! * otherwise the lane sleeps until the linger deadline (or new work).

use std::time::{Duration, Instant};

/// Tuning knobs of the micro-batcher, fixed at service start.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Preferred batch size: a lane takes at most this many requests at
    /// once, and a full target batch is dispatched without waiting.
    pub target_batch: usize,
    /// Longest a request may wait for co-riders before a partial batch is
    /// flushed anyway.
    pub max_linger: Duration,
    /// Inference attempts per batch before its requests are failed with
    /// [`crate::ServeError::Inference`] (attempt 2 runs after a caught
    /// panic, typically on a ladder rung that already demoted).
    pub attempts: u32,
}

/// What a lane should do next, given the queue state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Take up to `target_batch` requests now.
    Take,
    /// Sleep at most this long, then re-evaluate (linger deadline of the
    /// oldest request).
    WaitFor(Duration),
    /// Queue is empty: sleep until work arrives.
    WaitForWork,
}

/// The batching decision for a queue holding `len` requests whose oldest
/// entry has waited `oldest_age`.
pub fn decide(
    len: usize,
    oldest_age: Option<Duration>,
    draining: bool,
    policy: &BatchPolicy,
) -> Decision {
    if len == 0 {
        return Decision::WaitForWork;
    }
    if len >= policy.target_batch || draining {
        return Decision::Take;
    }
    match oldest_age {
        Some(age) if age >= policy.max_linger => Decision::Take,
        Some(age) => Decision::WaitFor(policy.max_linger - age),
        // len > 0 guarantees an oldest entry; be conservative if the
        // caller couldn't provide its age.
        None => Decision::Take,
    }
}

/// Is a request with this absolute deadline dead at `now`? The single
/// definition of expiry shared by the queue's front sweep and the lanes'
/// batch-assembly shed, so the two paths can never disagree about whether
/// a request is still worth computing.
pub fn expired_at(deadline: Option<Instant>, now: Instant) -> bool {
    deadline.is_some_and(|d| d <= now)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(target: usize, linger_ms: u64) -> BatchPolicy {
        BatchPolicy {
            target_batch: target,
            max_linger: Duration::from_millis(linger_ms),
            attempts: 2,
        }
    }

    #[test]
    fn empty_queue_waits_for_work() {
        assert_eq!(decide(0, None, false, &policy(8, 5)), Decision::WaitForWork);
        // Even while draining: nothing to flush.
        assert_eq!(decide(0, None, true, &policy(8, 5)), Decision::WaitForWork);
    }

    #[test]
    fn full_target_batch_dispatches_immediately() {
        let p = policy(8, 5);
        let fresh = Some(Duration::ZERO);
        assert_eq!(decide(8, fresh, false, &p), Decision::Take);
        assert_eq!(decide(20, fresh, false, &p), Decision::Take);
    }

    #[test]
    fn partial_batch_lingers_then_flushes() {
        let p = policy(8, 5);
        assert_eq!(
            decide(3, Some(Duration::from_millis(1)), false, &p),
            Decision::WaitFor(Duration::from_millis(4))
        );
        assert_eq!(
            decide(3, Some(Duration::from_millis(5)), false, &p),
            Decision::Take
        );
        assert_eq!(
            decide(3, Some(Duration::from_millis(9)), false, &p),
            Decision::Take
        );
    }

    #[test]
    fn draining_flushes_partials_immediately() {
        let p = policy(8, 5_000);
        assert_eq!(decide(1, Some(Duration::ZERO), true, &p), Decision::Take);
    }

    #[test]
    fn expiry_is_inclusive_at_the_deadline() {
        let now = Instant::now();
        assert!(!expired_at(None, now));
        assert!(!expired_at(Some(now + Duration::from_millis(1)), now));
        assert!(expired_at(Some(now), now));
        assert!(expired_at(Some(now - Duration::from_millis(1)), now));
    }
}
