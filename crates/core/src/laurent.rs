//! Laurent polynomials in the APA approximation parameter λ.
//!
//! Every coefficient in an APA bilinear rule is a Laurent polynomial in λ
//! (paper §2.2): a finite sum `Σ_e c_e λ^e` with integer exponents `e` that
//! may be negative (e.g. the `λ⁻¹` pre-factors in Bini's output formulas).
//! Exact fast algorithms (Strassen) are the special case where every
//! coefficient is a degree-0 monomial.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Tolerance under which a floating-point coefficient is treated as zero.
pub const COEFF_EPS: f64 = 1e-12;

/// A Laurent polynomial `Σ_e c_e λ^e` with `e ∈ ℤ` and `c_e ∈ ℝ`.
///
/// Terms with |c| ≤ [`COEFF_EPS`] are pruned eagerly, so `is_zero` and the
/// degree accessors reflect the numerically meaningful support.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Laurent {
    /// exponent → coefficient, sparse, sorted by exponent.
    terms: BTreeMap<i32, f64>,
}

impl Laurent {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::monomial(c, 0)
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self::constant(1.0)
    }

    /// The monomial `c · λ^e`.
    pub fn monomial(c: f64, e: i32) -> Self {
        let mut terms = BTreeMap::new();
        if c.abs() > COEFF_EPS {
            terms.insert(e, c);
        }
        Self { terms }
    }

    /// Build from `(exponent, coefficient)` pairs; repeated exponents sum.
    pub fn from_terms<I: IntoIterator<Item = (i32, f64)>>(it: I) -> Self {
        let mut p = Self::zero();
        for (e, c) in it {
            p.add_term(e, c);
        }
        p
    }

    /// Add `c · λ^e` in place.
    pub fn add_term(&mut self, e: i32, c: f64) {
        if c.abs() <= COEFF_EPS {
            return;
        }
        let entry = self.terms.entry(e).or_insert(0.0);
        *entry += c;
        if entry.abs() <= COEFF_EPS {
            self.terms.remove(&e);
        }
    }

    /// True iff every term has been pruned.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff the polynomial is a single term `c·λ^e`.
    pub fn is_monomial(&self) -> bool {
        self.terms.len() == 1
    }

    /// True iff the polynomial is exactly a degree-0 constant (or zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty() || (self.terms.len() == 1 && self.terms.contains_key(&0))
    }

    /// Coefficient of `λ^e` (0.0 if absent).
    pub fn coeff(&self, e: i32) -> f64 {
        self.terms.get(&e).copied().unwrap_or(0.0)
    }

    /// Lowest exponent with a nonzero coefficient.
    pub fn min_degree(&self) -> Option<i32> {
        self.terms.keys().next().copied()
    }

    /// Highest exponent with a nonzero coefficient.
    pub fn max_degree(&self) -> Option<i32> {
        self.terms.keys().next_back().copied()
    }

    /// Magnitude of the most negative exponent, 0 if none are negative.
    ///
    /// This is the per-entry ingredient of the paper's roundoff parameter φ
    /// (§2.3): the triplet in eq. (2) contributes `0 + 0 + 1` because its
    /// `W` entry contains `λ⁻¹`.
    pub fn negative_degree(&self) -> u32 {
        match self.min_degree() {
            Some(d) if d < 0 => (-d) as u32,
            _ => 0,
        }
    }

    /// Iterate over `(exponent, coefficient)` pairs in increasing exponent.
    pub fn iter(&self) -> impl Iterator<Item = (i32, f64)> + '_ {
        self.terms.iter().map(|(&e, &c)| (e, c))
    }

    /// Number of nonzero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate at a concrete λ using `powi`.
    pub fn eval(&self, lambda: f64) -> f64 {
        self.terms.iter().map(|(&e, &c)| c * lambda.powi(e)).sum()
    }

    /// Largest |coefficient| over all terms (0.0 for the zero polynomial).
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms.values().fold(0.0_f64, |m, c| m.max(c.abs()))
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (&e, &c) in &other.terms {
            out.add_term(e, c);
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (&e, &c) in &other.terms {
            out.add_term(e, -c);
        }
        out
    }

    /// `-self`.
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        for c in out.terms.values_mut() {
            *c = -*c;
        }
        out
    }

    /// `self · other` (full convolution of the supports).
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        for (&e1, &c1) in &self.terms {
            for (&e2, &c2) in &other.terms {
                out.add_term(e1 + e2, c1 * c2);
            }
        }
        out
    }

    /// `self · c λ^e` — cheaper than building a monomial and multiplying.
    pub fn mul_monomial(&self, c: f64, e: i32) -> Self {
        if c.abs() <= COEFF_EPS {
            return Self::zero();
        }
        let mut out = Self::zero();
        for (&e1, &c1) in &self.terms {
            out.add_term(e1 + e, c1 * c);
        }
        out
    }

    /// Scale all coefficients by `s`.
    pub fn scale(&self, s: f64) -> Self {
        self.mul_monomial(s, 0)
    }

    /// Drop every term whose |coefficient| ≤ `tol`.
    pub fn prune(&self, tol: f64) -> Self {
        Self {
            terms: self
                .terms
                .iter()
                .filter(|(_, c)| c.abs() > tol)
                .map(|(&e, &c)| (e, c))
                .collect(),
        }
    }

    /// Parse a compact textual form: terms separated by `+`/`-`, each term
    /// `c`, `L^e`, `c*L^e`, or `c*L^-e` where `L` spells `lambda` or `L`.
    ///
    /// Examples accepted: `"1"`, `"-1"`, `"L"`, `"2*L^-1"`, `"1 - L + 0.5*L^2"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty Laurent literal".into());
        }
        let mut out = Self::zero();
        // Split into signed chunks.
        let mut chunks: Vec<(f64, String)> = Vec::new();
        let mut sign = 1.0;
        let mut cur = String::new();
        let mut depth_started = false;
        for ch in s.chars() {
            match ch {
                '+' | '-'
                    if depth_started
                        && !cur.trim().is_empty()
                        && !cur.trim_end().ends_with('^')
                        && !cur.trim_end().ends_with('*') =>
                {
                    chunks.push((sign, cur.trim().to_string()));
                    cur = String::new();
                    sign = if ch == '-' { -1.0 } else { 1.0 };
                }
                '+' => {
                    if !depth_started {
                        depth_started = true;
                    }
                }
                '-' if !depth_started => {
                    sign = -sign;
                    depth_started = true;
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        cur.push(c);
                    }
                }
                c => {
                    depth_started = true;
                    cur.push(c);
                }
            }
        }
        if !cur.trim().is_empty() {
            chunks.push((sign, cur.trim().to_string()));
        }
        if chunks.is_empty() {
            return Err(format!("could not parse Laurent literal {s:?}"));
        }
        for (sgn, chunk) in chunks {
            let (coeff, exp) = Self::parse_term(&chunk)?;
            out.add_term(exp, sgn * coeff);
        }
        Ok(out)
    }

    fn parse_term(t: &str) -> Result<(f64, i32), String> {
        let t = t.replace(' ', "");
        let norm = t.replace("lambda", "L");
        let (coeff_str, lam_str) = match norm.find('L') {
            None => (norm.as_str(), None),
            Some(pos) => {
                let (c, l) = norm.split_at(pos);
                (c.trim_end_matches('*'), Some(l))
            }
        };
        let coeff: f64 = if coeff_str.is_empty() {
            1.0
        } else {
            coeff_str
                .parse()
                .map_err(|_| format!("bad coefficient {coeff_str:?} in Laurent term {t:?}"))?
        };
        let exp: i32 = match lam_str {
            None => 0,
            Some(l) => {
                let rest = &l[1..];
                if rest.is_empty() {
                    1
                } else if let Some(e) = rest.strip_prefix('^') {
                    e.parse()
                        .map_err(|_| format!("bad exponent {e:?} in Laurent term {t:?}"))?
                } else {
                    return Err(format!("bad λ power syntax in Laurent term {t:?}"));
                }
            }
        };
        Ok((coeff, exp))
    }
}

impl fmt::Display for Laurent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (&e, &c) in &self.terms {
            let sign = if c < 0.0 {
                "-"
            } else if first {
                ""
            } else {
                "+"
            };
            let mag = c.abs();
            if !first {
                write!(f, " {sign} ")?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            first = false;
            match e {
                0 => write!(f, "{mag}")?,
                1 if (mag - 1.0).abs() <= COEFF_EPS => write!(f, "L")?,
                1 => write!(f, "{mag}*L")?,
                _ if (mag - 1.0).abs() <= COEFF_EPS => write!(f, "L^{e}")?,
                _ => write!(f, "{mag}*L^{e}")?,
            }
        }
        Ok(())
    }
}

impl From<f64> for Laurent {
    fn from(c: f64) -> Self {
        Self::constant(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_constants() {
        assert!(Laurent::zero().is_zero());
        assert!(Laurent::monomial(0.0, 3).is_zero());
        let one = Laurent::one();
        assert!(one.is_constant());
        assert_eq!(one.eval(0.37), 1.0);
        assert_eq!(one.coeff(0), 1.0);
        assert_eq!(one.coeff(1), 0.0);
    }

    #[test]
    fn add_cancels() {
        let a = Laurent::monomial(2.0, -1);
        let b = Laurent::monomial(-2.0, -1);
        assert!(a.add(&b).is_zero());
        assert_eq!(a.sub(&a), Laurent::zero());
    }

    #[test]
    fn mul_convolves_exponents() {
        // (λ⁻¹ + 1)(λ - 1) = 1 + λ - λ⁻¹ - 1 = λ - λ⁻¹
        let a = Laurent::from_terms([(-1, 1.0), (0, 1.0)]);
        let b = Laurent::from_terms([(1, 1.0), (0, -1.0)]);
        let p = a.mul(&b);
        assert_eq!(p.coeff(1), 1.0);
        assert_eq!(p.coeff(-1), -1.0);
        assert_eq!(p.coeff(0), 0.0);
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn eval_matches_direct() {
        let p = Laurent::from_terms([(-1, 2.0), (0, -3.0), (2, 0.5)]);
        let l = 0.125;
        let expect = 2.0 / l - 3.0 + 0.5 * l * l;
        assert!((p.eval(l) - expect).abs() < 1e-12);
    }

    #[test]
    fn degrees_and_negativity() {
        let p = Laurent::from_terms([(-2, 1.0), (3, 4.0)]);
        assert_eq!(p.min_degree(), Some(-2));
        assert_eq!(p.max_degree(), Some(3));
        assert_eq!(p.negative_degree(), 2);
        assert_eq!(Laurent::one().negative_degree(), 0);
        assert_eq!(Laurent::zero().min_degree(), None);
    }

    #[test]
    fn mul_monomial_shifts() {
        let p = Laurent::from_terms([(0, 1.0), (1, 1.0)]);
        let q = p.mul_monomial(2.0, -1);
        assert_eq!(q.coeff(-1), 2.0);
        assert_eq!(q.coeff(0), 2.0);
    }

    #[test]
    fn parse_simple() {
        assert_eq!(Laurent::parse("1").unwrap(), Laurent::one());
        assert_eq!(Laurent::parse("-1").unwrap(), Laurent::constant(-1.0));
        assert_eq!(Laurent::parse("L").unwrap(), Laurent::monomial(1.0, 1));
        assert_eq!(
            Laurent::parse("2*L^-1").unwrap(),
            Laurent::monomial(2.0, -1)
        );
        assert_eq!(
            Laurent::parse("lambda^2").unwrap(),
            Laurent::monomial(1.0, 2)
        );
    }

    #[test]
    fn parse_sums() {
        let p = Laurent::parse("1 - L + 0.5*L^2").unwrap();
        assert_eq!(p.coeff(0), 1.0);
        assert_eq!(p.coeff(1), -1.0);
        assert_eq!(p.coeff(2), 0.5);
        let q = Laurent::parse("-L^-1+1").unwrap();
        assert_eq!(q.coeff(-1), -1.0);
        assert_eq!(q.coeff(0), 1.0);
    }

    #[test]
    fn parse_roundtrip_display() {
        for s in ["1", "-2*L^-1 + 1", "L - 1", "0.25*L^2"] {
            let p = Laurent::parse(s).unwrap();
            let q = Laurent::parse(&p.to_string()).unwrap();
            assert_eq!(p, q, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Laurent::parse("").is_err());
        assert!(Laurent::parse("L^").is_err());
        assert!(Laurent::parse("xyz").is_err());
    }

    #[test]
    fn prune_drops_small_terms() {
        let p = Laurent::from_terms([(0, 1.0), (1, 1e-9)]);
        assert_eq!(p.prune(1e-6).num_terms(), 1);
    }
}
