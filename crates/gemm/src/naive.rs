//! Triple-loop reference multiplication — the semantic oracle for tests.

use crate::matrix::{Mat, MatRef};
use crate::scalar::Scalar;

/// `C = A · B` by the ijk triple loop. Quadratically slower than the
/// blocked kernel; only used to validate it.
pub fn matmul_naive<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> Mat<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must match");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for j in 0..n {
                crow[j] = aip.mul_add(brow[j], crow[j]);
            }
        }
    }
    c
}

/// `C = A · B` in f64 regardless of the input scalar type — the
/// high-precision reference used for APA error measurement (the paper
/// measures f32 algorithms against a double-precision classical result).
pub fn matmul_naive_f64<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> Mat<f64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must match");
    let (m, n) = (a.rows(), b.cols());
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
        for (p, aip) in arow.iter().enumerate() {
            let aip = aip.to_f64();
            let brow = b.row(p);
            for j in 0..n {
                crow[j] += aip * brow[j].to_f64();
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;

    #[test]
    fn identity_multiplication() {
        let i3 = Mat::<f64>::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let c = matmul_naive(i3.as_ref(), a.as_ref());
        assert_eq!(c, a);
        let c2 = matmul_naive(a.as_ref(), i3.as_ref());
        assert_eq!(c2, a);
    }

    #[test]
    fn known_small_product() {
        let a = Mat::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0f32, 6.0, 7.0, 8.0]);
        let c = matmul_naive(a.as_ref(), b.as_ref());
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let c = matmul_naive(a.as_ref(), b.as_ref());
        assert_eq!((c.rows(), c.cols()), (2, 4));
        // c[1][2] = Σ_p a[1][p]·b[p][2] = 1·2 + 2·6 + 3·10 = 44
        assert_eq!(c.at(1, 2), 44.0);
    }

    #[test]
    fn f64_reference_matches_for_f64_inputs() {
        let a = Mat::from_fn(3, 3, |i, j| (i as f64 - j as f64) * 0.5);
        let b = Mat::from_fn(3, 3, |i, j| (i * j) as f64 + 1.0);
        let c1 = matmul_naive(a.as_ref(), b.as_ref());
        let c2 = matmul_naive_f64(a.as_ref(), b.as_ref());
        assert_eq!(c1, c2);
    }
}
