#!/usr/bin/env bash
# Fusion-ablation benchmark runner (ISSUE 5 acceptance evidence).
#
#   1. criterion micro-benchmarks: the new `fusion` group (pack+epilogue
#      fusion vs materialized on ParaDnn widths) and the existing
#      `workspace` reuse group
#   2. the `fusionbench` harness, which emits machine-readable
#      BENCH_5.json (median GFLOP/s, workspace bytes and modeled traffic
#      per rule x width x policy)
#
# Usage: scripts/bench.sh [extra fusionbench args...]
#   e.g. scripts/bench.sh --widths 512,1024 --reps 5

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench: cargo bench -p apa-bench --bench fusion =="
cargo bench -p apa-bench --bench fusion

echo "== bench: cargo bench -p apa-bench --bench workspace =="
cargo bench -p apa-bench --bench workspace

echo "== bench: fusionbench -> BENCH_5.json =="
cargo run --release -p apa-bench --bin fusionbench -- --out BENCH_5.json "$@"

echo "== bench: OK (results in BENCH_5.json) =="
