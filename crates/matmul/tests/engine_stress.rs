//! Execution-engine stress tests: the full catalog across randomized
//! shapes, strategies and thread counts, plus determinism guarantees.

use apa_core::catalog;
use apa_gemm::{matmul_naive, Mat};
use apa_matmul::{ApaMatmul, PeelMode, Strategy};
use proptest::prelude::*;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
    })
}

#[test]
fn every_algorithm_every_strategy_many_thread_counts() {
    let a = rand_mat(40, 40, 1);
    let b = rand_mat(40, 42, 2);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    for alg in catalog::paper_lineup() {
        for strategy in [Strategy::Dfs, Strategy::Bfs, Strategy::Hybrid] {
            for threads in [2, 3, 5] {
                let mm = ApaMatmul::new(alg.clone())
                    .strategy(strategy)
                    .threads(threads);
                let got = mm.multiply(a.as_ref(), b.as_ref());
                let err = got.rel_frobenius_error(&expect);
                assert!(err < 1e-2, "{} {strategy:?} t={threads}: {err}", alg.name);
            }
        }
    }
}

#[test]
fn strategies_are_deterministic() {
    // Same configuration twice → bitwise identical output (fixed reduction
    // order per strategy).
    let a = rand_mat(36, 36, 3);
    let b = rand_mat(36, 36, 4);
    for strategy in [
        Strategy::Seq,
        Strategy::Dfs,
        Strategy::Bfs,
        Strategy::Hybrid,
    ] {
        let mm = ApaMatmul::new(catalog::fast442())
            .strategy(strategy)
            .threads(3);
        let c1 = mm.multiply(a.as_ref(), b.as_ref());
        let c2 = mm.multiply(a.as_ref(), b.as_ref());
        assert_eq!(c1, c2, "{strategy:?} not deterministic");
    }
}

#[test]
fn extreme_aspect_ratios() {
    // Tall-skinny and short-fat products through the peel path.
    for &(m, k, n) in &[
        (200, 4, 4),
        (4, 200, 4),
        (4, 4, 200),
        (1, 100, 1),
        (100, 1, 100),
    ] {
        let a = rand_mat(m, k, 5);
        let b = rand_mat(k, n, 6);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let mm = ApaMatmul::new(catalog::bini322());
        let got = mm.multiply(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-2, "({m},{k},{n})");
    }
}

#[test]
fn zero_matrices_give_zero() {
    let a = Mat::<f32>::zeros(24, 24);
    let b = Mat::<f32>::zeros(24, 24);
    for alg in [catalog::strassen(), catalog::bini322()] {
        let mm = ApaMatmul::new(alg);
        let c = mm.multiply(a.as_ref(), b.as_ref());
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn identity_multiplication_through_apa() {
    let n = 24;
    let i = Mat::<f64>::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });
    let x = rand_mat(n, n, 7);
    let mm = ApaMatmul::new(catalog::fast444()).lambda(0.0);
    let c = mm.multiply(i.as_ref(), x.as_ref());
    assert!(c.rel_frobenius_error(&x) < 1e-12);
}

#[test]
fn huge_lambda_breaks_accuracy_gracefully() {
    // Failure injection: λ = 0.5 is a *terrible* choice; the result must
    // still be finite (no NaN/Inf) even though it's inaccurate.
    let a = rand_mat(30, 20, 8);
    let b = rand_mat(20, 20, 9);
    let mm = ApaMatmul::new(catalog::bini322()).lambda(0.5);
    let c = mm.multiply(a.as_ref(), b.as_ref());
    assert!(c.as_slice().iter().all(|v| v.is_finite()));
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    assert!(
        c.rel_frobenius_error(&expect) > 1e-3,
        "λ=0.5 should visibly hurt"
    );
}

#[test]
fn lambda_zero_on_apa_rule_collapses_coefficients() {
    // λ = 0 makes Bini's λ⁻¹ coefficients infinite → non-finite output.
    // The engine must not mask this (it is a user error the docs call out),
    // but it must not panic either.
    let a = rand_mat(6, 4, 10);
    let b = rand_mat(4, 4, 11);
    let mm = ApaMatmul::new(catalog::bini322()).lambda(0.0);
    let c = mm.multiply(a.as_ref(), b.as_ref());
    assert!(
        c.as_slice().iter().any(|v| !v.is_finite()),
        "λ=0 on an APA rule cannot produce a finite answer"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hybrid_equals_sequential_up_to_roundoff(
        mult in 1usize..6, threads in 2usize..6, seed in 0u64..500
    ) {
        let alg = catalog::fast442();
        let d = alg.dims;
        let (m, k, n) = (d.m * mult * 2, d.k * mult * 2, d.n * mult * 2);
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed + 1);
        let seq = ApaMatmul::new(alg.clone()).strategy(Strategy::Seq).multiply(a.as_ref(), b.as_ref());
        let hyb = ApaMatmul::new(alg).strategy(Strategy::Hybrid).threads(threads).multiply(a.as_ref(), b.as_ref());
        prop_assert!(hyb.rel_frobenius_error(&seq) < 1e-13);
    }

    #[test]
    fn peel_modes_always_agree(
        m in 1usize..50, k in 1usize..50, n in 1usize..50, seed in 0u64..500
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed + 7);
        let alg = catalog::strassen();
        let peel = ApaMatmul::new(alg.clone()).peel_mode(PeelMode::Dynamic).multiply(a.as_ref(), b.as_ref());
        let pad = ApaMatmul::new(alg).peel_mode(PeelMode::Pad).multiply(a.as_ref(), b.as_ref());
        prop_assert!(peel.rel_frobenius_error(&pad) < 1e-10);
    }
}
