//! Criterion micro-benchmark for the fusion ablation: pack-fused +
//! epilogue-fused execution ([`FusionPolicy::Auto`]) vs the fully
//! materialized reference path ([`FusionPolicy::Never`]) on the same
//! warm workspace, ParaDnn-style square shapes, Hybrid strategy.
//!
//! This is the §3.2 experiment of ISSUE 5: the linear combinations are
//! bandwidth-bound, so folding them into gemm's pack sweep and epilogue
//! should buy wall-clock time exactly where the add fraction lives —
//! multi-step plans whose leaf gemms are small relative to the S/T/M
//! sweeps they bracket.
//!
//! Run with `cargo bench -p apa-bench --bench fusion`; `scripts/bench.sh`
//! pairs it with the `fusionbench` binary that emits BENCH_5.json.

use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{ApaMatmul, FusionPolicy, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn probe(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn bench_fusion(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(1);
    let mut group = c.benchmark_group("fusion");
    // (rule, steps): two-step plans put real weight on the combination
    // sweeps (the leaf gemms shrink by the base dims squared while every
    // level re-sweeps its operands), which is where fusion pays.
    for (name, steps) in [("bini322", 2u32), ("fast444", 2u32)] {
        for (n, samples) in [(512usize, 20), (1024, 10), (2048, 4)] {
            group
                .sample_size(samples)
                .measurement_time(Duration::from_secs(1));
            let a = probe(n, 1);
            let b = probe(n, 2);
            let mut out = Mat::<f32>::zeros(n, n);
            let base = ApaMatmul::new(catalog::by_name(name).unwrap())
                .steps(steps)
                .strategy(Strategy::Hybrid)
                .threads(threads);
            for (label, policy) in [
                ("fused", FusionPolicy::Auto),
                ("materialized", FusionPolicy::Never),
            ] {
                let mm = base.clone().fusion(policy);
                // Warm once so both sides measure the cached steady state.
                mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut());
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{label}"), n),
                    &n,
                    |bench, _| {
                        bench.iter(|| mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut()));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
