//! Zero-allocation invariant for the serving-side inference path.
//!
//! Installs [`apa_gemm::CountingAlloc`] as the global allocator, warms
//! [`Mlp::predict_into`]'s scratch and the backends' workspace caches with
//! a couple of calls, then asserts that further inference passes at the
//! same batch size perform **zero** heap allocations — the contract the
//! `apa-serve` lane workers rely on for per-request latency.

use apa_gemm::{thread_allocation_counters, Mat};
use apa_nn::{classical, guarded, Backend, InferenceScratch, Mlp};

#[global_allocator]
static ALLOC: apa_gemm::CountingAlloc = apa_gemm::CountingAlloc;

fn probe(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn assert_warm_inference_is_allocation_free(net: &Mlp, batch: usize, what: &str) {
    let x = probe(batch, net.widths()[0], 7);
    let mut scratch = InferenceScratch::new();
    let mut out = Mat::zeros(0, 0);
    // Two warmup passes: the first sizes the scratch and builds the
    // backend workspaces, the second settles the thread-local gemm pack
    // buffers at their high-water mark.
    net.predict_into(x.as_ref(), &mut out, &mut scratch);
    net.predict_into(x.as_ref(), &mut out, &mut scratch);

    let before = thread_allocation_counters();
    let rounds = 5;
    for _ in 0..rounds {
        net.predict_into(x.as_ref(), &mut out, &mut scratch);
    }
    let delta = thread_allocation_counters().since(before);
    assert_eq!(
        delta.calls, 0,
        "{what}: {} allocations ({} bytes) across {rounds} warm inference passes",
        delta.calls, delta.bytes
    );
}

#[test]
fn warm_classical_inference_does_not_allocate() {
    let net = Mlp::new(&[24, 32, 32, 10], vec![classical(1); 3], 11);
    assert_warm_inference_is_allocation_free(&net, 16, "classical 24-32-32-10");
}

#[test]
fn warm_guarded_apa_inference_does_not_allocate() {
    // The guarded backend's ladder, workspace cache and probe scratch are
    // all grow-only, so the sentinel-guarded serving path must preserve
    // the invariant too (probes sample at the default rate).
    let hidden: Backend = guarded(apa_core::catalog::bini322(), 1);
    let backends: Vec<Backend> = vec![classical(1), hidden, classical(1)];
    let net = Mlp::new(&[24, 30, 30, 10], backends, 13);
    assert_warm_inference_is_allocation_free(&net, 30, "guarded-bini322 24-30-30-10");
}
