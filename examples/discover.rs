//! Rediscover a fast matrix-multiplication algorithm numerically:
//! perturb Strassen's rank-7 decomposition, let ALS re-converge, snap the
//! coefficients and verify the result symbolically — the discovery
//! pipeline behind the Smirnov tensors the paper curates.
//!
//! Run with: `cargo run --release --example discover`

use apa_repro::core::Dims;
use apa_repro::discovery::{
    als_from, als_multi_restart, relative_residual, round_and_verify, AlsConfig, DMat, RoundOutcome,
};
use apa_repro::prelude::catalog;

fn main() {
    let d = Dims::new(2, 2, 2);

    println!("== Warm start: re-polish a perturbed Strassen decomposition ==");
    let alg = catalog::strassen();
    let dense = |m: &apa_repro::core::CoeffMatrix, rows: usize| {
        DMat::from_fn(rows, 7, |i, t| {
            m.get(i, t).eval(0.0) + (((i * 13 + t * 7) % 11) as f64 - 5.0) * 0.01
        })
    };
    let (u, v, w) = (dense(&alg.u, 4), dense(&alg.v, 4), dense(&alg.w, 4));
    println!("  start residual: {:.3e}", relative_residual(d, &u, &v, &w));
    let config = AlsConfig {
        reg: 1e-6,
        max_iters: 300,
        ..AlsConfig::default()
    };
    let result = als_from(d, u, v, w, &config);
    println!(
        "  after {} ALS sweeps: residual {:.3e}",
        result.iters, result.residual
    );
    match round_and_verify(&result, "rediscovered-strassen") {
        RoundOutcome::Exact(found) => {
            println!("  rounded + Brent-verified: {} ✓", found.summary())
        }
        RoundOutcome::NotExact { brent_error } => println!("  rounding failed: {brent_error}"),
    }

    println!("\n== Cold start: rank-7 <2,2,2> search from random factors ==");
    println!("  (full convergence is seed luck, exactly as in the literature —");
    println!("   the residual trace shows the optimization making real progress)");
    let result = als_multi_restart(d, 7, &AlsConfig::default(), 3, 20260707);
    println!(
        "  best of 3 restarts: residual {:.3e} after {} sweeps (converged: {})",
        result.residual, result.iters, result.converged
    );

    println!("\n== Cold start at classical rank 8 (easy) ==");
    let result = als_multi_restart(d, 8, &AlsConfig::default(), 3, 7);
    println!(
        "  residual {:.3e} (converged: {})",
        result.residual, result.converged
    );
}
