//! # apa-matmul
//!
//! The execution engine for APA (and exact fast) matrix-multiplication
//! algorithms — the primary contribution of the reproduced paper. It turns
//! the symbolic rules of `apa-core` into high-performance multiplications
//! on top of the `apa-gemm` substrate:
//!
//! * [`plan`] — compile a rule at a concrete λ into numeric coefficient
//!   lists with the write-once output orientation;
//! * [`exec`] — one-step / recursive execution with gemm leaves;
//! * [`schedule`] — the DFS / BFS / **Hybrid** parallel strategies of the
//!   paper's §3.2 (Fig. 2);
//! * [`peel`] — dynamic peeling and zero padding for arbitrary shapes;
//! * [`workspace`] — preallocated, reusable buffer arenas so steady-state
//!   multiplications perform zero heap allocations;
//! * [`tune`] — the 5-powers-of-2 λ auto-tuner of the paper's Fig. 1;
//! * [`error`] — relative-Frobenius error measurement against the f64
//!   classical reference;
//! * [`apamm`] — the configured [`ApaMatmul`] front end plus the
//!   [`ClassicalMatmul`] baseline wrapper;
//! * [`sentinel`] — the numerical-health sentinel: a fused non-finite
//!   scan plus a sampled Freivalds residual probe checked against the
//!   error-model budget;
//! * [`fallback`] — [`GuardedApaMatmul`]: graceful degradation from the
//!   configured APA rule down to exact classical gemm, with per-shape
//!   hysteresis;
//! * [`fault`] (only with `--features fault-inject`) — deterministic
//!   fault injection for exercising the degradation ladder.

pub mod apamm;
pub mod autotune;
pub mod cse;
pub mod error;
pub mod exec;
pub mod fallback;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod peel;
pub mod plan;
pub mod schedule;
pub mod sentinel;
pub mod stats;
pub mod tune;
pub mod workspace;

pub use apamm::{ApaChain, ApaMatmul, ClassicalMatmul};
pub use autotune::{autotune, autotune_with, Candidate, TuneOutcome};
pub use cse::{plan_additions, CseReport};
pub use error::{measure_error, MatmulError};
pub use exec::{fast_matmul, fast_matmul_chain_into, fast_matmul_into};
pub use fallback::{
    DegradePolicy, GuardedApaMatmul, GuardedState, QualityOverride, RestoreError, RungKind,
    ShapeEntry,
};
pub use peel::{
    fast_matmul_any_into, fast_matmul_any_into_ws, fast_matmul_chain_any_into,
    fast_matmul_chain_any_into_ws, PeelMode,
};
pub use plan::{Combo, ExecPlan};
pub use schedule::{
    bfs_schedule, effective_strategy, hybrid_schedule, FusionPolicy, HybridSchedule, Strategy,
};
pub use sentinel::{
    check_product, scan_nonfinite, AbftMode, ProbeScratch, SentinelConfig, Verdict,
};
pub use stats::{
    modeled_bytes_moved, profile_one_step, profile_one_step_with_workspace, ExecProfile,
    HealthStats,
};
pub use tune::{tune_lambda, TunedLambda};
pub use workspace::{LevelKey, Workspace, WsKey};
