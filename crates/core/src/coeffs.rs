//! Sparse coefficient matrices with Laurent-polynomial entries.
//!
//! A bilinear rule of rank `r` is encoded by three such matrices (paper
//! eq. (2)): `U` ((m·k) × r) gives the linear combinations of entries of `A`
//! fed into each multiplication, `V` ((k·n) × r) the combinations of entries
//! of `B`, and `W` ((m·n) × r) the contributions of each multiplication to
//! the output. Columns (one per multiplication) are the natural access
//! pattern both for validation and for plan compilation, so storage is
//! column-major sparse.

use crate::laurent::{Laurent, COEFF_EPS};
use serde::{Deserialize, Serialize};

/// A sparse `rows × cols` matrix of [`Laurent`] entries, stored per column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoeffMatrix {
    rows: usize,
    /// `cols[t]` lists `(row, coefficient)` pairs, sorted by row, for
    /// multiplication `t`.
    cols: Vec<Vec<(usize, Laurent)>>,
}

impl CoeffMatrix {
    /// An all-zero matrix with `rows` rows and `cols` columns.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols: vec![Vec::new(); cols],
        }
    }

    /// Number of rows (flattened matrix entries of the operand).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (rank / multiplication count).
    pub fn cols(&self) -> usize {
        self.cols.len()
    }

    /// Set entry `(row, col)`, replacing any existing value. Zero entries
    /// are removed from the sparse structure.
    pub fn set(&mut self, row: usize, col: usize, value: Laurent) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        let column = &mut self.cols[col];
        match column.binary_search_by_key(&row, |(r, _)| *r) {
            Ok(pos) => {
                if value.is_zero() {
                    column.remove(pos);
                } else {
                    column[pos].1 = value;
                }
            }
            Err(pos) => {
                if !value.is_zero() {
                    column.insert(pos, (row, value));
                }
            }
        }
    }

    /// Add `value` into entry `(row, col)`.
    pub fn add(&mut self, row: usize, col: usize, value: &Laurent) {
        if value.is_zero() {
            return;
        }
        let current = self.get(row, col);
        self.set(row, col, current.add(value));
    }

    /// Entry `(row, col)` (zero polynomial if structurally absent).
    pub fn get(&self, row: usize, col: usize) -> Laurent {
        let column = &self.cols[col];
        match column.binary_search_by_key(&row, |(r, _)| *r) {
            Ok(pos) => column[pos].1.clone(),
            Err(_) => Laurent::zero(),
        }
    }

    /// Sparse view of one column: `(row, coefficient)` pairs sorted by row.
    pub fn col(&self, col: usize) -> &[(usize, Laurent)] {
        &self.cols[col]
    }

    /// Total number of structurally nonzero entries.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(|c| c.len()).sum()
    }

    /// Number of nonzero entries in column `col`.
    pub fn col_nnz(&self, col: usize) -> usize {
        self.cols[col].len()
    }

    /// Largest negative λ-degree appearing in column `col` (the per-operand
    /// ingredient of the paper's roundoff parameter φ, §2.3).
    pub fn col_negative_degree(&self, col: usize) -> u32 {
        self.cols[col]
            .iter()
            .map(|(_, p)| p.negative_degree())
            .max()
            .unwrap_or(0)
    }

    /// Evaluate every entry at a concrete λ, producing numeric sparse
    /// columns suitable for plan compilation. Entries that evaluate below
    /// `COEFF_EPS` in magnitude are kept (they may be legitimate tiny
    /// coefficients like λ² at small λ).
    pub fn eval(&self, lambda: f64) -> Vec<Vec<(usize, f64)>> {
        self.cols
            .iter()
            .map(|col| {
                col.iter()
                    .map(|(r, p)| (*r, p.eval(lambda)))
                    .filter(|(_, v)| v.abs() > 0.0)
                    .collect()
            })
            .collect()
    }

    /// Build from a dense row-major slice of Laurent entries.
    pub fn from_dense(rows: usize, cols: usize, entries: &[Laurent]) -> Self {
        assert_eq!(entries.len(), rows * cols);
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let e = &entries[r * cols + c];
                if !e.is_zero() {
                    m.set(r, c, e.clone());
                }
            }
        }
        m
    }

    /// Build from a dense row-major slice of plain numbers (degree-0 rules).
    pub fn from_dense_f64(rows: usize, cols: usize, entries: &[f64]) -> Self {
        let lp: Vec<Laurent> = entries.iter().map(|&c| Laurent::constant(c)).collect();
        Self::from_dense(rows, cols, &lp)
    }

    /// Horizontally concatenate: `[self | other]` (row counts must match).
    pub fn hcat(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hcat requires equal row counts");
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Self {
            rows: self.rows,
            cols,
        }
    }

    /// Apply a row-index permutation/injection: entry at row `r` moves to
    /// row `map(r)` in a matrix with `new_rows` rows.
    pub fn map_rows(&self, new_rows: usize, map: impl Fn(usize) -> usize) -> Self {
        let mut out = Self::zeros(new_rows, self.cols());
        for (t, col) in self.cols.iter().enumerate() {
            for (r, p) in col {
                out.add(map(*r), t, p);
            }
        }
        out
    }

    /// Kronecker-style product used by the tensor product of algorithms:
    /// output column `(t1 · other_cols + t2)` row `combine(r1, r2)` gets
    /// `self[r1, t1] · other[r2, t2]`.
    pub fn tensor(
        &self,
        other: &Self,
        new_rows: usize,
        combine: impl Fn(usize, usize) -> usize,
    ) -> Self {
        let mut out = Self::zeros(new_rows, self.cols() * other.cols());
        for (t1, col1) in self.cols.iter().enumerate() {
            for (t2, col2) in other.cols.iter().enumerate() {
                let t = t1 * other.cols() + t2;
                for (r1, p1) in col1 {
                    for (r2, p2) in col2 {
                        out.add(combine(*r1, *r2), t, &p1.mul(p2));
                    }
                }
            }
        }
        out
    }

    /// Multiply every entry of column `col` by monomial `c·λ^e`.
    pub fn scale_col(&mut self, col: usize, c: f64, e: i32) {
        for (_, p) in &mut self.cols[col] {
            *p = p.mul_monomial(c, e);
        }
        self.cols[col].retain(|(_, p)| !p.is_zero());
    }

    /// Drop entries whose largest |coefficient| is ≤ `tol`.
    pub fn prune(&self, tol: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self
                .cols
                .iter()
                .map(|col| {
                    col.iter()
                        .map(|(r, p)| (*r, p.prune(tol)))
                        .filter(|(_, p)| !p.is_zero())
                        .collect()
                })
                .collect(),
        }
    }

    /// Largest |coefficient| over all entries and terms.
    pub fn max_abs_coeff(&self) -> f64 {
        self.cols
            .iter()
            .flat_map(|c| c.iter())
            .fold(0.0_f64, |m, (_, p)| m.max(p.max_abs_coeff()))
    }

    /// True iff every entry is a degree-0 constant (an exact, λ-free rule).
    pub fn is_lambda_free(&self) -> bool {
        self.cols
            .iter()
            .flat_map(|c| c.iter())
            .all(|(_, p)| p.is_constant())
    }

    /// Approximate structural equality within `tol` on every coefficient.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.rows != other.rows || self.cols() != other.cols() {
            return false;
        }
        for t in 0..self.cols() {
            for r in 0..self.rows {
                let d = self.get(r, t).sub(&other.get(r, t));
                if d.max_abs_coeff() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Helper: treat coefficients below `COEFF_EPS` as structurally zero.
pub fn is_negligible(c: f64) -> bool {
    c.abs() <= COEFF_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = CoeffMatrix::zeros(4, 3);
        m.set(2, 1, Laurent::monomial(2.0, -1));
        assert_eq!(m.get(2, 1), Laurent::monomial(2.0, -1));
        assert_eq!(m.get(0, 0), Laurent::zero());
        assert_eq!(m.nnz(), 1);
        m.set(2, 1, Laurent::zero());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn add_accumulates_and_cancels() {
        let mut m = CoeffMatrix::zeros(2, 1);
        m.add(0, 0, &Laurent::one());
        m.add(0, 0, &Laurent::one());
        assert_eq!(m.get(0, 0), Laurent::constant(2.0));
        m.add(0, 0, &Laurent::constant(-2.0));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn col_negative_degree_tracks_phi() {
        let mut m = CoeffMatrix::zeros(3, 2);
        m.set(0, 0, Laurent::monomial(1.0, -1));
        m.set(1, 0, Laurent::one());
        m.set(2, 1, Laurent::monomial(1.0, 2));
        assert_eq!(m.col_negative_degree(0), 1);
        assert_eq!(m.col_negative_degree(1), 0);
    }

    #[test]
    fn eval_produces_numeric_columns() {
        let mut m = CoeffMatrix::zeros(2, 1);
        m.set(0, 0, Laurent::from_terms([(0, 1.0), (1, 1.0)]));
        m.set(1, 0, Laurent::monomial(1.0, -1));
        let cols = m.eval(0.5);
        assert_eq!(cols[0], vec![(0, 1.5), (1, 2.0)]);
    }

    #[test]
    fn hcat_concatenates() {
        let a = CoeffMatrix::from_dense_f64(2, 1, &[1.0, 0.0]);
        let b = CoeffMatrix::from_dense_f64(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.get(0, 0), Laurent::one());
        assert_eq!(c.get(1, 1), Laurent::one());
        assert_eq!(c.get(0, 2), Laurent::one());
    }

    #[test]
    fn map_rows_relocates() {
        let a = CoeffMatrix::from_dense_f64(2, 1, &[1.0, 2.0]);
        let b = a.map_rows(4, |r| r + 2);
        assert_eq!(b.get(2, 0), Laurent::one());
        assert_eq!(b.get(3, 0), Laurent::constant(2.0));
        assert_eq!(b.get(0, 0), Laurent::zero());
    }

    #[test]
    fn tensor_multiplies_supports() {
        // [1; λ] ⊗ [1; 1] over rows, combine = r1*2 + r2
        let a = CoeffMatrix::from_dense(2, 1, &[Laurent::one(), Laurent::monomial(1.0, 1)]);
        let b = CoeffMatrix::from_dense_f64(2, 1, &[1.0, 1.0]);
        let t = a.tensor(&b, 4, |r1, r2| r1 * 2 + r2);
        assert_eq!(t.cols(), 1);
        assert_eq!(t.get(0, 0), Laurent::one());
        assert_eq!(t.get(1, 0), Laurent::one());
        assert_eq!(t.get(2, 0), Laurent::monomial(1.0, 1));
        assert_eq!(t.get(3, 0), Laurent::monomial(1.0, 1));
    }

    #[test]
    fn lambda_free_detection() {
        let exact = CoeffMatrix::from_dense_f64(2, 2, &[1.0, 0.0, -1.0, 1.0]);
        assert!(exact.is_lambda_free());
        let mut apa = exact.clone();
        apa.set(0, 0, Laurent::monomial(1.0, -1));
        assert!(!apa.is_lambda_free());
    }
}
