//! The multi-layer perceptron: a stack of [`Dense`] layers trained with
//! batched SGD on softmax cross-entropy (the paper's §4 setup).

use crate::backend::Backend;
use crate::checkpoint::{CheckpointError, LayerState, TrainState};
use crate::data::Dataset;
use crate::layer::{Activation, Dense};
use crate::loss::{accuracy, softmax_cross_entropy};
use apa_gemm::{Mat, MatRef};

/// Base seed for the per-epoch shuffle: every epoch shuffles with
/// `SHUFFLE_SALT + epoch`, so the batch order is a pure function of the
/// epoch index — which is what makes an (epoch, batch) checkpoint cursor
/// a complete RNG stream position.
pub const SHUFFLE_SALT: u64 = 0xABCD_EF01;

fn finite_mat(m: &Mat<f32>) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

/// Per-epoch training record.
#[derive(Clone, Debug)]
pub struct EpochStats {
    pub epoch: usize,
    pub loss: f32,
    pub train_accuracy: f64,
    /// Wall-clock seconds spent in forward+backward+update (excludes
    /// shuffling and metric evaluation).
    pub seconds: f64,
    /// Batches this epoch whose step produced a non-finite loss or
    /// gradient and was re-run wholesale on the fallback backend (always 0
    /// when no fallback is configured).
    pub degraded_batches: u64,
}

/// Reusable activation buffers for [`Mlp::predict_into`]: two ping-pong
/// matrices that hold the hidden activations of an inference pass. At a
/// steady batch size the buffers (and the backends' workspace caches
/// underneath) settle at their high-water mark, so repeated inference —
/// the serving hot path — performs zero heap allocation.
pub struct InferenceScratch {
    ping: Mat<f32>,
    pong: Mat<f32>,
}

impl InferenceScratch {
    pub fn new() -> Self {
        Self {
            ping: Mat::zeros(0, 0),
            pong: Mat::zeros(0, 0),
        }
    }
}

impl Default for InferenceScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A feed-forward network of dense layers.
pub struct Mlp {
    pub layers: Vec<Dense>,
    /// Trusted backend for re-running a batch whose step went non-finite
    /// (see [`Self::with_fallback`]).
    fallback: Option<Backend>,
    degraded_batches: u64,
}

impl Mlp {
    /// Build from layer widths: `widths = [in, h1, …, out]` with ReLU on
    /// every layer except the (identity) output layer. `backends` supplies
    /// one matmul backend per dense layer.
    pub fn new(widths: &[usize], backends: Vec<Backend>, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let n_layers = widths.len() - 1;
        assert_eq!(
            backends.len(),
            n_layers,
            "one backend per dense layer required"
        );
        let layers = (0..n_layers)
            .map(|l| {
                let act = if l + 1 == n_layers {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                Dense::new(
                    widths[l],
                    widths[l + 1],
                    act,
                    backends[l].clone(),
                    seed.wrapping_add(l as u64 * 7919),
                )
            })
            .collect();
        Self {
            layers,
            fallback: None,
            degraded_batches: 0,
        }
    }

    /// Install a trusted fallback backend (typically
    /// [`crate::backend::classical`]). When set, [`Self::train_batch`]
    /// detects a non-finite loss, logits or gradient, discards the
    /// poisoned step, re-runs the whole batch with every layer temporarily
    /// on the fallback, and records the event — so one corrupted
    /// multiplication costs one recomputed batch instead of a diverged
    /// run.
    pub fn with_fallback(mut self, fallback: Backend) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Total batches ever re-run on the fallback backend.
    pub fn degraded_batches(&self) -> u64 {
        self.degraded_batches
    }

    /// Copy out every layer's parameters for a checkpoint.
    pub fn snapshot(&self) -> Vec<LayerState> {
        self.layers
            .iter()
            .map(|l| LayerState {
                w: l.w.clone(),
                b: l.b.clone(),
            })
            .collect()
    }

    /// Restore parameters and the fallback-rerun counter from a
    /// checkpoint, refusing a geometry mismatch. Backends are untouched —
    /// the caller rebuilds the network with its own backends and resumes
    /// the *state* into it.
    pub fn resume(&mut self, state: &TrainState) -> Result<(), CheckpointError> {
        if state.layers.len() != self.layers.len() {
            return Err(CheckpointError::Mismatch {
                what: format!(
                    "{} layers in checkpoint, {} in network",
                    state.layers.len(),
                    self.layers.len()
                ),
            });
        }
        for (li, (layer, saved)) in self.layers.iter().zip(&state.layers).enumerate() {
            if (saved.w.rows(), saved.w.cols()) != (layer.w.rows(), layer.w.cols())
                || saved.b.len() != layer.b.len()
            {
                return Err(CheckpointError::Mismatch {
                    what: format!(
                        "layer {li} is {}x{} in checkpoint, {}x{} in network",
                        saved.w.rows(),
                        saved.w.cols(),
                        layer.w.rows(),
                        layer.w.cols()
                    ),
                });
            }
        }
        for (layer, saved) in self.layers.iter_mut().zip(&state.layers) {
            layer.w = saved.w.clone();
            layer.b = saved.b.clone();
        }
        self.degraded_batches = state.degraded_batches;
        Ok(())
    }

    /// Layer widths including input: `[in, h1, …, out]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.layers.iter().map(|l| l.inputs()).collect();
        w.push(self.layers.last().unwrap().outputs());
        w
    }

    /// Training-mode forward through all layers (caches activations).
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Inference-mode forward (no caches).
    pub fn predict(&self, x: &Mat<f32>) -> Mat<f32> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward_inference(&cur);
        }
        cur
    }

    /// Inference-mode forward into a caller-owned output buffer, with all
    /// hidden activations held in a reusable [`InferenceScratch`] — the
    /// allocation-free serving path. `out` is resized to `batch ×
    /// out_width` in place; results are bitwise identical to
    /// [`Self::predict`]. `&self` like `predict`, so one shared network
    /// can serve many lanes, each owning its own scratch.
    pub fn predict_into(
        &self,
        x: MatRef<'_, f32>,
        out: &mut Mat<f32>,
        scratch: &mut InferenceScratch,
    ) {
        let last = self.layers.len() - 1;
        if last == 0 {
            self.layers[0].forward_inference_into(x, out);
            return;
        }
        self.layers[0].forward_inference_into(x, &mut scratch.ping);
        for l in 1..last {
            let (src, dst) = if l % 2 == 1 {
                (&scratch.ping, &mut scratch.pong)
            } else {
                (&scratch.pong, &mut scratch.ping)
            };
            self.layers[l].forward_inference_into(src.as_ref(), dst);
        }
        let src = if last % 2 == 1 {
            &scratch.ping
        } else {
            &scratch.pong
        };
        self.layers[last].forward_inference_into(src.as_ref(), out);
    }

    /// Warm every layer's backend for inference at the given batch sizes
    /// (see [`crate::backend::MatmulBackend::warm`]): after this, the
    /// first [`Self::predict_into`] at any warmed batch size performs zero
    /// heap allocations beyond sizing the caller's scratch and output.
    /// Must run on the thread that will do the inference — the gemm pack
    /// buffers are thread-local.
    pub fn warm_for_batches(&self, batch_sizes: &[usize]) {
        for layer in &self.layers {
            layer.warm(batch_sizes);
        }
    }

    /// Backpropagate from the loss gradient, leaving the gradients stored
    /// on each layer (for an external [`crate::optimizer::Optimizer`]).
    pub fn backward_only(&mut self, grad_logits: &Mat<f32>) {
        let mut grad = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
    }

    /// Backpropagate from the loss gradient and apply plain SGD.
    pub fn backward_and_step(&mut self, grad_logits: &Mat<f32>, lr: f32) {
        self.backward_only(grad_logits);
        for layer in &mut self.layers {
            layer.apply_sgd(lr);
        }
    }

    /// One SGD step on a single batch; returns (loss, batch accuracy).
    ///
    /// With a fallback installed ([`Self::with_fallback`]), the step is
    /// health-checked at two points: after the loss (non-finite loss,
    /// logits or loss gradient) and after backpropagation (non-finite
    /// weight/bias gradients). Either trips a wholesale re-run of the
    /// batch on the fallback backend **before** any weight is touched, so
    /// the parameters never absorb a poisoned update.
    pub fn train_batch(&mut self, x: &Mat<f32>, labels: &[u8], lr: f32) -> (f32, f64) {
        let logits = self.forward(x);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        if self.fallback.is_some()
            && (!loss.is_finite() || !finite_mat(&logits) || !finite_mat(&grad))
        {
            return self.redo_batch_on_fallback(x, labels, lr);
        }
        let acc = accuracy(&logits, labels);
        self.backward_only(&grad);
        if self.fallback.is_some() && !self.grads_finite() {
            return self.redo_batch_on_fallback(x, labels, lr);
        }
        for layer in &mut self.layers {
            layer.apply_sgd(lr);
        }
        (loss, acc)
    }

    fn grads_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.grad_w.as_ref().is_none_or(finite_mat)
                && l.grad_b
                    .as_ref()
                    .is_none_or(|g| g.iter().all(|v| v.is_finite()))
        })
    }

    /// Discard the poisoned step and redo the whole batch — forward, loss
    /// and update — with every layer on the fallback backend, then restore
    /// the original backends.
    fn redo_batch_on_fallback(&mut self, x: &Mat<f32>, labels: &[u8], lr: f32) -> (f32, f64) {
        let fallback = self.fallback.clone().expect("fallback required");
        let originals: Vec<Backend> = self.layers.iter().map(|l| l.backend()).collect();
        for layer in &mut self.layers {
            layer.set_backend(fallback.clone());
        }
        let logits = self.forward(x);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        self.backward_and_step(&grad, lr);
        for (layer, backend) in self.layers.iter_mut().zip(originals) {
            layer.set_backend(backend);
        }
        self.degraded_batches += 1;
        (loss, acc)
    }

    /// One epoch of batched SGD over `data`, shuffled by `epoch`-dependent
    /// seed; returns loss/accuracy/timing aggregates.
    pub fn train_epoch(
        &mut self,
        data: &Dataset,
        batch_size: usize,
        lr: f32,
        epoch: usize,
    ) -> EpochStats {
        let order = data.shuffled_indices(SHUFFLE_SALT.wrapping_add(epoch as u64));
        let degraded_before = self.degraded_batches;
        let mut total_loss = 0.0f64;
        let mut total_correct = 0.0f64;
        let mut batches = 0usize;
        let mut seconds = 0.0f64;
        for chunk in order.chunks(batch_size) {
            if chunk.len() < batch_size {
                break; // drop the ragged tail, as batched SGD usually does
            }
            let (x, labels) = data.gather(chunk);
            let t0 = std::time::Instant::now();
            let (loss, acc) = self.train_batch(&x, &labels, lr);
            seconds += t0.elapsed().as_secs_f64();
            total_loss += loss as f64;
            total_correct += acc;
            batches += 1;
        }
        EpochStats {
            epoch,
            loss: (total_loss / batches.max(1) as f64) as f32,
            train_accuracy: total_correct / batches.max(1) as f64,
            seconds,
            degraded_batches: self.degraded_batches - degraded_before,
        }
    }

    /// Accuracy over a dataset, evaluated in inference mode in batches.
    pub fn evaluate(&self, data: &Dataset, batch_size: usize) -> f64 {
        let n = data.len();
        let mut correct = 0.0f64;
        let mut seen = 0usize;
        let indices: Vec<usize> = (0..n).collect();
        for chunk in indices.chunks(batch_size) {
            let (x, labels) = data.gather(chunk);
            let logits = self.predict(&x);
            correct += accuracy(&logits, &labels) * chunk.len() as f64;
            seen += chunk.len();
        }
        correct / seen.max(1) as f64
    }

    /// Human-readable description of the per-layer backends.
    pub fn backend_summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| format!("{}x{}:{}", l.inputs(), l.outputs(), l.backend_name()))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::classical;
    use crate::data::Dataset;

    fn toy_dataset(n: usize) -> Dataset {
        // Two Gaussian-ish blobs in 8 dims, labels 0/1 — trivially
        // learnable; the MLP must reach high accuracy quickly.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut images = Mat::zeros(n, 8);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 2) as u8;
            let center = if class == 0 { -1.0 } else { 1.0 };
            for j in 0..8 {
                images.set(i, j, (center + 0.3 * next()) as f32);
            }
            labels.push(class);
        }
        Dataset::new(images, labels, 2)
    }

    fn toy_mlp() -> Mlp {
        Mlp::new(&[8, 16, 2], vec![classical(1), classical(1)], 7)
    }

    #[test]
    fn widths_and_summary() {
        let net = toy_mlp();
        assert_eq!(net.widths(), vec![8, 16, 2]);
        assert!(net.backend_summary().contains("classical"));
    }

    #[test]
    fn forward_shapes() {
        let mut net = toy_mlp();
        let x = Mat::zeros(5, 8);
        let y = net.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 2));
        let yp = net.predict(&x);
        assert_eq!((yp.rows(), yp.cols()), (5, 2));
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let data = toy_dataset(200);
        let mut net = toy_mlp();
        let first = net.train_epoch(&data, 20, 0.1, 0);
        let mut last = first.clone();
        for e in 1..15 {
            last = net.train_epoch(&data, 20, 0.1, e);
        }
        assert!(
            last.loss < first.loss,
            "loss should fall: {} → {}",
            first.loss,
            last.loss
        );
        let acc = net.evaluate(&data, 50);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn predict_into_is_bitwise_equal_to_predict() {
        let data = toy_dataset(40);
        let mut net = toy_mlp();
        for e in 0..3 {
            net.train_epoch(&data, 20, 0.1, e);
        }
        let mut scratch = InferenceScratch::new();
        let mut out = Mat::zeros(0, 0);
        // Varying batch sizes exercise the scratch resize path.
        for batch in [1usize, 7, 20] {
            let (x, _) = data.gather(&(0..batch).collect::<Vec<_>>());
            let expect = net.predict(&x);
            net.predict_into(x.as_ref(), &mut out, &mut scratch);
            assert_eq!((out.rows(), out.cols()), (batch, 2));
            for i in 0..batch {
                for j in 0..2 {
                    assert_eq!(out.at(i, j).to_bits(), expect.at(i, j).to_bits());
                }
            }
        }
        // A single-layer network routes straight into `out`.
        let single = Mlp::new(&[8, 2], vec![classical(1)], 3);
        let (x, _) = data.gather(&[0, 1, 2]);
        let expect = single.predict(&x);
        single.predict_into(x.as_ref(), &mut out, &mut scratch);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(out.at(i, j).to_bits(), expect.at(i, j).to_bits());
            }
        }
    }

    #[test]
    fn epoch_stats_track_time() {
        let data = toy_dataset(60);
        let mut net = toy_mlp();
        let stats = net.train_epoch(&data, 20, 0.05, 0);
        assert!(stats.seconds > 0.0);
        assert_eq!(stats.epoch, 0);
    }

    #[test]
    #[should_panic(expected = "one backend per dense layer")]
    fn backend_count_is_enforced() {
        let _ = Mlp::new(&[4, 4, 4], vec![classical(1)], 0);
    }

    /// Delegates to an inner (exact) backend but poisons one chosen
    /// matmul call with a NaN — models a transient numerical fault inside
    /// a layer multiplication.
    struct FaultyBackend {
        inner: Backend,
        poison_call: u64,
        calls: std::sync::atomic::AtomicU64,
    }

    impl crate::backend::MatmulBackend for FaultyBackend {
        fn matmul_into(
            &self,
            a: apa_gemm::MatRef<'_, f32>,
            b: apa_gemm::MatRef<'_, f32>,
            mut c: apa_gemm::MatMut<'_, f32>,
        ) {
            self.inner.matmul_into(a, b, c.rb());
            let call = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if call == self.poison_call {
                c.set(0, 0, f32::NAN);
            }
        }

        fn name(&self) -> String {
            format!("faulty({})", self.inner.name())
        }
    }

    #[test]
    fn fallback_rerun_recovers_poisoned_batch_exactly() {
        // Each batch issues 6 backend calls (2 forward, 4 backward), so
        // call 7 poisons a *forward* product of batch 1 (caught by the
        // non-finite loss check) and call 10 poisons a *weight gradient*
        // of batch 1 (caught by the gradient check). Either way the batch
        // must be re-run on the exact fallback before any weight update,
        // leaving the trajectory bitwise identical to a fault-free run.
        let data = toy_dataset(200);
        let mut clean = toy_mlp();
        for e in 0..5 {
            let stats = clean.train_epoch(&data, 20, 0.1, e);
            assert_eq!(stats.degraded_batches, 0, "no fallback configured");
        }
        let acc_clean = clean.evaluate(&data, 50);

        for poison_call in [7u64, 10u64] {
            let faulty: Backend = std::sync::Arc::new(FaultyBackend {
                inner: classical(1),
                poison_call,
                calls: std::sync::atomic::AtomicU64::new(0),
            });
            let mut net =
                Mlp::new(&[8, 16, 2], vec![faulty.clone(), faulty], 7).with_fallback(classical(1));
            let mut per_epoch = 0u64;
            for e in 0..5 {
                per_epoch += net.train_epoch(&data, 20, 0.1, e).degraded_batches;
            }
            assert_eq!(net.degraded_batches(), 1, "exactly one batch re-run");
            assert_eq!(per_epoch, 1, "EpochStats must surface the event");
            for (lc, lf) in clean.layers.iter().zip(&net.layers) {
                assert_eq!(lc.w, lf.w, "recovered weights must match fault-free run");
            }
            assert_eq!(net.evaluate(&data, 50), acc_clean);
        }
    }
}
