//! Algorithm-file I/O.
//!
//! Two formats are supported:
//!
//! * **JSON** (serde) — lossless round-trip of [`BilinearAlgorithm`];
//! * **text** — a human-editable format in the spirit of the
//!   Benson–Ballard framework's coefficient files, extended with Laurent
//!   literals so APA rules (λ, λ⁻¹, …) can be expressed. This is the escape
//!   hatch for plugging in externally obtained tensors (e.g. Smirnov's
//!   supplementary data) without recompiling.
//!
//! Text grammar (line oriented, `#` starts a comment):
//!
//! ```text
//! algorithm bini322
//! dims 3 2 2
//! rank 10
//! mult 0
//! A 0 0 1
//! A 1 1 1
//! B 0 0 L
//! B 1 1 1
//! C 0 0 L^-1
//! C 1 1 1
//! mult 1
//! ...
//! ```

use crate::bilinear::{BilinearAlgorithm, Dims};
use crate::coeffs::CoeffMatrix;
use crate::laurent::Laurent;
use std::fmt::Write as _;

/// Serialize to JSON.
pub fn to_json(alg: &BilinearAlgorithm) -> String {
    serde_json::to_string_pretty(alg).expect("BilinearAlgorithm serializes infallibly")
}

/// Deserialize from JSON, re-checking shape invariants.
pub fn from_json(s: &str) -> Result<BilinearAlgorithm, String> {
    let alg: BilinearAlgorithm =
        serde_json::from_str(s).map_err(|e| format!("JSON parse error: {e}"))?;
    check_shapes(&alg)?;
    Ok(alg)
}

fn check_shapes(alg: &BilinearAlgorithm) -> Result<(), String> {
    let d = alg.dims;
    if alg.u.rows() != d.m * d.k || alg.v.rows() != d.k * d.n || alg.w.rows() != d.m * d.n {
        return Err(format!(
            "inconsistent shapes for dims {}: U {}, V {}, W {}",
            d,
            alg.u.rows(),
            alg.v.rows(),
            alg.w.rows()
        ));
    }
    if alg.u.cols() != alg.v.cols() || alg.u.cols() != alg.w.cols() {
        return Err("U, V, W disagree on rank".into());
    }
    Ok(())
}

/// Serialize to the text format.
pub fn to_text(alg: &BilinearAlgorithm) -> String {
    let mut out = String::new();
    let d = alg.dims;
    writeln!(out, "algorithm {}", alg.name).unwrap();
    writeln!(out, "dims {} {} {}", d.m, d.k, d.n).unwrap();
    writeln!(out, "rank {}", alg.rank()).unwrap();
    for t in 0..alg.rank() {
        writeln!(out, "mult {t}").unwrap();
        for (r, p) in alg.u.col(t) {
            writeln!(out, "A {} {} {}", r / d.k, r % d.k, p).unwrap();
        }
        for (r, p) in alg.v.col(t) {
            writeln!(out, "B {} {} {}", r / d.n, r % d.n, p).unwrap();
        }
        for (r, p) in alg.w.col(t) {
            writeln!(out, "C {} {} {}", r / d.n, r % d.n, p).unwrap();
        }
    }
    out
}

/// Parse the text format.
pub fn from_text(s: &str) -> Result<BilinearAlgorithm, String> {
    let mut name = String::from("unnamed");
    let mut dims: Option<Dims> = None;
    let mut rank: Option<usize> = None;
    let mut u: Option<CoeffMatrix> = None;
    let mut v: Option<CoeffMatrix> = None;
    let mut w: Option<CoeffMatrix> = None;
    let mut cur_mult: Option<usize> = None;
    let mut seen_mults = 0usize;

    for (lineno, raw) in s.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
        match tag {
            "algorithm" => {
                name = parts.next().ok_or_else(|| err("missing name"))?.to_string();
            }
            "dims" => {
                let m: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad m"))?;
                let k: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad k"))?;
                let n: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad n"))?;
                dims = Some(Dims::new(m, k, n));
            }
            "rank" => {
                rank = Some(
                    parts
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| err("bad rank"))?,
                );
                let d = dims.ok_or_else(|| err("rank before dims"))?;
                let r = rank.unwrap();
                u = Some(CoeffMatrix::zeros(d.m * d.k, r));
                v = Some(CoeffMatrix::zeros(d.k * d.n, r));
                w = Some(CoeffMatrix::zeros(d.m * d.n, r));
            }
            "mult" => {
                let t: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad mult index"))?;
                let r = rank.ok_or_else(|| err("mult before rank"))?;
                if t >= r {
                    return Err(err(&format!("mult index {t} >= rank {r}")));
                }
                cur_mult = Some(t);
                seen_mults += 1;
            }
            "A" | "B" | "C" => {
                let d = dims.ok_or_else(|| err("entry before dims"))?;
                let t = cur_mult.ok_or_else(|| err("entry before any mult"))?;
                let i: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad row index"))?;
                let j: usize = parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err("bad col index"))?;
                let rest: Vec<&str> = parts.collect();
                if rest.is_empty() {
                    return Err(err("missing coefficient"));
                }
                let coeff = Laurent::parse(&rest.join(" ")).map_err(|e| err(&e))?;
                match tag {
                    "A" => {
                        if i >= d.m || j >= d.k {
                            return Err(err("A index out of range"));
                        }
                        u.as_mut().unwrap().add(d.a_index(i, j), t, &coeff);
                    }
                    "B" => {
                        if i >= d.k || j >= d.n {
                            return Err(err("B index out of range"));
                        }
                        v.as_mut().unwrap().add(d.b_index(i, j), t, &coeff);
                    }
                    _ => {
                        if i >= d.m || j >= d.n {
                            return Err(err("C index out of range"));
                        }
                        w.as_mut().unwrap().add(d.c_index(i, j), t, &coeff);
                    }
                }
            }
            other => return Err(err(&format!("unknown directive {other:?}"))),
        }
    }

    let dims = dims.ok_or("missing dims line")?;
    let rank = rank.ok_or("missing rank line")?;
    if seen_mults != rank {
        return Err(format!(
            "declared rank {rank} but found {seen_mults} mult sections"
        ));
    }
    Ok(BilinearAlgorithm::new(
        name,
        dims,
        u.unwrap(),
        v.unwrap(),
        w.unwrap(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brent::validate;
    use crate::catalog;

    #[test]
    fn json_roundtrip_preserves_catalog() {
        for alg in [catalog::strassen(), catalog::bini322(), catalog::apa332()] {
            let s = to_json(&alg);
            let back = from_json(&s).unwrap();
            assert_eq!(back.name, alg.name);
            assert_eq!(back.dims, alg.dims);
            assert_eq!(back.rank(), alg.rank());
            assert!(back.u.approx_eq(&alg.u, 0.0));
            assert!(back.v.approx_eq(&alg.v, 0.0));
            assert!(back.w.approx_eq(&alg.w, 0.0));
        }
    }

    #[test]
    fn text_roundtrip_preserves_bini() {
        let alg = catalog::bini322();
        let s = to_text(&alg);
        let back = from_text(&s).unwrap();
        assert_eq!(back.rank(), 10);
        assert_eq!(back.dims, alg.dims);
        assert!(back.u.approx_eq(&alg.u, 1e-12));
        assert!(back.v.approx_eq(&alg.v, 1e-12));
        assert!(back.w.approx_eq(&alg.w, 1e-12));
        assert_eq!(validate(&back).unwrap().sigma, Some(1));
    }

    #[test]
    fn text_roundtrip_preserves_every_catalog_entry() {
        for alg in catalog::all() {
            if alg.rank() > 120 {
                continue; // the Bini cube round-trips too, just slowly
            }
            let back = from_text(&to_text(&alg)).unwrap_or_else(|e| panic!("{}: {e}", alg.name));
            assert_eq!(back.rank(), alg.rank(), "{}", alg.name);
            assert!(back.w.approx_eq(&alg.w, 1e-12), "{}", alg.name);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_text("").is_err());
        assert!(from_text("dims 2 2 2").is_err()); // no rank
        assert!(from_text("dims 2 2 2\nrank 1\nmult 0\nA 5 0 1").is_err()); // index range
        assert!(from_text("dims 2 2 2\nrank 2\nmult 0\nA 0 0 1").is_err()); // missing mult
        assert!(from_text("dims 2 2 2\nrank 1\nbogus").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = "# a comment\nalgorithm t\n\ndims 1 1 1\nrank 1\nmult 0 # trailing\nA 0 0 1\nB 0 0 1\nC 0 0 1\n";
        let alg = from_text(s).unwrap();
        assert_eq!(alg.name, "t");
        assert!(validate(&alg).unwrap().exact);
    }

    #[test]
    fn json_rejects_inconsistent_shapes() {
        let alg = catalog::strassen();
        let mut v: serde_json::Value = serde_json::from_str(&to_json(&alg)).unwrap();
        v["dims"]["m"] = serde_json::json!(3);
        assert!(from_json(&v.to_string()).is_err());
    }
}
