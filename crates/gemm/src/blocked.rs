//! Single-threaded cache-blocked GEMM (the substrate's `gemm` leaf).
//!
//! Loop structure follows the BLIS/GotoBLAS decomposition: NC-wide column
//! blocks of `B` (L3-resident once packed), KC-deep rank-k updates, MC-tall
//! row blocks of `A` (L2-resident packed), then NR/MR register tiles
//! dispatched to the microkernel. Performance intentionally *degrades for
//! small dimensions* (packing amortizes poorly), which is the property the
//! paper's crossover analysis (§2.4, §3.3) depends on.

use crate::abft::{self, AbftBufs, AbftSession};
use crate::blocktune::block_sizes;
use crate::kernel::{kernel_spec, KernelSpec, MAX_TILE_ELEMS};
use crate::matrix::{Mat, MatMut, MatRef};
use crate::pack::{
    pack_a, pack_a_combined, pack_b, pack_b_combined, pack_b_combined_with_sums, pack_b_with_sums,
    MAX_PACK_TERMS,
};
use crate::scalar::Scalar;
use std::any::{Any, TypeId};
use std::cell::RefCell;

/// Cache-blocking parameters. The active values come from
/// [`crate::blocktune::block_sizes`] (cache-hierarchy analytic sizing, a
/// persisted tune, or env overrides); [`BlockSizes::for_scalar`] keeps the
/// pre-dispatch static defaults for reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    pub mc: usize,
    pub kc: usize,
    pub nc: usize,
}

impl BlockSizes {
    /// The static pre-dispatch defaults (a ~32 KB L1 / 256 KB L2 budget —
    /// the paper's Sandy Bridge). The drivers now use the tuned
    /// [`crate::blocktune::block_sizes`] instead; this stays as the
    /// deterministic baseline for tests and comparisons.
    pub fn for_scalar<T: Scalar>() -> Self {
        // Element-count budgets scale inversely with element size.
        let shrink = std::mem::size_of::<T>() / 4; // 1 for f32, 2 for f64
        Self {
            mc: 128,
            kc: 256 / shrink.max(1),
            nc: 1024,
        }
    }
}

/// Scratch buffers reused across packing rounds of a single GEMM call.
///
/// Reusable across calls via [`gemm_st_with_scratch`] to keep the many
/// medium-sized gemm invocations of the APA engine allocation-free.
pub struct Scratch<T> {
    a_pack: Vec<T>,
    b_pack: Vec<T>,
    /// ABFT checksum scratch (empty until a session is installed; all
    /// buffers grow-only, so checked steady state stays allocation-free).
    ab: AbftBufs<T>,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scratch<T> {
    pub fn new() -> Self {
        Self {
            a_pack: Vec::new(),
            b_pack: Vec::new(),
            ab: AbftBufs::default(),
        }
    }

    /// Bytes currently held by the pack buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.a_pack.capacity() + self.b_pack.capacity()) * std::mem::size_of::<T>()
            + self.ab.capacity_bytes()
    }
}

thread_local! {
    /// Per-thread pack-buffer cache, keyed by element type. Every pool
    /// worker warms its own entry on first use, after which repeated
    /// [`gemm_st`] calls are allocation-free.
    static PACK_CACHE: RefCell<Vec<(TypeId, Box<dyn Any>)>> = const { RefCell::new(Vec::new()) };
}

/// Source of pre-packed B panels shared between the workers of one
/// parallel call (see `crate::parallel`). `panel(slab)` returns the packed
/// panel of KC-slab `slab` (`pc = slab · kc`) for the jc block the driver
/// was constructed for, packing it cooperatively on first demand. The
/// optional pair carries the fused ABFT row sums `(b_sum, b_mag)` of the
/// panel; it is `Some` exactly when the call runs under an ABFT session.
///
/// The packed bytes must be bitwise identical to what the local
/// `pack_b`/`pack_b_combined` sweep would produce for the same sub-block —
/// the parallel ≡ single-threaded bitwise contract rests on it.
pub(crate) trait BPanelSource<T: Scalar>: Sync {
    fn panel(&self, slab: usize) -> PackedPanel<'_, T>;
}

/// A packed B panel plus, when the call runs under an ABFT session, its
/// fused `(row_sum, row_mag)` checksum pair.
pub(crate) type PackedPanel<'a, T> = (&'a [T], Option<(&'a [f64], &'a [f64])>);

/// `C ← α·A·B + β·C`, single-threaded. Pack buffers come from a
/// thread-local cache, so steady-state calls do not touch the heap; use
/// [`gemm_st_with_scratch`] to manage the buffers explicitly instead.
pub fn gemm_st<T: Scalar>(alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>, beta: T, c: MatMut<'_, T>) {
    with_cached_scratch(|scratch| gemm_st_with_scratch(alpha, a, b, beta, c, scratch));
}

/// Run `f` with this thread's cached [`Scratch`] for `T`. The scratch is
/// taken *out* of the cache (ending the RefCell borrow) before `f` runs,
/// then put back — re-entrancy can never observe an outstanding borrow.
pub(crate) fn with_cached_scratch<T: Scalar, R>(f: impl FnOnce(&mut Scratch<T>) -> R) -> R {
    let mut scratch: Scratch<T> = PACK_CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        match cache.iter_mut().find(|(id, _)| *id == TypeId::of::<T>()) {
            Some((_, slot)) => std::mem::take(
                slot.downcast_mut::<Scratch<T>>()
                    .expect("slot is type-keyed"),
            ),
            None => {
                cache.push((TypeId::of::<T>(), Box::new(Scratch::<T>::new())));
                Scratch::new()
            }
        }
    });
    let out = f(&mut scratch);
    PACK_CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        if let Some((_, slot)) = cache.iter_mut().find(|(id, _)| *id == TypeId::of::<T>()) {
            *slot
                .downcast_mut::<Scratch<T>>()
                .expect("slot is type-keyed") = scratch;
        }
    });
    out
}

/// [`gemm_st`] with caller-provided scratch (no allocation in steady state).
pub fn gemm_st_with_scratch<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
) {
    gemm_st_with_spec(&kernel_spec::<T>(), alpha, a, b, beta, c, scratch);
}

/// [`gemm_st_with_scratch`] on an explicit kernel (tier forced by the
/// caller — the dispatch-matrix tests and tier benches). Block sizes stay
/// the process-wide tuned ones, so different tiers split k identically
/// and results are bitwise equal across tiers.
pub fn gemm_st_with_spec<T: Scalar>(
    spec: &KernelSpec<T>,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
) {
    let session = abft::current();
    gemm_st_core(
        spec,
        block_sizes::<T>(),
        alpha,
        a,
        b,
        beta,
        c,
        scratch,
        session.as_deref(),
        None,
    );
}

/// One plain gemm with explicit blocking — the probe the measured
/// autotune races candidates through (`α = 1`, `β = 0`, cached scratch).
/// Never ABFT-checked: candidate block sizes are being timed, not trusted.
pub(crate) fn gemm_st_probe<T: Scalar>(
    bs: BlockSizes,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
) {
    with_cached_scratch(|scratch| {
        gemm_st_core(
            &kernel_spec::<T>(),
            bs,
            T::ONE,
            a,
            b,
            T::ZERO,
            c,
            scratch,
            None,
            None,
        );
    });
}

/// The blocked driver. With an ABFT session the pack sweeps accumulate
/// checksums, every `(jc, pc, ic)` block update is verified, and flagged
/// regions are recomputed with the scalar-tier kernel before returning.
/// Returns the number of regions that violated their checksums (0 on a
/// clean run) — the recursive repair verification keys off it.
///
/// `panels`, when present, supplies pre-packed B panels for every KC slab
/// (the caller guarantees the view of `b` spans exactly the jc block the
/// source was built for, i.e. `n ≤ bs.nc`); the local `pack_b` sweep is
/// skipped and the first rank-k loop reads the shared panel instead —
/// this is how the 2D parallel driver packs each B panel once per call
/// rather than once per worker.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_st_core<T: Scalar>(
    spec: &KernelSpec<T>,
    bs: BlockSizes,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
    abft: Option<&AbftSession>,
    panels: Option<&dyn BPanelSource<T>>,
) -> usize {
    debug_assert!(
        panels.is_none() || b.cols() <= bs.nc,
        "shared panels cover exactly one jc block"
    );
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "inner dimensions must match");
    assert_eq!(m, c.rows(), "C row count mismatch");
    assert_eq!(n, c.cols(), "C column count mismatch");

    if m == 0 || n == 0 {
        return 0;
    }
    if k == 0 || alpha == T::ZERO {
        scale_in_place(beta, &mut c);
        return 0;
    }

    if abft.is_some() {
        scratch.ab.begin_call(beta, &c);
    }

    for jc in (0..n).step_by(bs.nc) {
        let nc = bs.nc.min(n - jc);
        if abft.is_some() {
            scratch.ab.begin_jc(m);
        }
        for pc in (0..k).step_by(bs.kc) {
            let kc = bs.kc.min(k - pc);
            let shared = panels.map(|p| p.panel(pc / bs.kc));
            match shared {
                Some((_, sums)) => {
                    // The arena packed (and fault-injected) this panel
                    // exactly once; adopt its fused row sums so the
                    // per-cell ABFT checks see the same checksums a local
                    // pack sweep would have produced.
                    if abft.is_some() {
                        let (b_sum, b_mag) =
                            sums.expect("shared panels carry ABFT sums under a session");
                        scratch.ab.b_sum.clear();
                        scratch.ab.b_sum.extend_from_slice(b_sum);
                        scratch.ab.b_mag.clear();
                        scratch.ab.b_mag.extend_from_slice(b_mag);
                    }
                }
                None => {
                    if abft.is_some() {
                        pack_b_with_sums(
                            b.subview(pc, jc, kc, nc),
                            &mut scratch.b_pack,
                            spec.nr,
                            &mut scratch.ab.b_sum,
                            &mut scratch.ab.b_mag,
                        );
                    } else {
                        pack_b(b.subview(pc, jc, kc, nc), &mut scratch.b_pack, spec.nr);
                    }
                    #[cfg(feature = "fault-inject")]
                    flip_pack_b(&mut scratch.b_pack, nc, kc, spec.nr);
                }
            }
            let b_panel: &[T] = match shared {
                Some((buf, _)) => buf,
                None => &scratch.b_pack,
            };
            // First rank-k update applies the caller's β, later ones add.
            let beta_eff = if pc == 0 { beta } else { T::ONE };
            let beta_zero = pc == 0 && beta == T::ZERO;
            for ic in (0..m).step_by(bs.mc) {
                let mc = bs.mc.min(m - ic);
                pack_a(a.subview(ic, pc, mc, kc), &mut scratch.a_pack, spec.mr);
                #[cfg(feature = "fault-inject")]
                flip_pack_a(&mut scratch.a_pack, mc, kc, spec.mr);
                run_tiles(
                    spec,
                    alpha,
                    beta_eff,
                    beta_zero,
                    &scratch.a_pack,
                    b_panel,
                    kc,
                    mc,
                    nc,
                    ic,
                    jc,
                    &mut c,
                );
                #[cfg(feature = "fault-inject")]
                flip_output(&mut c, ic, jc, mc, nc);
                if abft.is_some() {
                    scratch.ab.accum_rows(&[(T::ONE, a)], ic, pc, mc, kc);
                }
            }
        }
        // Deferred full-k row check per ic block; column localization
        // (from the source operands) runs only on detection.
        if let Some(session) = abft {
            for ic in (0..m).step_by(bs.mc) {
                let mc = bs.mc.min(m - ic);
                if scratch
                    .ab
                    .check_rows(session, alpha, beta, &c, ic, jc, mc, nc, k)
                {
                    scratch.ab.localize(
                        session,
                        &[(T::ONE, a)],
                        &[(T::ONE, b)],
                        alpha,
                        beta,
                        &c,
                        ic,
                        jc,
                        mc,
                        nc,
                        spec.nr,
                        k,
                    );
                }
            }
        }
    }

    let Some(session) = abft else { return 0 };
    let violations = scratch.ab.flags.len();
    if violations > 0 && session.cfg.repair {
        let mut flags = std::mem::take(&mut scratch.ab.flags);
        let scalar_spec = KernelSpec::<T>::scalar();
        let nested = AbftSession::verify_only(session.cfg.slack);
        let mut repair_scratch = Scratch::new();
        for reg in &flags {
            // Replay the caller's β against the pristine entry values.
            if beta != T::ZERO {
                scratch.ab.restore_region(&mut c, *reg);
            }
            // Restricted recompute over the full k: the region is a whole
            // ic block × an NR-aligned stripe, so the same BlockSizes
            // reproduce identical kc splits, sliver layouts and FMA chains
            // — bitwise equal to an uncorrupted run by the cross-tier
            // kernel contract.
            let sub_c = c.subview_mut(reg.r0, reg.c0, reg.rows, reg.cols);
            let bad = gemm_st_core(
                &scalar_spec,
                bs,
                alpha,
                a.subview(reg.r0, 0, reg.rows, k),
                b.subview(0, reg.c0, k, reg.cols),
                beta,
                sub_c,
                &mut repair_scratch,
                Some(&nested),
                None,
            );
            if bad == 0 {
                session.stats.bump_repaired();
            } else {
                session.stats.bump_unrepaired();
            }
        }
        flags.clear();
        scratch.ab.flags = flags;
    }
    violations
}

/// Dispatch the MR×NR register tiles of one packed (mc × kc)·(kc × nc)
/// block product into `C` — the shared inner loops of the plain and
/// combined drivers. Tile shape comes from the dispatched kernel spec.
#[allow(clippy::too_many_arguments)]
fn run_tiles<T: Scalar>(
    spec: &KernelSpec<T>,
    alpha: T,
    beta_eff: T,
    beta_zero: bool,
    a_pack: &[T],
    b_pack: &[T],
    kc: usize,
    mc: usize,
    nc: usize,
    ic: usize,
    jc: usize,
    c: &mut MatMut<'_, T>,
) {
    let (mr, nr) = (spec.mr, spec.nr);
    let cs = c.row_stride();
    for jr in (0..nc).step_by(nr) {
        let nrr = nr.min(nc - jr);
        let b_sliver = &b_pack[(jr / nr) * kc * nr..];
        for ir in (0..mc).step_by(mr) {
            let mrr = mr.min(mc - ir);
            let a_sliver = &a_pack[(ir / mr) * kc * mr..];
            if mrr == mr && nrr == nr {
                // Full tile: write straight into C.
                let mut tile = c.subview_mut(ic + ir, jc + jr, mr, nr);
                // SAFETY: tile is a writable MR×NR block with
                // stride cs; slivers hold kc·MR / kc·NR packed
                // elements by construction of pack_a/pack_b.
                unsafe {
                    spec.run(
                        kc,
                        alpha,
                        a_sliver.as_ptr(),
                        b_sliver.as_ptr(),
                        beta_eff,
                        beta_zero,
                        tile.as_mut_ptr(),
                        cs,
                    );
                }
            } else {
                // Ragged edge: compute the *raw* accumulator (α = 1,
                // β = 0 leaves the FMA chain unscaled and bitwise equal
                // across tiers) into a scratch tile, then apply the same
                // α/β epilogue the kernel uses on full tiles — so a tile
                // that is full for one tier and ragged for another still
                // rounds identically.
                let mut tmp = [T::ZERO; MAX_TILE_ELEMS];
                debug_assert!(mr * nr <= MAX_TILE_ELEMS);
                // SAFETY: tmp is a full MR×NR tile (stride NR).
                unsafe {
                    spec.run(
                        kc,
                        T::ONE,
                        a_sliver.as_ptr(),
                        b_sliver.as_ptr(),
                        T::ZERO,
                        true,
                        tmp.as_mut_ptr(),
                        nr,
                    );
                }
                for i in 0..mrr {
                    let crow = c.subview_mut(ic + ir + i, jc + jr, 1, nrr);
                    merge_row(crow, &tmp[i * nr..i * nr + nrr], alpha, beta_eff, beta_zero);
                }
            }
        }
    }
}

/// Restrict every term's source to the same sub-block and hand the
/// restricted list to `f`. Uses a fixed-capacity inline buffer (no heap)
/// up to [`MAX_PACK_TERMS`] terms.
#[inline]
pub(crate) fn with_subviews<'a, T: Scalar, R>(
    terms: &[(T, MatRef<'a, T>)],
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    f: impl FnOnce(&[(T, MatRef<'a, T>)]) -> R,
) -> R {
    if terms.len() <= MAX_PACK_TERMS {
        let mut sub = [terms[0]; MAX_PACK_TERMS];
        for (slot, (cf, src)) in sub.iter_mut().zip(terms) {
            *slot = (*cf, src.subview(r0, c0, rows, cols));
        }
        f(&sub[..terms.len()])
    } else {
        let sub: Vec<(T, MatRef<'a, T>)> = terms
            .iter()
            .map(|(cf, src)| (*cf, src.subview(r0, c0, rows, cols)))
            .collect();
        f(&sub)
    }
}

/// Fused-operand GEMM: `C ← α·(Σ cᵃᵢ·Aᵢ)·(Σ cᵇⱼ·Bⱼ) + β·C` where the two
/// linear combinations are formed *inside* the pack sweep
/// ([`pack_a_combined`] / [`pack_b_combined`]) — the S/T operands of the
/// APA framework are never materialized in memory.
///
/// Loop structure, α/β semantics and tile dispatch are identical to
/// [`gemm_st_with_scratch`]; with single-term lists `[(T::ONE, a)]` /
/// `[(T::ONE, b)]` the result is bitwise equal to the plain driver.
/// Term lists must be non-empty and each list's sources share one shape.
pub fn gemm_combined_st_with_scratch<T: Scalar>(
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
) {
    gemm_combined_st_with_spec(
        &kernel_spec::<T>(),
        alpha,
        a_terms,
        b_terms,
        beta,
        c,
        scratch,
    );
}

/// [`gemm_combined_st_with_scratch`] on an explicit kernel (tier forced
/// by the caller). Block sizes stay the process-wide tuned ones so tiers
/// agree bitwise.
#[allow(clippy::too_many_arguments)]
pub fn gemm_combined_st_with_spec<T: Scalar>(
    spec: &KernelSpec<T>,
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
) {
    let session = abft::current();
    gemm_combined_core(
        spec,
        block_sizes::<T>(),
        alpha,
        a_terms,
        b_terms,
        beta,
        c,
        scratch,
        session.as_deref(),
        None,
    );
}

/// The fused-operand driver body; same ABFT story as [`gemm_st_core`]
/// (repairs re-run the *combined* product over the flagged region, so a
/// fused leaf never needs its operands materialized even when repairing).
/// `panels` has the same contract as in [`gemm_st_core`]: pre-packed
/// *combined* B panels for every KC slab of the (single) jc block.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_combined_core<T: Scalar>(
    spec: &KernelSpec<T>,
    bs: BlockSizes,
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    mut c: MatMut<'_, T>,
    scratch: &mut Scratch<T>,
    abft: Option<&AbftSession>,
    panels: Option<&dyn BPanelSource<T>>,
) -> usize {
    assert!(
        !a_terms.is_empty() && !b_terms.is_empty(),
        "gemm_combined needs at least one term per operand"
    );
    let (m, k) = (a_terms[0].1.rows(), a_terms[0].1.cols());
    let n = b_terms[0].1.cols();
    for (_, src) in a_terms {
        assert_eq!((src.rows(), src.cols()), (m, k), "A-term shape mismatch");
    }
    for (_, src) in b_terms {
        assert_eq!(
            (src.rows(), src.cols()),
            (k, n),
            "B-term shape / inner dimension mismatch"
        );
    }
    assert_eq!(m, c.rows(), "C row count mismatch");
    assert_eq!(n, c.cols(), "C column count mismatch");

    if m == 0 || n == 0 {
        return 0;
    }
    if k == 0 || alpha == T::ZERO {
        scale_in_place(beta, &mut c);
        return 0;
    }

    debug_assert!(
        panels.is_none() || n <= bs.nc,
        "shared panels cover exactly one jc block"
    );

    if abft.is_some() {
        scratch.ab.begin_call(beta, &c);
    }

    for jc in (0..n).step_by(bs.nc) {
        let nc = bs.nc.min(n - jc);
        if abft.is_some() {
            scratch.ab.begin_jc(m);
        }
        for pc in (0..k).step_by(bs.kc) {
            let kc = bs.kc.min(k - pc);
            let shared = panels.map(|p| p.panel(pc / bs.kc));
            match shared {
                Some((_, sums)) => {
                    if abft.is_some() {
                        let (b_sum, b_mag) =
                            sums.expect("shared panels carry ABFT sums under a session");
                        scratch.ab.b_sum.clear();
                        scratch.ab.b_sum.extend_from_slice(b_sum);
                        scratch.ab.b_mag.clear();
                        scratch.ab.b_mag.extend_from_slice(b_mag);
                    }
                }
                None => {
                    // ABFT row sums ride the pack sweep itself (from the
                    // packed combined values), so checksums cost no extra
                    // pass over B.
                    with_subviews(b_terms, pc, jc, kc, nc, |sub| {
                        if abft.is_some() {
                            pack_b_combined_with_sums(
                                sub,
                                &mut scratch.b_pack,
                                spec.nr,
                                &mut scratch.ab.b_sum,
                                &mut scratch.ab.b_mag,
                            )
                        } else {
                            pack_b_combined(sub, &mut scratch.b_pack, spec.nr)
                        }
                    });
                    #[cfg(feature = "fault-inject")]
                    flip_pack_b(&mut scratch.b_pack, nc, kc, spec.nr);
                }
            }
            let b_panel: &[T] = match shared {
                Some((buf, _)) => buf,
                None => &scratch.b_pack,
            };
            // First rank-k update applies the caller's β, later ones add.
            let beta_eff = if pc == 0 { beta } else { T::ONE };
            let beta_zero = pc == 0 && beta == T::ZERO;
            for ic in (0..m).step_by(bs.mc) {
                let mc = bs.mc.min(m - ic);
                with_subviews(a_terms, ic, pc, mc, kc, |sub| {
                    pack_a_combined(sub, &mut scratch.a_pack, spec.mr)
                });
                #[cfg(feature = "fault-inject")]
                flip_pack_a(&mut scratch.a_pack, mc, kc, spec.mr);
                run_tiles(
                    spec,
                    alpha,
                    beta_eff,
                    beta_zero,
                    &scratch.a_pack,
                    b_panel,
                    kc,
                    mc,
                    nc,
                    ic,
                    jc,
                    &mut c,
                );
                #[cfg(feature = "fault-inject")]
                flip_output(&mut c, ic, jc, mc, nc);
                if abft.is_some() {
                    scratch.ab.accum_rows(a_terms, ic, pc, mc, kc);
                }
            }
        }
        // Deferred full-k row check per ic block; column localization
        // (from the source operands) runs only on detection.
        if let Some(session) = abft {
            for ic in (0..m).step_by(bs.mc) {
                let mc = bs.mc.min(m - ic);
                if scratch
                    .ab
                    .check_rows(session, alpha, beta, &c, ic, jc, mc, nc, k)
                {
                    scratch.ab.localize(
                        session, a_terms, b_terms, alpha, beta, &c, ic, jc, mc, nc, spec.nr, k,
                    );
                }
            }
        }
    }

    let Some(session) = abft else { return 0 };
    let violations = scratch.ab.flags.len();
    if violations > 0 && session.cfg.repair {
        let mut flags = std::mem::take(&mut scratch.ab.flags);
        let scalar_spec = KernelSpec::<T>::scalar();
        let nested = AbftSession::verify_only(session.cfg.slack);
        let mut repair_scratch = Scratch::new();
        for reg in &flags {
            if beta != T::ZERO {
                scratch.ab.restore_region(&mut c, *reg);
            }
            let sub_c = c.subview_mut(reg.r0, reg.c0, reg.rows, reg.cols);
            let bad = with_subviews(a_terms, reg.r0, 0, reg.rows, k, |asub| {
                with_subviews(b_terms, 0, reg.c0, k, reg.cols, |bsub| {
                    gemm_combined_core(
                        &scalar_spec,
                        bs,
                        alpha,
                        asub,
                        bsub,
                        beta,
                        sub_c,
                        &mut repair_scratch,
                        Some(&nested),
                        None,
                    )
                })
            });
            if bad == 0 {
                session.stats.bump_repaired();
            } else {
                session.stats.bump_unrepaired();
            }
        }
        flags.clear();
        scratch.ab.flags = flags;
    }
    violations
}

/// [`gemm_combined_st_with_scratch`] with pack buffers from the
/// thread-local cache (allocation-free in steady state).
pub fn gemm_combined_st<T: Scalar>(
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    c: MatMut<'_, T>,
) {
    with_cached_scratch(|scratch| {
        gemm_combined_st_with_scratch(alpha, a_terms, b_terms, beta, c, scratch)
    });
}

/// Apply the microkernel's α/β epilogue to one ragged row: `vals` holds
/// the raw accumulator, and the update uses the *same* operations as the
/// in-kernel full-tile epilogue (`α·v` for β = 0, `fma(α, v, β·c)`
/// otherwise) so ragged and full tiles round identically — the bitwise
/// cross-tier contract depends on it.
fn merge_row<T: Scalar>(mut crow: MatMut<'_, T>, vals: &[T], alpha: T, beta: T, beta_zero: bool) {
    let row = crow.row_mut(0);
    if beta_zero {
        for (dst, &v) in row.iter_mut().zip(vals) {
            *dst = alpha * v;
        }
    } else {
        for (dst, &v) in row.iter_mut().zip(vals) {
            *dst = alpha.mul_add(v, beta * *dst);
        }
    }
}

/// Consume an armed [`abft::sdc`] flip targeting the packed A panel:
/// `index` selects a valid (non-pad) element of the current `mc × kc`
/// block, mapped into the k-major sliver layout.
#[cfg(feature = "fault-inject")]
fn flip_pack_a<T: Scalar>(buf: &mut [T], mc: usize, kc: usize, mr: usize) {
    use crate::abft::sdc::{self, FlipTarget};
    if let Some(f) = sdc::take(FlipTarget::PackA) {
        let r = f.index % mc;
        let p = (f.index / mc) % kc;
        let pos = (r / mr) * kc * mr + p * mr + (r % mr);
        buf[pos] = buf[pos].flip_bit(f.bit);
    }
}

/// Consume an armed flip targeting the packed B panel (valid element of
/// the current `kc × nc` block, NR-sliver layout). `pub(crate)` so the
/// parallel shared-packing arena applies flips at its (single) pack site.
#[cfg(feature = "fault-inject")]
pub(crate) fn flip_pack_b<T: Scalar>(buf: &mut [T], nc: usize, kc: usize, nr: usize) {
    use crate::abft::sdc::{self, FlipTarget};
    if let Some(f) = sdc::take(FlipTarget::PackB) {
        let j = f.index % nc;
        let p = (f.index / nc) % kc;
        let pos = (j / nr) * kc * nr + p * nr + (j % nr);
        buf[pos] = buf[pos].flip_bit(f.bit);
    }
}

/// Consume an armed flip targeting the C block just written by the tile
/// sweep.
#[cfg(feature = "fault-inject")]
fn flip_output<T: Scalar>(c: &mut MatMut<'_, T>, ic: usize, jc: usize, mc: usize, nc: usize) {
    use crate::abft::sdc::{self, FlipTarget};
    if let Some(f) = sdc::take(FlipTarget::Output) {
        let i = f.index % mc;
        let j = (f.index / mc) % nc;
        let row = c.row_mut(ic + i);
        row[jc + j] = row[jc + j].flip_bit(f.bit);
    }
}

fn scale_in_place<T: Scalar>(beta: T, c: &mut MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    for i in 0..c.rows() {
        for v in c.row_mut(i) {
            *v = if beta == T::ZERO { T::ZERO } else { beta * *v };
        }
    }
}

/// Convenience: allocate and return `C = A · B`.
pub fn matmul<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> Mat<T> {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm_st(T::ONE, a, b, T::ZERO, c.as_mut());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::matmul_naive;

    fn rand_mat<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            T::from_f64(((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0)
        })
    }

    fn check_against_naive<T: Scalar>(m: usize, k: usize, n: usize, tol: f64) {
        let a = rand_mat::<T>(m, k, 1);
        let b = rand_mat::<T>(k, n, 2);
        let got = matmul(a.as_ref(), b.as_ref());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        assert!(err < tol, "({m},{k},{n}): rel err {err}");
    }

    #[test]
    fn matches_naive_small_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 7, 7), (8, 8, 8), (9, 17, 5)] {
            check_against_naive::<f32>(m, k, n, 1e-5);
            check_against_naive::<f64>(m, k, n, 1e-13);
        }
    }

    #[test]
    fn matches_naive_across_block_boundaries() {
        // Sizes straddling MC/KC/NC and MR/NR edges.
        for &(m, k, n) in &[
            (129, 257, 63),
            (130, 40, 1025),
            (255, 300, 17),
            (64, 512, 64),
        ] {
            check_against_naive::<f32>(m, k, n, 1e-4);
        }
        check_against_naive::<f64>(129, 257, 63, 1e-12);
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = rand_mat::<f64>(20, 30, 3);
        let b = rand_mat::<f64>(30, 10, 4);
        let c0 = rand_mat::<f64>(20, 10, 5);
        let mut c = c0.clone();
        gemm_st(2.0, a.as_ref(), b.as_ref(), -1.0, c.as_mut());
        let ab = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..20 {
            for j in 0..10 {
                let expect = 2.0 * ab.at(i, j) - c0.at(i, j);
                assert!((c.at(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn beta_one_accumulates() {
        let a = rand_mat::<f32>(16, 16, 6);
        let b = rand_mat::<f32>(16, 16, 7);
        let mut c = Mat::<f32>::zeros(16, 16);
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_st(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
        let ab = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..16 {
            for j in 0..16 {
                assert!((c.at(i, j) - 2.0 * ab.at(i, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn k_zero_only_scales() {
        let a = Mat::<f64>::zeros(4, 0);
        let b = Mat::<f64>::zeros(0, 4);
        let mut c = Mat::from_fn(4, 4, |i, j| (i + j) as f64);
        let orig = c.clone();
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.at(i, j), 0.5 * orig.at(i, j));
            }
        }
    }

    #[test]
    fn combined_single_term_is_bitwise_plain_gemm() {
        let a = rand_mat::<f32>(70, 45, 20);
        let b = rand_mat::<f32>(45, 33, 21);
        let mut want = rand_mat::<f32>(70, 33, 22);
        let mut got = want.clone();
        gemm_st(1.5, a.as_ref(), b.as_ref(), 0.5, want.as_mut());
        gemm_combined_st(
            1.5,
            &[(1.0, a.as_ref())],
            &[(1.0, b.as_ref())],
            0.5,
            got.as_mut(),
        );
        for i in 0..70 {
            for j in 0..33 {
                assert_eq!(got.at(i, j).to_bits(), want.at(i, j).to_bits());
            }
        }
    }

    #[test]
    fn combined_matches_materialize_then_gemm_bitwise() {
        use crate::add::combine;
        for arity in [2usize, 3, 4, 5] {
            let (m, k, n) = (41, 37, 29);
            let a_srcs: Vec<Mat<f64>> = (0..arity)
                .map(|s| rand_mat::<f64>(m, k, 30 + s as u64))
                .collect();
            let b_srcs: Vec<Mat<f64>> = (0..arity)
                .map(|s| rand_mat::<f64>(k, n, 60 + s as u64))
                .collect();
            let a_terms: Vec<(f64, _)> = a_srcs
                .iter()
                .enumerate()
                .map(|(t, s)| (0.25 * t as f64 - 0.6, s.as_ref()))
                .collect();
            let b_terms: Vec<(f64, _)> = b_srcs
                .iter()
                .enumerate()
                .map(|(t, s)| (1.0 - 0.5 * t as f64, s.as_ref()))
                .collect();
            let mut s_mat = Mat::<f64>::zeros(m, k);
            let mut t_mat = Mat::<f64>::zeros(k, n);
            combine(s_mat.as_mut(), false, &a_terms);
            combine(t_mat.as_mut(), false, &b_terms);
            let mut want = rand_mat::<f64>(m, n, 90);
            let mut got = want.clone();
            gemm_st(0.75, s_mat.as_ref(), t_mat.as_ref(), 1.0, want.as_mut());
            gemm_combined_st(0.75, &a_terms, &b_terms, 1.0, got.as_mut());
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        got.at(i, j).to_bits(),
                        want.at(i, j).to_bits(),
                        "arity {arity} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn operates_on_strided_subviews() {
        // Multiply quadrants of larger matrices: exercises rs ≠ cols.
        let big_a = rand_mat::<f64>(64, 64, 8);
        let big_b = rand_mat::<f64>(64, 64, 9);
        let a = big_a.as_ref().subview(16, 16, 32, 32);
        let b = big_b.as_ref().subview(0, 32, 32, 32);
        let got = matmul(a, b);
        let expect = matmul_naive(a, b);
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn writes_into_strided_subview() {
        let a = rand_mat::<f64>(8, 8, 10);
        let b = rand_mat::<f64>(8, 8, 11);
        let mut big_c = Mat::<f64>::zeros(16, 16);
        gemm_st(
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            big_c.as_mut().into_subview(4, 4, 8, 8),
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..8 {
            for j in 0..8 {
                assert!((big_c.at(4 + i, 4 + j) - expect.at(i, j)).abs() < 1e-12);
            }
        }
        // Surroundings untouched.
        assert_eq!(big_c.at(0, 0), 0.0);
        assert_eq!(big_c.at(15, 15), 0.0);
    }
}
