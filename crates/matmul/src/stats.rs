//! Instrumented execution: measure where a one-step APA multiplication
//! actually spends its time — multiplications (compute-bound gemm) vs
//! linear combinations (bandwidth-bound adds).
//!
//! This quantifies the paper's central performance claim (§3.2/§3.4): "the
//! overhead of additions is the biggest impediment to realizing the
//! [ideal] speedup", and lets the ablation harness print a measured
//! mult/add split next to the `apa-core::analysis` model's prediction.

use crate::plan::{Combo, ExecPlan};
use apa_gemm::{combine, gemm_st, Mat, MatRef, Scalar};
use std::time::Instant;

/// Timing and traffic breakdown of one instrumented execution.
#[derive(Clone, Debug, Default)]
pub struct ExecProfile {
    /// Seconds inside gemm (the r sub-multiplications).
    pub mult_seconds: f64,
    /// Seconds forming operand combinations and outputs.
    pub add_seconds: f64,
    /// Number of gemm leaf calls (= rank for one step).
    pub gemm_calls: usize,
    /// Elements read+written by the combination kernels.
    pub add_elems: usize,
    /// Flops performed by the multiplications (2·bm·bk·bn each).
    pub mult_flops: f64,
}

impl ExecProfile {
    /// Fraction of measured time spent in additions.
    pub fn add_fraction(&self) -> f64 {
        let total = self.mult_seconds + self.add_seconds;
        if total == 0.0 {
            0.0
        } else {
            self.add_seconds / total
        }
    }
}

/// Sequential, instrumented one-step execution. Dimensions must divide the
/// plan's base dims. Returns the product and the profile.
pub fn profile_one_step<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
) -> (Mat<T>, ExecProfile) {
    let d = plan.dims;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows());
    assert!(
        m % d.m == 0 && k % d.k == 0 && n % d.n == 0,
        "profile_one_step requires divisible dims"
    );
    let (bm, bk, bn) = (m / d.m, k / d.k, n / d.n);
    let a_blocks = a.grid(d.m, d.k);
    let b_blocks = b.grid(d.k, d.n);
    let mut profile = ExecProfile::default();
    let mut products: Vec<Mat<T>> = Vec::with_capacity(plan.rank);

    for t in 0..plan.rank {
        // Operand combinations (timed as additions).
        let t0 = Instant::now();
        let (s_mat, alpha_a) = materialize(&plan.a_combos[t], &a_blocks, bm, bk, &mut profile);
        let (t_mat, alpha_b) = materialize(&plan.b_combos[t], &b_blocks, bk, bn, &mut profile);
        profile.add_seconds += t0.elapsed().as_secs_f64();

        let s_view = s_mat
            .as_ref()
            .map(|m| m.as_ref())
            .unwrap_or_else(|| single_block(&plan.a_combos[t], &a_blocks));
        let t_view = t_mat
            .as_ref()
            .map(|m| m.as_ref())
            .unwrap_or_else(|| single_block(&plan.b_combos[t], &b_blocks));

        let mut out = Mat::zeros(bm, bn);
        let t1 = Instant::now();
        gemm_st(
            T::from_f64(alpha_a * alpha_b),
            s_view,
            t_view,
            T::ZERO,
            out.as_mut(),
        );
        profile.mult_seconds += t1.elapsed().as_secs_f64();
        profile.gemm_calls += 1;
        profile.mult_flops += 2.0 * bm as f64 * bk as f64 * bn as f64;
        products.push(out);
    }

    // Output combinations.
    let mut c = Mat::zeros(m, n);
    let t2 = Instant::now();
    {
        let c_blocks = c.as_mut().into_grid(d.m, d.n);
        for (block, mut dst) in c_blocks.into_iter().enumerate() {
            let terms: Vec<(T, MatRef<'_, T>)> = plan.c_outputs[block]
                .iter()
                .map(|&(t, coeff)| (T::from_f64(coeff), products[t].as_ref()))
                .collect();
            profile.add_elems += (terms.len() + 1) * bm * bn;
            combine(dst.rb(), false, &terms);
        }
    }
    profile.add_seconds += t2.elapsed().as_secs_f64();
    (c, profile)
}

fn materialize<T: Scalar>(
    combo: &Combo,
    blocks: &[MatRef<'_, T>],
    rows: usize,
    cols: usize,
    profile: &mut ExecProfile,
) -> (Option<Mat<T>>, f64) {
    match combo {
        Combo::Single { coeff, .. } => (None, *coeff),
        Combo::Multi(terms) => {
            let mut buf = Mat::zeros(rows, cols);
            let views: Vec<(T, MatRef<'_, T>)> = terms
                .iter()
                .map(|&(b, c)| (T::from_f64(c), blocks[b]))
                .collect();
            profile.add_elems += (views.len() + 1) * rows * cols;
            combine(buf.as_mut(), false, &views);
            (Some(buf), 1.0)
        }
    }
}

fn single_block<'a, T: Scalar>(combo: &Combo, blocks: &[MatRef<'a, T>]) -> MatRef<'a, T> {
    match combo {
        Combo::Single { block, .. } => blocks[*block],
        Combo::Multi(_) => unreachable!("multi combos are materialized"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;
    use apa_gemm::matmul_naive;

    fn probe(n: usize, seed: u64) -> Mat<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn profiled_result_is_correct() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = probe(64, 1);
        let b = probe(64, 2);
        let (c, profile) = profile_one_step(&plan, a.as_ref(), b.as_ref());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-12);
        assert_eq!(profile.gemm_calls, 7);
        assert!(profile.mult_seconds > 0.0);
        assert!(profile.add_seconds > 0.0);
        // 7 products of 32³ blocks.
        assert!((profile.mult_flops - 7.0 * 2.0 * 32.0f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn add_fraction_is_sane() {
        let plan = ExecPlan::compile(&catalog::fast444(), 0.0);
        let a = probe(256, 3);
        let b = probe(256, 4);
        let (_, profile) = profile_one_step(&plan, a.as_ref(), b.as_ref());
        let f = profile.add_fraction();
        assert!(f > 0.0 && f < 1.0, "add fraction {f}");
        assert_eq!(profile.gemm_calls, 49);
    }

    #[test]
    fn denser_rule_moves_more_add_elems() {
        // winograd's bilinear form is denser than strassen's.
        let s = ExecPlan::compile(&catalog::strassen(), 0.0);
        let w = ExecPlan::compile(&catalog::winograd(), 0.0);
        let a = probe(32, 5);
        let b = probe(32, 6);
        let (_, ps) = profile_one_step(&s, a.as_ref(), b.as_ref());
        let (_, pw) = profile_one_step(&w, a.as_ref(), b.as_ref());
        assert!(pw.add_elems > ps.add_elems);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_dims_rejected() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = probe(9, 7);
        let b = probe(9, 8);
        let _ = profile_one_step(&plan, a.as_ref(), b.as_ref());
    }
}
