//! The APA numerical-error model of the paper's §2.3 and Table 1.
//!
//! For working precision `2^−d` (d = 23 single, 52 double), approximation
//! order σ and roundoff parameter φ, with `s` recursive steps:
//!
//! * optimal λ ≈ `2^(−d / (σ + s·φ))` — balancing approximation error
//!   (∝ λ^σ) against roundoff amplification (∝ 2^−d · λ^−sφ);
//! * achievable error ≈ `2^(−d·σ / (σ + s·φ))` — a fractional root of the
//!   working precision.

use crate::bilinear::BilinearAlgorithm;
use crate::brent;
use serde::{Deserialize, Serialize};

/// Fractional-precision bits: single precision (f32).
pub const D_SINGLE: u32 = 23;
/// Fractional-precision bits: double precision (f64).
pub const D_DOUBLE: u32 = 52;

/// Smallest λ the model will return: 2^[`LAMBDA_MIN_EXP`]. Anything below
/// is useless in practice (the λ⁻¹ output scaling has long since destroyed
/// every mantissa bit) and risks subnormal/zero grids that break tuning.
pub const LAMBDA_MIN_EXP: i32 = -120;
/// Largest λ the model will return: 2^[`LAMBDA_MAX_EXP`]. λ ≥ 1 makes the
/// approximation term λ^σ no smaller than the operands themselves — a
/// degenerate request (e.g. `d = 0`) is clamped here instead of producing
/// λ = 1, which would freeze `lambda_grid` tuning at useless values.
pub const LAMBDA_MAX_EXP: i32 = -1;

/// Clamp λ into the documented valid range
/// [2^[`LAMBDA_MIN_EXP`], 2^[`LAMBDA_MAX_EXP`]].
fn clamp_lambda(lambda: f64) -> f64 {
    lambda.clamp(
        (2.0_f64).powi(LAMBDA_MIN_EXP),
        (2.0_f64).powi(LAMBDA_MAX_EXP),
    )
}

/// Theoretically optimal λ = 2^(−d/(σ + s·φ)) (paper §2.3, after
/// Bini–Lotti–Romani). Returns 0.0 for exact rules (λ is unused there).
///
/// Degenerate inputs are clamped to the documented valid range
/// [2^[`LAMBDA_MIN_EXP`], 2^[`LAMBDA_MAX_EXP`]]: `d = 0` (which would give
/// λ = 1) saturates at the top, while an enormous `d` relative to `σ + s·φ`
/// (which would underflow λ to a subnormal or zero) saturates at the
/// bottom. `s·φ` is computed in 64 bits so extreme step counts cannot
/// overflow.
pub fn optimal_lambda(sigma: u32, phi: u32, d: u32, steps: u32) -> f64 {
    if sigma == 0 {
        return 0.0;
    }
    let denom = sigma as u64 + steps as u64 * phi as u64;
    clamp_lambda((2.0_f64).powf(-(d as f64) / denom as f64))
}

/// Predicted achievable relative error 2^(−dσ/(σ + s·φ)).
/// Exact rules return the working precision itself.
pub fn error_bound(sigma: u32, phi: u32, d: u32, steps: u32) -> f64 {
    if sigma == 0 {
        return (2.0_f64).powi(-(d as i32));
    }
    let denom = (sigma as u64 + steps as u64 * phi as u64) as f64;
    (2.0_f64).powf(-(d as f64) * sigma as f64 / denom)
}

/// The five powers of two nearest the theoretical optimum — the paper's
/// Fig.-1 tuning grid ("we tested the 5 powers of 2 closest to the
/// theoretical optimal value and chose the best").
///
/// The grid center is clamped so every member stays inside the valid λ
/// range [2^[`LAMBDA_MIN_EXP`], 2^[`LAMBDA_MAX_EXP`]]: degenerate
/// (σ, φ, d, s) combinations still produce five finite, normal, strictly
/// increasing powers of two rather than a grid of zeros or ones.
pub fn lambda_grid(sigma: u32, phi: u32, d: u32, steps: u32) -> Vec<f64> {
    if sigma == 0 {
        return vec![0.0];
    }
    let center = (optimal_lambda(sigma, phi, d, steps).log2().round() as i32)
        .clamp(LAMBDA_MIN_EXP + 2, LAMBDA_MAX_EXP - 2);
    (center - 2..=center + 2)
        .map(|e| (2.0_f64).powi(e))
        .collect()
}

/// One row of the paper's Table 1, computed from an algorithm rather than
/// transcribed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    pub name: String,
    pub dims: (usize, usize, usize),
    pub rank: usize,
    /// Ideal single-step speedup, percent (`(mkn/r − 1)·100`).
    pub speedup_pct: f64,
    /// Approximation order; 0 encodes "exact rule" in the row (the paper
    /// prints σ = 1 with φ = 0 for classical; we distinguish exactness).
    pub sigma: u32,
    pub phi: u32,
    /// Predicted single-precision error (d = 23, s = 1).
    pub error: f64,
    /// Nonzero coefficient count — the addition-overhead proxy of §2.4.
    pub nnz: usize,
    pub exact: bool,
}

/// Compute a Table-1 row for an algorithm (runs Brent validation to obtain
/// σ; panics if the algorithm is invalid — catalog entries never are).
pub fn table1_row(alg: &BilinearAlgorithm) -> Table1Row {
    let report =
        brent::validate(alg).unwrap_or_else(|e| panic!("{} failed validation: {e}", alg.name));
    let sigma = report.sigma.unwrap_or(0);
    let phi = alg.phi();
    let d = alg.dims;
    let error = if report.exact {
        error_bound(0, 0, D_SINGLE, 1)
    } else {
        error_bound(sigma, phi, D_SINGLE, 1)
    };
    Table1Row {
        name: alg.name.clone(),
        dims: (d.m, d.k, d.n),
        rank: alg.rank(),
        speedup_pct: alg.ideal_speedup() * 100.0,
        sigma,
        phi,
        error,
        nnz: alg.nnz(),
        exact: report.exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn bini_matches_paper_numbers() {
        // Paper Table 1 row ⟨3,2,2⟩: rank 10, speedup 20%, σ = 1, φ = 1,
        // error 3.5e-4 at d = 23, s = 1.
        let row = table1_row(&catalog::bini322());
        assert_eq!(row.rank, 10);
        assert!((row.speedup_pct - 20.0).abs() < 1e-9);
        assert_eq!(row.sigma, 1);
        assert_eq!(row.phi, 1);
        assert!((row.error - (2.0_f64).powf(-11.5)).abs() < 1e-9);
        assert!(
            row.error > 3.4e-4 && row.error < 3.6e-4,
            "err={}",
            row.error
        );
    }

    #[test]
    fn classical_error_is_machine_precision() {
        // Paper's first row: ⟨2,2,2⟩ classical, error 1.2e-7 ≈ 2^-23.
        let e = error_bound(0, 0, D_SINGLE, 1);
        assert!((e - 2.0_f64.powi(-23)).abs() < 1e-12);
        assert!(e > 1.1e-7 && e < 1.3e-7);
    }

    #[test]
    fn paper_error_column_formula() {
        // Check the paper's printed error values for the (σ, φ) pairs it
        // lists: (1,2) → 4.9e-3, (1,3) → 1.9e-2, (1,6) → 1.0e-1,
        // (1,5) → 7.0e-2.
        let cases = [(2u32, 4.9e-3), (3, 1.9e-2), (6, 1.0e-1), (5, 7.0e-2)];
        for (phi, expect) in cases {
            let e = error_bound(1, phi, D_SINGLE, 1);
            assert!(
                (e - expect).abs() / expect < 0.05,
                "φ={phi}: computed {e}, paper {expect}"
            );
        }
    }

    #[test]
    fn optimal_lambda_shrinks_with_steps() {
        let l1 = optimal_lambda(1, 1, D_SINGLE, 1);
        let l2 = optimal_lambda(1, 1, D_SINGLE, 2);
        assert!(
            l2 > l1,
            "more steps → larger λ (roundoff grows): {l1} vs {l2}"
        );
        assert!((l1 - 2.0_f64.powf(-11.5)).abs() < 1e-9);
    }

    #[test]
    fn lambda_grid_is_five_powers_of_two() {
        let g = lambda_grid(1, 1, D_SINGLE, 1);
        assert_eq!(g.len(), 5);
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
        // center should be 2^-12 or 2^-11 (optimum 2^-11.5)
        assert!(g.contains(&2.0_f64.powi(-12)) && g.contains(&2.0_f64.powi(-11)));
    }

    #[test]
    fn zero_precision_bits_clamps_to_lambda_max() {
        // d = 0 would give λ = 2^0 = 1 — clamp at the documented top of the
        // valid range instead.
        let l = optimal_lambda(1, 1, 0, 1);
        assert_eq!(l, (2.0_f64).powi(LAMBDA_MAX_EXP));
        let g = lambda_grid(1, 1, 0, 1);
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(|&l| l.is_finite() && l > 0.0 && l < 1.0));
        assert!(g.iter().all(|&l| l >= (2.0_f64).powi(LAMBDA_MIN_EXP)));
    }

    #[test]
    fn huge_precision_clamps_to_lambda_min_not_subnormal() {
        // A very large d relative to σ + s·φ would underflow λ into the
        // subnormal range (or to zero); the clamp keeps it a normal f64.
        let l = optimal_lambda(1, 1, 100_000, 1);
        assert_eq!(l, (2.0_f64).powi(LAMBDA_MIN_EXP));
        assert!(l.is_normal());
        let g = lambda_grid(1, 1, 100_000, 1);
        assert_eq!(g.len(), 5);
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12, "grid not powers of 2");
        }
        assert!(g.iter().all(|&l| l.is_normal() && l > 0.0));
    }

    #[test]
    fn extreme_step_counts_do_not_overflow() {
        // steps·φ used to be a u32 multiply — u32::MAX steps must neither
        // panic nor wrap. Huge s·φ pushes the exponent toward 0, i.e. λ
        // toward 1, so the clamp lands at LAMBDA_MAX_EXP.
        let l = optimal_lambda(1, 6, D_SINGLE, u32::MAX);
        assert_eq!(l, (2.0_f64).powi(LAMBDA_MAX_EXP));
        let e = error_bound(1, 6, D_SINGLE, u32::MAX);
        assert!(e.is_finite() && e > 0.0);
        let g = lambda_grid(1, 6, D_SINGLE, u32::MAX);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn clamped_grid_stays_inside_valid_range() {
        for (sigma, phi, d, steps) in [
            (1u32, 0u32, 0u32, 1u32),
            (1, 1, 52, 1),
            (2, 6, 100_000, 3),
            (1, 1, 23, 1000),
        ] {
            for &l in &lambda_grid(sigma, phi, d, steps) {
                assert!(
                    l >= (2.0_f64).powi(LAMBDA_MIN_EXP) && l <= (2.0_f64).powi(LAMBDA_MAX_EXP),
                    "λ = {l} outside valid range for ({sigma},{phi},{d},{steps})"
                );
            }
        }
    }

    #[test]
    fn exact_rules_report_exact() {
        let row = table1_row(&catalog::strassen());
        assert!(row.exact);
        assert_eq!(row.sigma, 0);
        assert_eq!(row.phi, 0);
    }
}
