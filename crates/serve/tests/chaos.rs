//! The overload chaos drill (`--features fault-inject` only): drive the
//! service at well over 2× its capacity with hostile everything — lane
//! stalls, lane panics, seeded NaNs, corrupted products, a deadline
//! storm, a rate-limited tenant — with every robustness subsystem armed
//! at once (admission control, per-lane circuit breakers, brownout).
//!
//! The contract under test is blunt: **every client interaction ends in a
//! typed answer**. Every accepted ticket resolves (no hangs, no
//! `Disconnected`), every rejection is a typed backpressure error, and
//! the stats ledger balances exactly against what the clients saw.
//!
//! The fault registry and gemm lane switches are process-global, so this
//! drill serializes on [`LOCK`] like the other fault drills.

#![cfg(feature = "fault-inject")]

use apa_core::catalog;
use apa_matmul::fault::{self, Fault, FaultKind};
use apa_matmul::{ApaMatmul, GuardedApaMatmul, PeelMode, Strategy};
use apa_nn::{Backend, GuardedBackend, Mlp};
use apa_serve::{
    AdmissionConfig, BreakerConfig, BrownoutConfig, InferenceService, RateLimit, Replica,
    ServeConfig, ServeError, SubmitOptions,
};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const IN_WIDTH: usize = 48;
const LANES: usize = 3;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 250;

/// One guarded replica: bini322, hybrid over 2 gemm threads (so lane
/// panic/stall switches find a worker to strike), a 20ms rung watchdog.
fn replica(seed: u64) -> (Replica, Arc<GuardedBackend>) {
    let guard = Arc::new(GuardedBackend::from_guard(
        GuardedApaMatmul::from_matmul(
            ApaMatmul::new(catalog::bini322())
                .steps(1)
                .strategy(Strategy::Hybrid)
                .threads(2)
                .peel_mode(PeelMode::Dynamic),
        )
        .watchdog(Duration::from_millis(20)),
    ));
    let backend: Backend = guard.clone();
    let mlp = Mlp::new(&[IN_WIDTH, 48, 10], vec![backend.clone(), backend], seed);
    (Replica::with_guards(mlp, vec![guard.clone()]), guard)
}

fn input(seed: usize) -> Vec<f32> {
    (0..IN_WIDTH)
        .map(|i| ((i + seed) as f32 * 0.17).sin())
        .collect()
}

#[test]
fn overload_chaos_every_client_gets_a_typed_answer() {
    let _g = lock();
    let replicas: Vec<Replica> = (0..LANES).map(|l| replica(21 + l as u64).0).collect();
    let service = InferenceService::start(
        replicas,
        ServeConfig {
            queue_capacity: 64,
            max_linger: Duration::from_millis(1),
            admission: Some(AdmissionConfig {
                // Tenant 1 is throttled hard — its clients must see typed
                // RateLimited answers mid-storm.
                tenant_limits: vec![(
                    1,
                    RateLimit {
                        per_sec: 50.0,
                        burst: 10.0,
                    },
                )],
                ..AdmissionConfig::default()
            }),
            breaker: Some(BreakerConfig {
                trip_after: 1,
                open_base: Duration::from_millis(10),
                open_cap: Duration::from_millis(100),
                // A 30ms injected stall overshoots this: the batch still
                // answers, but the lane's breaker counts it as sick.
                stall_timeout: Some(Duration::from_millis(25)),
                ..BreakerConfig::default()
            }),
            brownout: Some(BrownoutConfig {
                enter_fill: 0.20,
                exit_fill: 0.05,
                hold: Duration::from_millis(2),
                sample_every: Duration::from_millis(1),
                ..BrownoutConfig::default()
            }),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    // Prove warm-up is over, then lay the minefield. The registry is
    // keyed by each guard's OWN call counter (NOT the merged
    // `stats().health.calls`, which sums all three lanes), and each
    // lane's guard only advances by its share of the batches — so the
    // schedule is dense from index 0: indices a guard already passed
    // during warm-up are inert, the rest strike as each lane walks into
    // them.
    handle.infer(input(0)).expect("clean call before the storm");
    let mut plan = Vec::new();
    for k in 0..48u64 {
        let base = 8 * k;
        plan.push(Fault {
            at_call: base,
            kind: FaultKind::StallLane { millis: 30 },
        });
        plan.push(Fault {
            at_call: base + 2,
            kind: FaultKind::PanicInLane,
        });
        plan.push(Fault {
            at_call: base + 4,
            kind: FaultKind::SeedNan,
        });
        plan.push(Fault {
            at_call: base + 6,
            kind: FaultKind::CorruptOutput { scale: 1e4 },
        });
    }
    fault::install(&plan);

    // The storm: every client floods its submissions without pacing —
    // far over capacity — with a mixed deadline profile. Client 0 rides
    // the throttled tenant.
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let handle = handle.clone();
        clients.push(std::thread::spawn(move || {
            let mut tickets = Vec::new();
            let mut rejected_full = 0u64;
            let mut rejected_rate = 0u64;
            let mut rejected_over = 0u64;
            for i in 0..PER_CLIENT {
                // Brief pacing every few dozen submissions: on a single
                // shared CPU an unpaced spin-submit loop finishes the
                // whole storm in a few ms and starves the lanes and the
                // brownout monitor of any chance to run *while* the
                // queue is deep — the sleep keeps the pressured window
                // open long enough for the 1ms sampler to see it.
                if i % 25 == 24 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                let opts = SubmitOptions {
                    tenant: (c == 0).then_some(1),
                    deadline: match i % 3 {
                        0 => None,
                        1 => Some(Duration::from_millis(40)),
                        _ => Some(Duration::from_millis(3)),
                    },
                };
                match handle.submit_with(input(c * PER_CLIENT + i), opts) {
                    Ok(t) => tickets.push(t),
                    Err(ServeError::QueueFull { .. }) => rejected_full += 1,
                    Err(ServeError::RateLimited { retry_after })
                    | Err(ServeError::Overloaded { retry_after }) => {
                        assert!(retry_after > Duration::ZERO, "empty backoff hint");
                        match opts.tenant {
                            Some(_) => rejected_rate += 1,
                            None => rejected_over += 1,
                        }
                    }
                    Err(other) => panic!("untyped/unexpected rejection: {other}"),
                }
            }
            // Every accepted ticket must resolve to a typed answer —
            // a None here is a hang, the one unforgivable outcome.
            let mut ok = 0u64;
            let mut expired = 0u64;
            let mut failed = 0u64;
            for t in tickets {
                match t
                    .wait_timeout(Duration::from_secs(15))
                    .expect("ticket hung past 15s — a client was never answered")
                {
                    Ok(r) => {
                        assert_eq!(r.output.len(), 10);
                        assert!(
                            r.output.iter().all(|v| v.is_finite()),
                            "non-finite output escaped the sentinel: {:?}",
                            r.output
                        );
                        ok += 1;
                    }
                    Err(ServeError::DeadlineExceeded { .. }) => expired += 1,
                    Err(ServeError::Inference { .. }) => failed += 1,
                    Err(other) => panic!("unexpected terminal error: {other}"),
                }
            }
            (
                ok,
                expired,
                failed,
                rejected_full,
                rejected_rate,
                rejected_over,
            )
        }));
    }

    let mut ok = 1u64; // the pre-storm warm call
    let (mut expired, mut failed) = (0u64, 0u64);
    let (mut rej_full, mut rej_rate, mut rej_over) = (0u64, 0u64, 0u64);
    for c in clients {
        let (o, e, f, rf, rr, ro) = c.join().expect("client thread must not die");
        ok += o;
        expired += e;
        failed += f;
        rej_full += rf;
        rej_rate += rr;
        rej_over += ro;
    }
    fault::clear();
    let stats = service.shutdown();

    // A tenant-1 rejection can be RateLimited *or* Overloaded (the shed
    // gate also applies); the split the client saw groups by tenant, so
    // compare the combined pools, then the ledger.
    assert_eq!(ok, stats.completed, "client Oks vs stats.completed");
    assert_eq!(expired, stats.expired, "client expiries vs stats.expired");
    assert_eq!(failed, stats.failed, "client failures vs stats.failed");
    assert_eq!(rej_full, stats.rejected_queue_full);
    assert_eq!(
        rej_rate + rej_over,
        stats.rejected_rate_limited + stats.rejected_overloaded
    );
    // The ledger: everything accepted was terminally answered.
    assert_eq!(
        stats.submitted,
        stats.completed + stats.expired + stats.failed,
        "accepted requests leaked: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);
    // The storm must have actually stormed.
    assert!(fault::injected_count() > 0, "no fault ever fired");
    assert!(
        ok + expired + failed == stats.submitted && stats.submitted > 0,
        "nothing was accepted — the drill proved nothing"
    );
    assert!(
        stats.expired + stats.rejected_overloaded + stats.rejected_queue_full > 0,
        "the service was never actually overloaded"
    );
    // Robustness machinery engaged: injected 30ms stalls overshoot the
    // 25ms stall watchdog, so at least one lane breaker must have
    // tripped; sustained overload past the 0.20 enter watermark must
    // have browned the replicas out at least once.
    assert!(stats.breaker_trips >= 1, "no breaker tripped: {stats:?}");
    assert!(
        stats.brownout_steps_down >= 1,
        "brownout never engaged: {stats:?}"
    );
}

/// The silent-corruption storm: flood the service past capacity while a
/// dense schedule of single-bit flips strikes the gemm leaves (packed A,
/// packed B and finished C tiles in rotation). The ABFT checksum tier
/// must absorb every strike invisibly: each affected batch is either
/// repaired in place (finite, clean output) or surfaces as a typed
/// inference error — never silent garbage — the stats ledger balances,
/// and the repairs are visible in the merged [`apa_serve::ServeStats`]
/// health view.
#[test]
fn bit_flip_storm_is_repaired_or_typed_errored_and_ledger_balances() {
    let _g = lock();
    let replicas: Vec<Replica> = (0..LANES).map(|l| replica(55 + l as u64).0).collect();
    let service = InferenceService::start(
        replicas,
        ServeConfig {
            queue_capacity: 64,
            max_linger: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    handle.infer(input(0)).expect("clean call before the storm");

    // Dense flip schedule keyed by each guard's own call counter, hitting
    // all three targets in rotation with an exponent bit (always above
    // any plausible residual tolerance, so detection is guaranteed).
    let targets = [
        fault::FlipTarget::PackA,
        fault::FlipTarget::PackB,
        fault::FlipTarget::Output,
    ];
    let plan: Vec<Fault> = (0..90u64)
        .map(|k| Fault {
            at_call: 2 * k,
            kind: FaultKind::BitFlip {
                target: targets[(k % 3) as usize],
                index: 3 + (k % 5) as usize,
                bit: 30,
            },
        })
        .collect();
    let fired_before = apa_gemm::abft::sdc::injected();
    fault::install(&plan);

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let handle = handle.clone();
        clients.push(std::thread::spawn(move || {
            let mut tickets = Vec::new();
            let mut rejected = 0u64;
            for i in 0..150usize {
                if i % 25 == 24 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                match handle.submit(input(c * 1000 + i)) {
                    Ok(t) => tickets.push(t),
                    Err(ServeError::QueueFull { .. }) => rejected += 1,
                    Err(other) => panic!("untyped/unexpected rejection: {other}"),
                }
            }
            let (mut ok, mut failed) = (0u64, 0u64);
            for t in tickets {
                match t
                    .wait_timeout(Duration::from_secs(15))
                    .expect("ticket hung past 15s")
                {
                    Ok(r) => {
                        assert!(
                            r.output.iter().all(|v| v.is_finite()),
                            "corrupt output reached a client: {:?}",
                            r.output
                        );
                        ok += 1;
                    }
                    Err(ServeError::Inference { .. }) => failed += 1,
                    Err(other) => panic!("unexpected terminal error: {other}"),
                }
            }
            (ok, failed, rejected)
        }));
    }

    let mut ok = 1u64; // the pre-storm warm call
    let (mut failed, mut rejected) = (0u64, 0u64);
    for c in clients {
        let (o, f, r) = c.join().expect("client thread must not die");
        ok += o;
        failed += f;
        rejected += r;
    }
    fault::clear();
    let stats = service.shutdown();

    assert_eq!(ok, stats.completed, "client Oks vs stats.completed");
    assert_eq!(failed, stats.failed, "client failures vs stats.failed");
    assert_eq!(rejected, stats.rejected_queue_full);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.expired + stats.failed,
        "accepted requests leaked: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);

    // The flips actually landed in leaves, and every detected region was
    // repaired — unrepaired corruption would either escalate or surface
    // as typed failures, never as silent client-visible garbage.
    assert!(
        apa_gemm::abft::sdc::injected() > fired_before,
        "no bit flip ever fired"
    );
    let h = &stats.health;
    assert!(h.abft_checks > 0, "checksum tier never ran: {h:?}");
    assert!(h.abft_detected >= 1, "no flip was detected: {h:?}");
    assert!(
        h.abft_repaired >= 1,
        "abft_repaired must be visible in merged ServeStats: {h:?}"
    );
    assert_eq!(
        h.abft_repaired, h.abft_detected,
        "every detected region must have been repaired: {h:?}"
    );
}

/// Drain-under-chaos: closing the service while faults are still armed
/// and the queue holds a backlog must answer every ticket and return —
/// an open breaker is not allowed to hold the drain hostage.
#[test]
fn shutdown_mid_storm_answers_every_ticket_and_returns() {
    let _g = lock();
    let replicas: Vec<Replica> = (0..2).map(|l| replica(77 + l as u64).0).collect();
    let service = InferenceService::start(
        replicas,
        ServeConfig {
            queue_capacity: 256,
            // A huge linger: only the drain flush can serve partials, so
            // the backlog is guaranteed to still be queued at shutdown.
            max_linger: Duration::from_secs(30),
            target_batch: 64,
            breaker: Some(BreakerConfig {
                trip_after: 1,
                open_base: Duration::from_secs(5),
                stall_timeout: Some(Duration::ZERO),
                ..BreakerConfig::default()
            }),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();
    // No pre-storm infer: with a 30s linger a lone request would wait
    // out the full linger. Faults are scheduled densely from call 0 —
    // any that strike warm-up multiplies are absorbed there too.
    let plan: Vec<Fault> = (0..40)
        .map(|k| Fault {
            at_call: 2 * k,
            kind: FaultKind::SeedNan,
        })
        .collect();
    fault::install(&plan);

    let tickets: Vec<_> = (0..40)
        .map(|i| handle.submit(input(i)).expect("queue has room"))
        .collect();
    let stats = service.shutdown();
    fault::clear();
    for t in tickets {
        let answer = t
            .wait_timeout(Duration::from_secs(10))
            .expect("drain left a ticket unanswered");
        if let Ok(r) = answer {
            assert!(r.output.iter().all(|v| v.is_finite()));
        }
    }
    assert_eq!(
        stats.submitted,
        stats.completed + stats.expired + stats.failed
    );
    assert_eq!(stats.queue_depth, 0);
}
