//! Offline shim for `serde_json`: JSON text over the `serde` shim's
//! [`Value`] tree. Provides `to_string`/`to_string_pretty`/`from_str`/
//! `to_value`/`from_value` and a literal-argument `json!` macro.

use std::fmt::Write as _;

pub use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error for both serialization and parsing (serde_json exposes a single
/// `Error` type the same way).
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize_value()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::deserialize_value(value).map_err(Error::from)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), &mut out, 0).map_err(|e| Error(e.to_string()))?;
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Build a [`Value`] from a JSON-ish literal. Supports `null`, nested
/// `[..]` / `{"key": value}` literals, and any expression implementing
/// `Serialize` (numbers, strings, bools, ...).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Pretty printer (2-space indent, serde_json style)
// ---------------------------------------------------------------------

fn write_pretty(v: &Value, out: &mut String, indent: usize) -> std::fmt::Result {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + STEP);
                write_pretty(item, out, indent + STEP)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + STEP);
                serde::value::write_escaped(k, out)?;
                out.push_str(": ");
                write_pretty(val, out, indent + STEP)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
            Ok(())
        }
        Value::Array(_) => {
            out.push_str("[]");
            Ok(())
        }
        Value::Object(_) => {
            out.push_str("{}");
            Ok(())
        }
        scalar => write!(out, "{scalar}"),
    }
}

fn pad(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

// ---------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reassembled; the
                            // workspace never emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"name":"strassen","dims":{"m":2,"k":2,"n":2},"coeffs":[1,-0.5,2.5e-3],"exact":true,"opt":null}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["name"].as_str(), Some("strassen"));
        assert_eq!(v["dims"]["m"].as_u64(), Some(2));
        assert_eq!(v["coeffs"][1].as_f64(), Some(-0.5));
        assert_eq!(v["exact"].as_bool(), Some(true));
        assert!(v["opt"].is_null());
        // Re-parse the compact printout: identical tree.
        let v2: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_print_is_parseable_and_indented() {
        let v = json!({"a": [1, 2], "b": {"c": "x"}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3), Value::Num(3.0));
        assert_eq!(json!("s"), Value::Str("s".to_string()));
        assert_eq!(
            json!([1, "two"]),
            Value::Array(vec![Value::Num(1.0), Value::Str("two".to_string())])
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        let printed = to_string(&Value::Str("a\"b\\c\n".to_string())).unwrap();
        assert_eq!(printed, r#""a\"b\\c\n""#);
    }
}
