//! Figure 6 — ParaDnn-style MLP training time relative to classical.
//!
//! Paper protocol (§4.3): 6-layer MLPs (4 hidden layers of width H), batch
//! size matched to H so hidden-layer products are square ⟨H,H,H⟩; APA is
//! used in the hidden layers in forward and backward propagation. The
//! figure reports training time relative to the classical baseline at
//! 1 / 6 / 12 threads.
//!
//! Timing here measures a fixed number of training batches per
//! configuration (the network never needs to converge — "the purpose of
//! these experiments was to measure the speed up … not … accuracy").
//!
//! Usage: `cargo run --release -p apa-bench --bin fig6
//!           [--threads p] [--batches k] [--full] [--all]`
//!   default widths: 512 1024 2048; --full adds 4096 8192.

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_gemm::Mat;
use apa_nn::{apa, classical, performance_network, Backend, Mlp};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn synthetic_batch(
    batch: usize,
    features: usize,
    classes: usize,
    seed: u64,
) -> (Mat<f32>, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x = Mat::from_fn(batch, features, |_, _| rng.gen_range(0.0f32..1.0));
    let labels = (0..batch)
        .map(|_| rng.gen_range(0..classes) as u8)
        .collect();
    (x, labels)
}

fn time_training(net: &mut Mlp, h: usize, batches: usize) -> f64 {
    let (x, labels) = synthetic_batch(h, 784, 10, 42);
    // Warmup batch, then timed batches.
    net.train_batch(&x, &labels, 0.01);
    let t0 = std::time::Instant::now();
    for _ in 0..batches {
        net.train_batch(&x, &labels, 0.01);
    }
    t0.elapsed().as_secs_f64() / batches as f64
}

fn main() {
    let args = Args::parse();
    let threads = args.get("threads", 1usize);
    let batches = args.get("batches", 3usize);
    let mut widths = vec![512usize, 1024, 2048];
    if args.flag("full") {
        widths.extend([4096, 8192]);
    }

    banner(
        &format!("Figure 6: MLP training time relative to classical, {threads} thread(s)"),
        &[
            "6-layer ParaDnn MLP (4 hidden layers, width H, batch = H)",
            &format!("widths: {widths:?}; {batches} timed batches per point"),
            "values < 1.0 mean the APA network trains faster than classical",
        ],
    );

    let names: Vec<String> = if args.flag("all") {
        catalog::paper_lineup()
            .into_iter()
            .map(|a| a.name)
            .collect()
    } else {
        ["bini322", "apa422", "fast442", "fast444", "apa333"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };

    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(widths.iter().map(|h| format!("H={h}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    // Classical baseline (absolute seconds per batch, shown for context).
    let mut base_times = Vec::new();
    let mut base_row = vec!["classical(s/batch)".to_string()];
    for &h in &widths {
        let mut net = performance_network(h, classical(threads), threads, 0xBEEF);
        let t = time_training(&mut net, h, batches);
        base_times.push(t);
        base_row.push(format!("{t:.3}s"));
        eprintln!("  classical H={h}: {t:.3}s/batch");
    }
    let mut rows = vec![base_row];

    for name in &names {
        let alg = catalog::by_name(name).unwrap_or_else(|| panic!("unknown algorithm {name}"));
        let mut row = vec![name.clone()];
        for (i, &h) in widths.iter().enumerate() {
            let hidden: Backend = apa(alg.clone(), threads);
            let mut net = performance_network(h, hidden, threads, 0xBEEF);
            let t = time_training(&mut net, h, batches);
            row.push(format!("{:.3}", t / base_times[i]));
        }
        eprintln!("  measured {name}");
        rows.push(row);
    }

    print_table(&header_refs, &rows);
    println!();
    print_csv(&header_refs, &rows);
    println!();
    println!("expected shape (paper): sequential crossover below 1.0 from H≈1024, best");
    println!("algorithm <4,4,4>-class reaching ~0.75 at H=8192 (ours bounded by rank 49");
    println!("vs 46); at 6 threads best ~0.87; at 12 threads most algorithms >1.0 except");
    println!("remainder-free ones (paper: <4,4,2> at ~0.93).");
}
