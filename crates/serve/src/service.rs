//! The inference service: fixed worker lanes over a shared submission
//! queue, each lane owning a pre-warmed model replica.
//!
//! ```text
//!  submit() ──► SubmissionQueue (bounded, typed backpressure)
//!                     │   micro-batcher policy under the queue lock
//!          ┌──────────┼──────────┐
//!       lane 0     lane 1  …  lane L-1     (panic-isolated WorkerPool)
//!       replica 0  replica 1  replica L-1  (own scratch + warm shapes)
//!          └──────────┴──────────┘
//!                per-request response channels (Ticket::wait)
//! ```
//!
//! Lanes run as long-lived jobs inside an [`apa_gemm::WorkerPool`] — the
//! same panic-isolated pool the gemm engine uses — so a panicking
//! iteration can never take the process down. Each batch additionally
//! runs under its own `catch_unwind` with one retry: a replica whose
//! guarded ladder demoted after the panic usually answers the retry, and
//! only a second failure surfaces as [`ServeError::Inference`] to that
//! batch's requests.

use crate::admission::{AdmissionConfig, AdmissionController, AdmitDecision};
use crate::batcher::{expired_at, BatchPolicy};
use crate::breaker::{BreakerConfig, CircuitBreaker, Gate};
use crate::brownout::{BrownoutConfig, BrownoutController, Pressure};
use crate::error::ServeError;
use crate::queue::{Pending, SubmissionQueue};
use crate::stats::{LatencyHistogram, ServeStats, StatsCollector};
use apa_gemm::{Mat, WorkerPool};
use apa_matmul::HealthStats;
use apa_nn::{GuardedBackend, InferenceScratch, Mlp};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs, fixed at [`InferenceService::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bound of the submission queue — the service's entire buffering.
    pub queue_capacity: usize,
    /// Preferred batch size. `0` means "the model's input width", the
    /// natural square-ish operand shape for the layer multiplications.
    pub target_batch: usize,
    /// Longest a request waits for co-riders before a partial batch is
    /// flushed.
    pub max_linger: Duration,
    /// Drop requests that wait in the queue longer than this
    /// ([`ServeError::DeadlineExceeded`]). `None` = wait indefinitely.
    pub request_deadline: Option<Duration>,
    /// Extra canonical batch sizes to pre-warm besides the target batch.
    /// Ragged batches are zero-padded up to the nearest warmed size, so a
    /// richer set means less padding for small batches.
    pub warm_batches: Vec<usize>,
    /// Inference attempts per batch before failing its requests (≥ 1).
    pub batch_attempts: u32,
    /// Admission control in front of the queue (token buckets + overload
    /// shedding). `None` = every width-valid request reaches the queue.
    pub admission: Option<AdmissionConfig>,
    /// Per-lane circuit breakers. `None` = lanes never route around a
    /// sick replica (pre-existing behavior).
    pub breaker: Option<BreakerConfig>,
    /// Load-driven quality brownout over the replicas' guarded backends.
    /// `None` = quality is owned solely by the health ladder. Only
    /// effective for replicas built with [`Replica::with_guards`].
    pub brownout: Option<BrownoutConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            target_batch: 0,
            max_linger: Duration::from_millis(2),
            request_deadline: None,
            warm_batches: Vec::new(),
            batch_attempts: 2,
            admission: None,
            breaker: None,
            brownout: None,
        }
    }
}

/// Per-request submission options (see [`ServiceHandle::submit_with`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Tenant charged by the admission controller's token buckets.
    /// `None` = the shared anonymous tenant.
    pub tenant: Option<u64>,
    /// Per-request deadline (from submission). Combined with
    /// [`ServeConfig::request_deadline`] by taking the tighter of the
    /// two.
    pub deadline: Option<Duration>,
}

/// One lane's model: an [`Mlp`] plus handles to its guarded backends so
/// the service can fold every replica's [`HealthStats`] into the merged
/// [`ServeStats::health`] view.
pub struct Replica {
    mlp: Mlp,
    guards: Vec<Arc<GuardedBackend>>,
}

impl Replica {
    /// A replica without guarded backends (health merge sees nothing).
    pub fn new(mlp: Mlp) -> Self {
        Self {
            mlp,
            guards: Vec::new(),
        }
    }

    /// A replica whose layers use the given guarded backends (keep the
    /// `Arc`s from [`apa_nn::guarded`] and pass clones here).
    pub fn with_guards(mlp: Mlp, guards: Vec<Arc<GuardedBackend>>) -> Self {
        Self { mlp, guards }
    }

    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

/// A completed inference.
#[derive(Clone, Debug)]
pub struct Response {
    /// The model's output row for this request.
    pub output: Vec<f32>,
    /// Lane that served it.
    pub lane: usize,
    /// Real requests in the batch it rode.
    pub batch_rows: usize,
    /// Rows after padding to the nearest warmed shape.
    pub padded_rows: usize,
    /// Submit → response latency.
    pub latency: Duration,
}

/// The caller's side of one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request is answered (response, deadline drop, or
    /// inference failure).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// [`Self::wait`] with a timeout; `None` if no answer arrived in time
    /// (the request stays in flight).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, ServeError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

struct Shared {
    queue: SubmissionQueue,
    policy: BatchPolicy,
    stats: StatsCollector,
    in_width: usize,
    deadline: Option<Duration>,
    guards: Vec<Arc<GuardedBackend>>,
    admission: Option<AdmissionController>,
    /// One breaker per lane (empty when breakers are disabled).
    breakers: Vec<CircuitBreaker>,
    /// Lanes currently parked by an open breaker — the last-lane guard:
    /// a breaker may only trip while at least one other lane still
    /// serves.
    breaker_open: AtomicUsize,
    lanes: usize,
    /// Brownout-monitor shutdown flag + wakeup.
    monitor_stop: Mutex<bool>,
    monitor_cvar: Condvar,
}

/// Cloneable submit handle (safe to share across client threads).
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Enqueue one input row. Returns immediately with a [`Ticket`] or a
    /// typed rejection ([`ServeError::QueueFull`] under backpressure,
    /// [`ServeError::RateLimited`] / [`ServeError::Overloaded`] from the
    /// admission controller when one is configured).
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ServeError> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`Self::submit`] with a tenant identity and/or per-request
    /// deadline.
    pub fn submit_with(&self, input: Vec<f32>, opts: SubmitOptions) -> Result<Ticket, ServeError> {
        if input.len() != self.shared.in_width {
            return Err(ServeError::BadInput {
                expected: self.shared.in_width,
                got: input.len(),
            });
        }
        let now = Instant::now();
        self.admit(opts.tenant, 1, now)?;
        let (tx, rx) = channel();
        let pending = Pending {
            input,
            submitted: now,
            deadline: self.effective_deadline(opts.deadline, now),
            tx,
        };
        match self.shared.queue.try_push(pending) {
            Ok(depth) => {
                self.shared.stats.note_submitted(depth);
                Ok(Ticket { rx })
            }
            Err(e) => {
                if matches!(e, ServeError::QueueFull { .. }) {
                    self.shared.stats.note_rejected_full();
                }
                Err(e)
            }
        }
    }

    /// Submit several rows as one admission unit: the admission
    /// controller sees the *batch-weighted* cost (heavy batches are the
    /// first shed under overload and charge their full weight against the
    /// tenant's bucket) — an all-or-nothing gate. Past admission each row
    /// is queued individually; the inner results carry per-row queue
    /// rejections.
    pub fn submit_batch(
        &self,
        inputs: Vec<Vec<f32>>,
        opts: SubmitOptions,
    ) -> Result<Vec<Result<Ticket, ServeError>>, ServeError> {
        for input in &inputs {
            if input.len() != self.shared.in_width {
                return Err(ServeError::BadInput {
                    expected: self.shared.in_width,
                    got: input.len(),
                });
            }
        }
        let now = Instant::now();
        let cost = inputs.len().min(u32::MAX as usize) as u32;
        if cost == 0 {
            return Ok(Vec::new());
        }
        self.admit(opts.tenant, cost, now)?;
        let deadline = self.effective_deadline(opts.deadline, now);
        Ok(inputs
            .into_iter()
            .map(|input| {
                let (tx, rx) = channel();
                let pending = Pending {
                    input,
                    submitted: now,
                    deadline,
                    tx,
                };
                match self.shared.queue.try_push(pending) {
                    Ok(depth) => {
                        self.shared.stats.note_submitted(depth);
                        Ok(Ticket { rx })
                    }
                    Err(e) => {
                        if matches!(e, ServeError::QueueFull { .. }) {
                            self.shared.stats.note_rejected_full();
                        }
                        Err(e)
                    }
                }
            })
            .collect())
    }

    fn admit(&self, tenant: Option<u64>, cost: u32, now: Instant) -> Result<(), ServeError> {
        let Some(ctl) = &self.shared.admission else {
            return Ok(());
        };
        let fill = self.shared.queue.depth() as f64 / self.shared.queue.capacity() as f64;
        match ctl.admit(tenant, cost, fill, now) {
            AdmitDecision::Admit => Ok(()),
            AdmitDecision::RateLimited { retry_after } => {
                self.shared.stats.note_rejected_rate_limited();
                Err(ServeError::RateLimited { retry_after })
            }
            AdmitDecision::Overloaded { retry_after } => {
                self.shared.stats.note_rejected_overloaded();
                Err(ServeError::Overloaded { retry_after })
            }
        }
    }

    fn effective_deadline(&self, requested: Option<Duration>, now: Instant) -> Option<Instant> {
        match (self.shared.deadline, requested) {
            (Some(s), Some(r)) => Some(now + s.min(r)),
            (Some(s), None) => Some(now + s),
            (None, Some(r)) => Some(now + r),
            (None, None) => None,
        }
    }

    /// Submit and block for the response.
    pub fn infer(&self, input: Vec<f32>) -> Result<Response, ServeError> {
        self.submit(input)?.wait()
    }
}

/// The running service. Dropping it (or calling [`Self::shutdown`])
/// drains gracefully: submissions stop, every queued request is answered,
/// lanes exit, the pool joins.
pub struct InferenceService {
    shared: Arc<Shared>,
    lanes: usize,
    supervisor: Option<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl InferenceService {
    /// Start one lane per replica. All replicas must share the model's
    /// layer widths (they may use different backends). Lanes warm their
    /// replicas on their own threads before serving: engine workspaces,
    /// probe scratch, thread-local pack buffers and the inference scratch
    /// all reach their high-water marks, so steady-state serving performs
    /// no per-request heap allocation inside the engine.
    pub fn start(replicas: Vec<Replica>, config: ServeConfig) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica lane");
        assert!(config.queue_capacity >= 1, "queue capacity must be ≥ 1");
        let widths = replicas[0].mlp.widths();
        for r in &replicas[1..] {
            assert_eq!(r.mlp.widths(), widths, "replicas must share layer widths");
        }
        let in_width = widths[0];
        let target_batch = if config.target_batch == 0 {
            in_width
        } else {
            config.target_batch
        };
        // Canonical warmed batch sizes, largest first so warm-up sets
        // every buffer's high-water mark before smaller shapes reuse it.
        let mut warm: Vec<usize> = config
            .warm_batches
            .iter()
            .copied()
            .chain(std::iter::once(target_batch))
            .filter(|&b| b > 0 && b <= target_batch)
            .collect();
        warm.sort_unstable_by(|a, b| b.cmp(a));
        warm.dedup();

        let lanes = replicas.len();
        let shared = Arc::new(Shared {
            queue: SubmissionQueue::new(config.queue_capacity),
            policy: BatchPolicy {
                target_batch,
                max_linger: config.max_linger,
                attempts: config.batch_attempts.max(1),
            },
            stats: StatsCollector::new(target_batch),
            in_width,
            deadline: config.request_deadline,
            guards: replicas.iter().flat_map(|r| r.guards.clone()).collect(),
            admission: config.admission.clone().map(AdmissionController::new),
            breakers: config
                .breaker
                .map(|b| {
                    (0..lanes)
                        .map(|lane| CircuitBreaker::new(b, lane))
                        .collect()
                })
                .unwrap_or_default(),
            breaker_open: AtomicUsize::new(0),
            lanes,
            monitor_stop: Mutex::new(false),
            monitor_cvar: Condvar::new(),
        });
        let shared_for_lanes = shared.clone();
        let supervisor = std::thread::Builder::new()
            .name("apa-serve-supervisor".into())
            .spawn(move || {
                let pool = WorkerPool::new(lanes);
                // Lane loops live until the queue closes and drains; the
                // scope's barrier makes this join them all. A loop that
                // somehow panics past its per-batch isolation is caught
                // by the pool's task wrapper — the other lanes keep
                // serving and the panic surfaces here at drain time.
                let _ = pool.try_scope(|s| {
                    for (lane, replica) in replicas.into_iter().enumerate() {
                        let shared = shared_for_lanes.clone();
                        let warm = warm.clone();
                        s.spawn(move |_| lane_loop(lane, replica, &shared, &warm));
                    }
                });
                pool.shutdown();
            })
            .expect("supervisor thread spawn cannot fail");

        // The brownout monitor samples queue fill and windowed tail
        // latency, stepping every guarded replica up or down the quality
        // ladder. Pointless without guards to steer.
        let monitor =
            config
                .brownout
                .filter(|_| !shared.guards.is_empty())
                .map(|brownout_config| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name("apa-serve-brownout".into())
                        .spawn(move || monitor_loop(&shared, brownout_config))
                        .expect("monitor thread spawn cannot fail")
                });

        Self {
            shared,
            lanes,
            supervisor: Some(supervisor),
            monitor,
        }
    }

    /// Worker lanes (= replicas) the service runs.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bound of the submission queue.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// A cloneable submit handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }

    /// Live snapshot: queue/batch/latency counters plus the merged health
    /// of every guarded backend across all replicas.
    pub fn stats(&self) -> ServeStats {
        let mut health = HealthStats::default();
        for g in &self.shared.guards {
            health.merge(&g.health());
        }
        self.shared
            .stats
            .snapshot(self.shared.queue.depth(), health)
    }

    /// Graceful drain: stop accepting, flush and answer every queued
    /// request, join the lanes, return the final stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        *self
            .shared
            .monitor_stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.monitor_cvar.notify_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One lane: warm the replica, then serve batches until the queue drains.
fn lane_loop(lane: usize, replica: Replica, shared: &Shared, warm: &[usize]) {
    let in_width = shared.in_width;
    let mut scratch = InferenceScratch::new();
    let mut input = Mat::zeros(0, 0);
    let mut output = Mat::zeros(0, 0);

    // Warm on this thread: the pack buffers the multiplies use are
    // thread-local, so warming anywhere else would be useless. `warm` is
    // sorted largest-first, so the first pass sets the high-water marks.
    // A replica that panics while warming stays in service unwarmed —
    // warm-up is an optimization, never a reason to lose the lane.
    let _ = catch_unwind(AssertUnwindSafe(|| {
        replica.mlp.warm_for_batches(warm);
        for &batch in warm {
            input.resize(batch, in_width);
            input.fill(0.0);
            replica
                .mlp
                .predict_into(input.as_ref(), &mut output, &mut scratch);
        }
    }));

    let breaker = shared.breakers.get(lane);
    let mut parked = false;
    let mut expired = Vec::new();
    loop {
        // Circuit-breaker gate. A blocked lane naps in short slices so it
        // notices both the cool-down ending and a drain beginning — a
        // drain always overrides the breaker, so shutdown can never be
        // held hostage by a cool-down (and the drain path tolerates every
        // lane being sick: a degraded answer beats an unanswered ticket).
        let mut probing = false;
        if let Some(b) = breaker {
            loop {
                if shared.queue.is_closed() {
                    break;
                }
                match b.gate(Instant::now()) {
                    Gate::Serve => break,
                    Gate::Probe => {
                        probing = true;
                        break;
                    }
                    Gate::Blocked { until } => {
                        if !parked {
                            parked = true;
                            shared.breaker_open.fetch_add(1, Ordering::SeqCst);
                        }
                        let nap = until
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(5))
                            .max(Duration::from_micros(100));
                        std::thread::sleep(nap);
                    }
                }
            }
            if parked {
                parked = false;
                shared.breaker_open.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let Some(batch) = shared.queue.next_batch(&shared.policy, &mut expired) else {
            break;
        };
        fail_expired(&mut expired, shared, false);
        if batch.is_empty() {
            continue;
        }
        if probing {
            shared.stats.note_breaker_probe();
        }
        let started = Instant::now();
        let clean = run_batch(
            lane,
            &replica,
            batch,
            shared,
            warm,
            &mut scratch,
            &mut input,
            &mut output,
        );
        if let Some(b) = breaker {
            let stalled = b
                .config()
                .stall_timeout
                .is_some_and(|t| started.elapsed() > t);
            if clean && !stalled {
                b.on_success();
            } else {
                // Last-lane guard: only trip while at least one other
                // lane is still taking work.
                let open_elsewhere = shared.breaker_open.load(Ordering::SeqCst);
                let allow_open = open_elsewhere + 1 < shared.lanes;
                if b.on_failure(Instant::now(), allow_open) {
                    shared.stats.note_breaker_trip();
                }
            }
        }
    }
    // `next_batch` may move expirations out even on the final (None) pop.
    fail_expired(&mut expired, shared, false);
}

/// The brownout monitor: periodically sample queue fill and the p99 of
/// the *window* since the previous sample, let the controller pick a
/// level, and install the level's [`apa_matmul::QualityOverride`] on
/// every guarded backend. Overrides are cleared when the service stops.
fn monitor_loop(shared: &Shared, config: BrownoutConfig) {
    let sample_every = config.sample_every.max(Duration::from_millis(1));
    let mut ctl = BrownoutController::new(config);
    let mut prev = LatencyHistogram::default();
    let mut stop = shared
        .monitor_stop
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while !*stop {
        let (guard, _timeout) = shared
            .monitor_cvar
            .wait_timeout(stop, sample_every)
            .unwrap_or_else(PoisonError::into_inner);
        stop = guard;
        if *stop {
            break;
        }
        let fill = shared.queue.depth() as f64 / shared.queue.capacity() as f64;
        let hist = shared.stats.latency_snapshot();
        let window = hist.since(&prev);
        prev = hist;
        let window_p99 = (window.total() > 0).then(|| window.p99());
        let pressure = Pressure { fill, window_p99 };
        if let Some(level) = ctl.observe(pressure, Instant::now()) {
            let quality = ctl.override_for(level);
            for g in &shared.guards {
                g.set_quality_override(quality);
            }
            shared
                .stats
                .note_brownout(level, ctl.steps_down(), ctl.steps_up());
        }
    }
    drop(stop);
    for g in &shared.guards {
        g.set_quality_override(None);
    }
}

fn fail_expired(expired: &mut Vec<Pending>, shared: &Shared, at_assembly: bool) {
    for p in expired.drain(..) {
        shared.stats.note_expired(at_assembly);
        let _ = p.tx.send(Err(ServeError::DeadlineExceeded {
            waited: p.submitted.elapsed(),
        }));
    }
}

/// Serve one batch; returns `false` when every inference attempt failed
/// (the breaker's definition of a failed batch — shed or expired requests
/// are not the replica's fault).
#[allow(clippy::too_many_arguments)]
fn run_batch(
    lane: usize,
    replica: &Replica,
    batch: Vec<Pending>,
    shared: &Shared,
    warm: &[usize],
    scratch: &mut InferenceScratch,
    input: &mut Mat<f32>,
    output: &mut Mat<f32>,
) -> bool {
    // Assembly-time shed: a request whose deadline already passed gets
    // its typed answer *now*, before any padding or inference is spent on
    // it. The queue's front sweep only catches in-order expiry (uniform
    // service deadlines); per-request deadlines expire out of order and
    // land here.
    let now = Instant::now();
    let (batch, dead): (Vec<Pending>, Vec<Pending>) = batch
        .into_iter()
        .partition(|p| !expired_at(p.deadline, now));
    let mut dead = dead;
    fail_expired(&mut dead, shared, true);
    if batch.is_empty() {
        return true;
    }
    let rows = batch.len();
    // Pad ragged tails up to the nearest warmed batch size (the target
    // batch is always warmed, so a fallback to `rows` is only reachable
    // with an over-target batch, which `next_batch` never produces).
    let padded = warm
        .iter()
        .copied()
        .filter(|&b| b >= rows)
        .min()
        .unwrap_or(rows);
    input.resize(padded, shared.in_width);
    for (i, p) in batch.iter().enumerate() {
        input.as_mut().row_mut(i).copy_from_slice(&p.input);
    }
    for i in rows..padded {
        input.as_mut().row_mut(i).fill(0.0);
    }
    shared.stats.note_batch(rows, padded);

    let mut attempt = 0;
    let outcome = loop {
        attempt += 1;
        let run = catch_unwind(AssertUnwindSafe(|| {
            replica.mlp.predict_into(input.as_ref(), output, scratch);
        }));
        match run {
            Ok(()) => break Ok(()),
            Err(payload) => {
                if attempt < shared.policy.attempts {
                    // A guarded replica usually demoted on the panic;
                    // the retry runs on the safer rung.
                    shared.stats.note_retry();
                    continue;
                }
                break Err(panic_detail(payload.as_ref()));
            }
        }
    };

    match outcome {
        Ok(()) => {
            let done = Instant::now();
            for (i, p) in batch.into_iter().enumerate() {
                // A deadline that expired mid-inference: the work is
                // already paid for, so deliver the answer — but count it,
                // the client may have stopped waiting.
                let late = expired_at(p.deadline, done);
                let response = Response {
                    output: output.as_ref().row(i).to_vec(),
                    lane,
                    batch_rows: rows,
                    padded_rows: padded,
                    latency: p.submitted.elapsed(),
                };
                shared.stats.note_completed(response.latency, late);
                let _ = p.tx.send(Ok(response));
            }
            true
        }
        Err(detail) => {
            shared.stats.note_failed(rows);
            for p in batch {
                let _ = p.tx.send(Err(ServeError::Inference {
                    detail: detail.clone(),
                }));
            }
            false
        }
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}
