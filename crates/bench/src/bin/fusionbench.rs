//! Fusion ablation harness: measures the fused execution path
//! (`FusionPolicy::Auto` — pack-time operand combination + epilogue
//! W-accumulation) against the fully materialized reference
//! (`FusionPolicy::Never`) on ParaDnn-style square shapes, and emits the
//! machine-readable `BENCH_5.json` consumed by EXPERIMENTS.md.
//!
//! For every (rule, width) cell both policies run on their own warm
//! workspace (Hybrid strategy, release build) and report the median of
//! `--reps` timed runs as effective GFLOPS (classical 2n³ flops, the
//! paper's §3.3 convention). Workspace footprints come from
//! [`Workspace::footprint_bytes`] under each policy and the estimated
//! framework traffic from [`profile_one_step`]'s `est_bytes_moved` model.
//!
//! The default shape is the ParaDnn MLP *training* product
//! `(batch x width) · (width x width)` with batch 64: compute is
//! O(batch·width²) while the combination sweeps are O(rank·width²), so
//! this is the regime where operand traffic — what fusion removes —
//! actually bounds the wall-clock. Pass `--batch 0` for the square
//! compute-bound sweep (batch = width).
//!
//! Usage: `cargo run --release -p apa-bench --bin fusionbench
//!         [--widths 512,1024,2048] [--rules bini322,fast444]
//!         [--steps 1] [--batch 128] [--threads 4] [--reps 7]
//!         [--out BENCH_5.json]`

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{profile_one_step, ApaMatmul, FusionPolicy, Strategy};
use serde_json::{json, Value};
use std::time::Instant;

fn probe_rect(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn probe(n: usize, seed: u64) -> Mat<f32> {
    probe_rect(n, n, seed)
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Cell {
    rule: String,
    width: usize,
    policy: &'static str,
    seconds: f64,
    gflops: f64,
    workspace_bytes: usize,
    est_bytes_moved: u64,
    fused_packs: usize,
    fused_epilogues: usize,
}

fn measure(
    rule: &str,
    n: usize,
    batch: usize,
    steps: u32,
    threads: usize,
    reps: usize,
) -> Vec<Cell> {
    let alg = catalog::by_name(rule).unwrap_or_else(|| panic!("unknown rule {rule}"));
    // ParaDnn MLP layer product: (batch x width) · (width x width).
    // batch = width gives the square sweep; a smaller batch is the
    // training regime where the width² combination sweeps weigh most.
    let m = if batch == 0 { n } else { batch };
    let mut out = Mat::<f32>::zeros(m, n);
    let a = probe_rect(m, n, 1);
    let b = probe(n, 2);

    let policies = [
        ("fused", FusionPolicy::Auto),
        ("materialized", FusionPolicy::Never),
    ];
    let mms: Vec<ApaMatmul> = policies
        .iter()
        .map(|(_, policy)| {
            ApaMatmul::new(alg.clone())
                .steps(steps)
                .strategy(Strategy::Hybrid)
                .threads(threads)
                .fusion(*policy)
        })
        .collect();
    // Interleave the two policies rep by rep: slow machine-load drift
    // (frequency scaling, steal time) then lands on both sides equally
    // instead of biasing whichever policy ran last.
    let mut times = [Vec::with_capacity(reps), Vec::with_capacity(reps)];
    for mm in &mms {
        mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut());
    }
    for _ in 0..reps.max(1) {
        for (mm, lane) in mms.iter().zip(times.iter_mut()) {
            let t0 = Instant::now();
            mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut());
            lane.push(t0.elapsed().as_secs_f64());
        }
    }

    policies
        .into_iter()
        .zip(mms.iter())
        .zip(times)
        .map(|(((label, policy), mm), lane)| {
            let seconds = median(lane);
            let ws = mm.make_workspace::<f32>(m, n, n);
            // One-step profile at the divisible core size: the alloc/traffic
            // model is per level, so the top level is where the S/T/M savings
            // show up undiluted.
            let d = mm.plan().dims;
            let (pm, pk, pn) = (m - m % d.m, n - n % d.k, n - n % d.n);
            let (_, profile) = profile_one_step(
                mm.plan(),
                a.as_ref().subview(0, 0, pm, pk),
                b.as_ref().subview(0, 0, pk, pn),
                policy,
            );
            Cell {
                rule: rule.to_string(),
                width: n,
                policy: label,
                seconds,
                // Effective GFLOPS over the classical 2·m·k·n flops of the
                // full (possibly rectangular) product.
                gflops: 2.0 * (m * n * n) as f64 / seconds / 1e9,
                workspace_bytes: ws.footprint_bytes(),
                est_bytes_moved: profile.est_bytes_moved,
                fused_packs: profile.fused_packs,
                fused_epilogues: profile.fused_epilogues,
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let widths: Vec<usize> = args
        .get_str("widths")
        .unwrap_or("512,1024,2048")
        .split(',')
        .map(|s| s.trim().parse().expect("bad --widths"))
        .collect();
    let rules: Vec<String> = args
        .get_str("rules")
        .unwrap_or("bini322,fast444")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let steps: u32 = args.get("steps", 1);
    let batch: usize = args.get("batch", 64);
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism()
            .map(|p| p.get().min(4))
            .unwrap_or(1),
    );
    let reps: usize = args.get("reps", 7);
    let out_path = args.get_str("out").unwrap_or("BENCH_5.json").to_string();

    let scope = format!(
        "fused (Auto) vs materialized (Never), rules {rules:?}, widths {widths:?}, \
         batch {} x width, steps {steps}, Hybrid x{threads}, median of {reps}",
        if batch == 0 {
            "= width".to_string()
        } else {
            batch.to_string()
        }
    );
    banner(
        "fusionbench",
        &[
            &scope,
            "effective GFLOPS counts classical 2mkn flops (paper §3.3)",
            "ws_bytes = warm per-shape workspace footprint under each policy",
            "est_traffic = stats.rs model; compare across policies on one shape only",
        ],
    );

    let mut cells: Vec<Cell> = Vec::new();
    for rule in &rules {
        for &n in &widths {
            cells.extend(measure(rule, n, batch, steps, threads, reps));
        }
    }

    let header = [
        "rule",
        "width",
        "policy",
        "median_s",
        "gflops",
        "ws_bytes",
        "est_traffic",
        "fused_packs",
        "fused_epis",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.rule.clone(),
                c.width.to_string(),
                c.policy.to_string(),
                format!("{:.4}", c.seconds),
                format!("{:.2}", c.gflops),
                c.workspace_bytes.to_string(),
                c.est_bytes_moved.to_string(),
                c.fused_packs.to_string(),
                c.fused_epilogues.to_string(),
            ]
        })
        .collect();
    print_table(&header, &rows);
    print_csv(&header, &rows);

    // Best fused-over-materialized speedup at width >= 1024 — the ISSUE 5
    // acceptance gate (>= 10% on at least one rule).
    let mut best: Option<(String, usize, f64)> = None;
    for pair in cells.chunks(2) {
        let (f, m) = (&pair[0], &pair[1]);
        if f.width < 1024 {
            continue;
        }
        let gain = m.seconds / f.seconds - 1.0;
        if best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
            best = Some((f.rule.clone(), f.width, gain));
        }
    }
    if let Some((rule, width, gain)) = &best {
        println!(
            "\nbest speedup at width >= 1024: {rule} @ {width}: {:.1}% ({})",
            gain * 100.0,
            if *gain >= 0.10 {
                "PASS >= 10%"
            } else {
                "below 10%"
            }
        );
    }

    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            let rule = c.rule.as_str();
            let (width, policy, seconds, gflops) = (c.width, c.policy, c.seconds, c.gflops);
            let (ws, traffic) = (c.workspace_bytes, c.est_bytes_moved);
            let (packs, epis) = (c.fused_packs, c.fused_epilogues);
            json!({
                "rule": rule,
                "width": width,
                "policy": policy,
                "median_seconds": seconds,
                "median_gflops": gflops,
                "workspace_bytes": ws,
                "est_bytes_moved": traffic,
                "fused_packs": packs,
                "fused_epilogues": epis
            })
        })
        .collect();
    let (best_rule, best_width, best_gain) = best
        .map(|(r, w, g)| (r, w, g * 100.0))
        .unwrap_or_else(|| (String::new(), 0, 0.0));
    let doc = json!({
        "bench": "fusion",
        "strategy": "hybrid",
        "threads": threads,
        "steps": steps,
        "batch": batch,
        "reps": reps,
        "results": cell_values,
        "best_speedup_pct_at_width_ge_1024": best_gain,
        "best_speedup_rule": best_rule,
        "best_speedup_width": best_width
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize BENCH_5");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_5.json");
    println!("wrote {out_path}");
}
