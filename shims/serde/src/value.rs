//! The JSON-like value tree shared by the `serde` and `serde_json` shims.
//!
//! Objects are ordered `Vec<(String, Value)>` pairs: insertion order is
//! preserved so serialized output is stable, and lookup is linear (fine
//! for the small config/algorithm documents this workspace serializes).

/// A JSON value. Numbers are uniformly `f64` (exact for the integer
/// ranges this workspace round-trips; see `MapKey` for map keys).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup; `None` when `self` is not an object or the
    /// key is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like serde_json: missing keys and non-objects index to `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Like serde_json: inserts the key (as `Null`) into an object when
    /// absent; panics when `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(entries) => {
                if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[pos].1
                } else {
                    entries.push((key.to_string(), Value::Null));
                    &mut entries.last_mut().unwrap().1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

/// Compact JSON text (what serde_json's `Value: Display` produces).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write_compact(self, f)
    }
}

fn write_compact(v: &Value, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Num(n) => write_num(n, f),
        Value::Str(s) => write_escaped(s, f),
        Value::Array(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_compact(item, f)?;
            }
            f.write_str("]")
        }
        Value::Object(entries) => {
            f.write_str("{")?;
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(k, f)?;
                f.write_str(":")?;
                write_compact(val, f)?;
            }
            f.write_str("}")
        }
    }
}

pub(crate) fn write_num(n: &f64, f: &mut impl std::fmt::Write) -> std::fmt::Result {
    if !n.is_finite() {
        // serde_json serializes non-finite floats as null.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        write!(f, "{}", *n as i64)
    } else {
        // `{:?}` is Rust's shortest round-trip float repr, valid JSON for
        // finite values.
        write!(f, "{n:?}")
    }
}

/// Write `s` as a quoted, escaped JSON string (used by the serde_json
/// shim's pretty printer as well as compact `Display`).
pub fn write_escaped(s: &str, f: &mut impl std::fmt::Write) -> std::fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_index_mut() {
        let mut v = Value::Object(vec![(
            "dims".to_string(),
            Value::Object(vec![("m".to_string(), Value::Num(4.0))]),
        )]);
        assert_eq!(v["dims"]["m"], Value::Num(4.0));
        assert!(v["missing"].is_null());
        v["dims"]["m"] = Value::Num(3.0);
        assert_eq!(v["dims"]["m"], Value::Num(3.0));
        v["dims"]["new"] = Value::Bool(true);
        assert_eq!(v["dims"]["new"], Value::Bool(true));
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::Num(1.0), Value::Num(2.5)]),
            ),
            ("b".to_string(), Value::Str("x\"y".to_string())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":[1,2.5],"b":"x\"y"}"#);
    }

    #[test]
    fn numbers_format_cleanly() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }
}
