//! Property-based tests on the Laurent algebra — ring axioms, evaluation
//! homomorphism and degree bookkeeping, all under random inputs.

use apa_core::Laurent;
use proptest::prelude::*;

fn laurent() -> impl Strategy<Value = Laurent> {
    proptest::collection::vec((-4i32..=4, -3.0f64..3.0), 0..6).prop_map(Laurent::from_terms)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn addition_is_associative(a in laurent(), b in laurent(), c in laurent()) {
        let lhs = a.add(&b).add(&c);
        let rhs = a.add(&b.add(&c));
        prop_assert!(lhs.sub(&rhs).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn multiplication_is_associative(a in laurent(), b in laurent(), c in laurent()) {
        let lhs = a.mul(&b).mul(&c);
        let rhs = a.mul(&b.mul(&c));
        prop_assert!(lhs.sub(&rhs).max_abs_coeff() < 1e-9);
    }

    #[test]
    fn multiplication_commutes(a in laurent(), b in laurent()) {
        prop_assert!(a.mul(&b).sub(&b.mul(&a)).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn distributivity(a in laurent(), b in laurent(), c in laurent()) {
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert!(lhs.sub(&rhs).max_abs_coeff() < 1e-9);
    }

    #[test]
    fn one_is_multiplicative_identity(a in laurent()) {
        prop_assert!(a.mul(&Laurent::one()).sub(&a).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn zero_annihilates(a in laurent()) {
        prop_assert!(a.mul(&Laurent::zero()).is_zero());
        prop_assert!(a.add(&Laurent::zero()).sub(&a).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn eval_is_ring_homomorphism(a in laurent(), b in laurent(), x in 0.05f64..4.0) {
        prop_assert!(close(a.add(&b).eval(x), a.eval(x) + b.eval(x)));
        prop_assert!(close(a.mul(&b).eval(x), a.eval(x) * b.eval(x)));
        prop_assert!(close(a.neg().eval(x), -a.eval(x)));
    }

    #[test]
    fn degree_bounds_respect_multiplication(a in laurent(), b in laurent()) {
        let p = a.mul(&b);
        if let (Some(da), Some(db), Some(dp)) = (a.max_degree(), b.max_degree(), p.max_degree()) {
            prop_assert!(dp <= da + db, "max degree can only cancel downward");
        }
        if let (Some(da), Some(db), Some(dp)) = (a.min_degree(), b.min_degree(), p.min_degree()) {
            prop_assert!(dp >= da + db, "min degree can only cancel upward");
        }
    }

    #[test]
    fn scale_matches_mul_by_constant(a in laurent(), s in -3.0f64..3.0) {
        let lhs = a.scale(s);
        let rhs = a.mul(&Laurent::constant(s));
        prop_assert!(lhs.sub(&rhs).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn mul_monomial_is_shift_and_scale(a in laurent(), e in -3i32..=3, c in 0.1f64..2.0) {
        let lhs = a.mul_monomial(c, e);
        let rhs = a.mul(&Laurent::monomial(c, e));
        prop_assert!(lhs.sub(&rhs).max_abs_coeff() < 1e-12);
    }

    #[test]
    fn negative_degree_tracks_min_degree(a in laurent()) {
        let nd = a.negative_degree();
        match a.min_degree() {
            Some(d) if d < 0 => prop_assert_eq!(nd, (-d) as u32),
            _ => prop_assert_eq!(nd, 0),
        }
    }
}
