//! NN-level integration: the paper's §4–5 claims at test scale — APA
//! backends train as well as classical, across the catalog; the VGG head
//! behaves; training is deterministic given seeds.

use apa_repro::nn::{
    accuracy_network, apa, classical, performance_network, synthetic_mnist_split, Backend, Vgg19Fc,
};
use apa_repro::prelude::catalog;

fn final_test_accuracy(hidden: Backend, epochs: usize) -> f64 {
    let (train, test) = synthetic_mnist_split(1200, 300, 0xDA7A);
    let mut net = accuracy_network(hidden, 1, 0xACC);
    // Batch 100 rather than the paper's 300: 12 SGD steps per epoch keep
    // this miniature converging within the test budget.
    for e in 0..epochs {
        net.train_epoch(&train, 100, 0.1, e);
    }
    net.evaluate(&test, 300)
}

#[test]
fn all_paper_algorithms_train_comparably() {
    // The §4.2 robustness claim across the whole lineup, miniaturized:
    // every APA backend must land within 10 points of classical.
    let baseline = final_test_accuracy(classical(1), 6);
    assert!(baseline > 0.7, "classical baseline too weak: {baseline}");
    for alg in catalog::paper_lineup() {
        let name = alg.name.clone();
        let acc = final_test_accuracy(apa(alg, 1), 6);
        assert!(
            acc > baseline - 0.10,
            "{name}: accuracy {acc} vs classical {baseline}"
        );
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let a = final_test_accuracy(classical(1), 2);
    let b = final_test_accuracy(classical(1), 2);
    assert_eq!(a, b);
}

#[test]
fn performance_network_trains_with_apa_hidden_layers() {
    let (train, _) = synthetic_mnist_split(256, 10, 3);
    let mut net = performance_network(128, apa(catalog::fast444(), 1), 1, 5);
    let s0 = net.train_epoch(&train, 128, 0.05, 0);
    let s1 = net.train_epoch(&train, 128, 0.05, 1);
    let s2 = net.train_epoch(&train, 128, 0.05, 2);
    assert!(
        s2.loss < s0.loss || s1.loss < s0.loss,
        "loss should trend down: {} {} {}",
        s0.loss,
        s1.loss,
        s2.loss
    );
}

#[test]
fn vgg_head_losses_decrease_under_both_backends() {
    for backend in [classical(1), apa(catalog::fast442(), 1)] {
        let mut head = Vgg19Fc::new(backend, 32, 0x7799);
        let x = head.synthetic_features(32, 1);
        let labels = head.synthetic_labels(32, 2);
        // A few steps must run without numerical blowup.
        for _ in 0..3 {
            let secs = head.train_batch_timed(&x, &labels, 0.005);
            assert!(secs.is_finite() && secs > 0.0);
        }
        let logits = head.predict(&x);
        assert!(
            logits.as_slice().iter().all(|v| v.is_finite()),
            "logits exploded"
        );
    }
}

#[test]
fn backend_names_propagate_to_summaries() {
    let net = accuracy_network(apa(catalog::apa552(), 2), 1, 0);
    assert!(net.backend_summary().contains("apa552(t=2)"));
}
