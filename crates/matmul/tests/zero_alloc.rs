//! Zero-allocation invariant for the workspace-reuse engine.
//!
//! Installs [`apa_gemm::CountingAlloc`] as the global allocator, warms the
//! [`ApaMatmul`] workspace cache and the thread-local gemm pack cache with a
//! couple of calls, then asserts that further multiplications on the same
//! shapes perform **zero** heap allocations — the tentpole contract of the
//! workspace subsystem.
//!
//! Runs everything in `Strategy::Seq` so no rayon pool machinery is
//! involved; the parallel strategies share the exact same buffer tree and
//! are covered bitwise elsewhere.

use apa_core::catalog;
use apa_gemm::{allocation_counters, Mat};
use apa_matmul::{ApaMatmul, PeelMode, Strategy};

#[global_allocator]
static ALLOC: apa_gemm::CountingAlloc = apa_gemm::CountingAlloc;

fn probe(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

/// Warm up `mm` on (a, b, c), then assert the next `rounds` calls allocate
/// nothing at all.
fn assert_steady_state_is_allocation_free(
    mm: &ApaMatmul,
    a: &Mat<f32>,
    b: &Mat<f32>,
    c: &mut Mat<f32>,
    what: &str,
) {
    // Two warmup calls: the first builds the cached workspace, the second
    // settles the thread-local gemm pack buffers at their high-water mark.
    mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());

    let before = allocation_counters();
    let rounds = 5;
    for _ in 0..rounds {
        mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    }
    let delta = allocation_counters().since(before);
    assert_eq!(
        delta.calls, 0,
        "{what}: {} allocations ({} bytes) across {rounds} warm calls",
        delta.calls, delta.bytes
    );
}

#[test]
fn warm_divisible_multiplication_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("fast444").unwrap())
        .steps(2)
        .strategy(Strategy::Seq)
        .threads(1);
    let a = probe(64, 64, 1);
    let b = probe(64, 64, 2);
    let mut c = Mat::zeros(64, 64);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "divisible fast444");
}

#[test]
fn warm_dynamic_peeling_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1)
        .peel_mode(PeelMode::Dynamic);
    let a = probe(67, 45, 3);
    let b = probe(45, 51, 4);
    let mut c = Mat::zeros(67, 51);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "dynamic-peel bini322");
}

#[test]
fn warm_pad_mode_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("strassen").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1)
        .peel_mode(PeelMode::Pad);
    let a = probe(33, 29, 5);
    let b = probe(29, 31, 6);
    let mut c = Mat::zeros(33, 31);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "pad-mode strassen");
}

#[test]
fn explicit_workspace_calls_do_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("fast442").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1);
    let a = probe(36, 24, 7);
    let b = probe(24, 30, 8);
    let mut c = Mat::zeros(36, 30);
    let mut ws = mm.make_workspace::<f32>(36, 24, 30);
    // Warm the thread-local pack buffers.
    mm.multiply_into_with(a.as_ref(), b.as_ref(), c.as_mut(), &mut ws);

    let before = allocation_counters();
    for _ in 0..5 {
        mm.multiply_into_with(a.as_ref(), b.as_ref(), c.as_mut(), &mut ws);
    }
    let delta = allocation_counters().since(before);
    assert_eq!(delta.calls, 0, "explicit workspace path allocated");
    assert_eq!(ws.runs(), 6);
}
