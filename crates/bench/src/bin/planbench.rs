//! Plan-compiler evaluation harness (ISSUE 9 acceptance evidence).
//!
//! On ParaDnn-style training shapes `(batch × width) · (width × width)`
//! the harness times every *hand-flagged* APA configuration the previous
//! PRs hard-coded into layer backends — each paper-lineup rule at the
//! standard training setup (1 step, hybrid strategy, dynamic peel) —
//! then asks the `apa-planner` compiler (measured refinement on) for its
//! plan and times that. Classical gemm is measured alongside as the
//! reference floor. Gates:
//!
//! * at **every** width the compiled plan is within 2% of the best
//!   hand-flagged rule (the compiler never loses meaningfully to a
//!   hand-picked algorithm);
//! * at **≥ 1** width the compiled plan strictly beats the best
//!   hand-flagged rule — on hosts below the Fig-3 crossover that win is
//!   precisely *knowing when not to approximate* (EXPERIMENTS.md puts
//!   this machine's crossover at n ≈ 1500–2000, above every ParaDnn
//!   width, so a fixed APA rule loses to shape-adaptive fallback);
//! * a warm [`apa_planner::PlanCompiler`] answers in < 1 ms per shape.
//!
//! Also reports the addition-CSE savings per chosen plan. Emits
//! `BENCH_9.json`; `scripts/bench.sh` asserts the criteria block.
//!
//! Usage: `cargo run --release -p apa-bench --bin planbench --
//!         [--widths 256,512,768,1024] [--batch 64] [--reps 7]
//!         [--threads 1] [--out BENCH_9.json]`

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{ApaMatmul, ClassicalMatmul, PeelMode, Strategy};
use apa_planner::{PlanCompiler, PlanRequest};
use serde_json::json;
use std::time::Instant;

fn probe_rect(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

/// Best wall-clock for one multiply closure over `reps` interleaved calls.
fn time_best(reps: usize, mut call: impl FnMut()) -> f64 {
    call(); // warm: workspaces, pack buffers, plan caches
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        call();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct WidthRow {
    width: usize,
    classical_seconds: f64,
    best_hand_name: String,
    best_hand_seconds: f64,
    compiler_rule: String,
    compiler_seconds: f64,
    ratio: f64,
    additions_before: u32,
    additions_after: u32,
}

fn main() {
    let args = Args::parse();
    let widths: Vec<usize> = args
        .get_str("widths")
        .unwrap_or("256,512,768,1024")
        .split(',')
        .map(|w| w.trim().parse().expect("bad --widths"))
        .collect();
    let batch = args.get("batch", 64usize);
    let reps = args.get("reps", 7usize);
    let threads = args.get("threads", 1usize);
    let out_path = args.get_str("out").unwrap_or("BENCH_9.json").to_string();

    println!("{}", apa_repro::diagnostics());
    banner(
        "Plan compiler vs hand-flagged configurations (ParaDnn shapes)",
        &[
            &format!("shape (batch x width)·(width x width), batch {batch}, {threads} thread(s)"),
            &format!("widths {widths:?}, best of {reps} interleaved reps"),
            "criteria: compiled <= 1.02x best hand everywhere, < 1x somewhere",
        ],
    );

    // Measured refinement on: the compiler may micro-time its analytic
    // short-list, exactly what a deployment enabling APA_PLAN_TUNE gets.
    let compiler = PlanCompiler::new().measured(true);
    let mut rows: Vec<WidthRow> = Vec::new();

    for &width in &widths {
        let (m, k, n) = (batch, width, width);
        let a = probe_rect(m, k, 0xA11CE ^ width as u64);
        let b = probe_rect(k, n, 0xB0B ^ width as u64);
        let mut c = Mat::<f32>::zeros(m, n);

        // The classical reference floor.
        let classical = ClassicalMatmul::new().threads(threads);
        let classical_seconds = time_best(reps, || {
            classical.multiply_into(a.as_ref(), b.as_ref(), c.as_mut())
        });

        // Hand-flagged field: every paper rule at the standard training
        // knobs — what a fixed-rule backend (pre-planner) would run.
        let mut best_hand: Option<(String, f64)> = None;
        for alg in catalog::paper_lineup() {
            let name = alg.name.clone();
            let mm = ApaMatmul::new(alg)
                .steps(1)
                .strategy(Strategy::Hybrid)
                .threads(threads)
                .peel_mode(PeelMode::Dynamic);
            let secs = time_best(reps, || {
                mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut())
            });
            if best_hand.as_ref().is_none_or(|(_, t)| secs < *t) {
                best_hand = Some((name, secs));
            }
        }
        let best_hand = best_hand.expect("paper lineup is non-empty");

        // Compiler-selected plan for the same request.
        let req = PlanRequest::new(m, k, n).threads(threads);
        let plan = compiler.compile(&req);
        let exec = plan.build().expect("compiled plan builds");
        let compiler_seconds = time_best(reps, || {
            exec.multiply_into(a.as_ref(), b.as_ref(), c.as_mut())
        });

        let ratio = compiler_seconds / best_hand.1;
        println!(
            "width {width}: classical {:.3} ms | hand best {} ({:.3} ms) | compiled {}{} ({:.3} ms) ratio {:.3}",
            classical_seconds * 1e3,
            best_hand.0,
            best_hand.1 * 1e3,
            plan.rule,
            if plan.cse { "+cse" } else { "" },
            compiler_seconds * 1e3,
            ratio
        );
        rows.push(WidthRow {
            width,
            classical_seconds,
            best_hand_name: best_hand.0,
            best_hand_seconds: best_hand.1,
            compiler_rule: format!("{}{}", plan.rule, if plan.cse { "+cse" } else { "" }),
            compiler_seconds,
            ratio,
            additions_before: plan.additions_before,
            additions_after: plan.additions_after,
        });
    }

    // Warm-compile latency gate: every request above is already in the
    // compiler's memory cache; re-asking must be sub-millisecond.
    let warm_t0 = Instant::now();
    let warm_lookups = 100 * widths.len();
    for _ in 0..100 {
        for &width in &widths {
            compiler.compile(&PlanRequest::new(batch, width, width).threads(threads));
        }
    }
    let warm_compile_seconds = warm_t0.elapsed().as_secs_f64() / warm_lookups as f64;

    let within_tolerance = rows.iter().all(|r| r.ratio <= 1.02);
    let strictly_better_somewhere = rows.iter().any(|r| r.ratio < 1.0);
    let warm_under_1ms = warm_compile_seconds < 1e-3;

    let header = [
        "width",
        "classical ms",
        "hand best",
        "hand ms",
        "compiled",
        "compiled ms",
        "ratio",
        "adds before",
        "adds after",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.width.to_string(),
                format!("{:.3}", r.classical_seconds * 1e3),
                r.best_hand_name.clone(),
                format!("{:.3}", r.best_hand_seconds * 1e3),
                r.compiler_rule.clone(),
                format!("{:.3}", r.compiler_seconds * 1e3),
                format!("{:.3}", r.ratio),
                r.additions_before.to_string(),
                r.additions_after.to_string(),
            ]
        })
        .collect();
    print_table(&header, &table);
    print_csv(&header, &table);

    println!(
        "\nwarm compile: {:.1} µs/shape | within 2% everywhere: {} | strictly better somewhere: {}",
        warm_compile_seconds * 1e6,
        within_tolerance,
        strictly_better_somewhere
    );

    let doc = json!({
        "bench": "planbench",
        "config": {
            "batch": batch,
            "widths": widths,
            "threads": threads,
            "reps": reps,
            "measured_refinement": true,
        },
        "widths": (rows.iter().map(|r| json!({
            "width": (r.width),
            "classical_seconds": (r.classical_seconds),
            "best_hand": (r.best_hand_name),
            "best_hand_seconds": (r.best_hand_seconds),
            "compiler_rule": (r.compiler_rule),
            "compiler_seconds": (r.compiler_seconds),
            "ratio": (r.ratio),
            "additions_before": (r.additions_before),
            "additions_after": (r.additions_after),
            "additions_saved": (r.additions_before - r.additions_after),
        })).collect::<Vec<_>>()),
        "warm_compile_seconds_per_shape": warm_compile_seconds,
        "criteria": {
            "tolerance": 1.02,
            "compiler_within_tolerance": within_tolerance,
            "compiler_strictly_better_somewhere": strictly_better_somewhere,
            "warm_compile_under_1ms": warm_under_1ms,
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize BENCH_9");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_9.json");
    println!("wrote {out_path}");
}
