//! # apa-gemm
//!
//! A from-scratch, pure-Rust classical GEMM substrate: packed, cache-blocked,
//! register-tiled and row-parallel. In the reproduction of the ICPP'21 APA
//! paper it plays the role Intel MKL plays in the original: the highly
//! efficient `gemm` leaf that both the classical baseline *and* the APA
//! algorithms' sub-multiplications call into.
//!
//! Components:
//!
//! * [`matrix`] — owned matrices plus strided, zero-copy sub-block views
//!   with safe disjoint splitting;
//! * [`scalar`] — the `f32`/`f64` abstraction (single precision for all
//!   experiments, double for references, matching the paper);
//! * [`pack`] / [`microkernel`] / [`blocked`] — the BLIS-style kernel
//!   stack, single-threaded;
//! * [`kernel`] — explicit AVX2/AVX-512 register-tile kernels behind
//!   one-time runtime CPU dispatch ([`microkernel`] is the scalar tier),
//!   bitwise-identical across tiers;
//! * [`blocktune`] — MC/KC/NC blocking derived from the detected cache
//!   hierarchy, with opt-in measured autotune persisted across runs;
//! * [`parallel`] — 2D cooperative-packing multithreaded GEMM (shared
//!   B-panel arenas, MC×NC cell work-stealing) over cached,
//!   panic-isolated, core-pinned worker pools ([`pool`]);
//! * [`add`] — fused "write-once" linear-combination kernels, the matrix
//!   additions of the APA framework;
//! * [`naive`] — triple-loop oracles for testing and f64 references.
//!
//! ```
//! use apa_gemm::{gemm_st, Mat};
//! let a = Mat::<f32>::from_fn(64, 48, |i, j| (i + j) as f32 * 0.01);
//! let b = Mat::<f32>::from_fn(48, 32, |i, j| (i as f32 - j as f32) * 0.01);
//! let mut c = Mat::<f32>::zeros(64, 32);
//! gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
//! assert!(c.at(0, 0).is_finite());
//! ```

pub mod abft;
pub mod add;
pub mod blocked;
pub mod blocktune;
pub mod counting_alloc;
pub mod kernel;
pub mod matrix;
pub mod microkernel;
pub mod naive;
pub mod pack;
pub mod parallel;
pub mod pool;
pub mod scalar;
pub mod transpose;

pub use abft::{AbftConfig, AbftCounts, AbftSession, AbftStats, DEFAULT_SLACK};
pub use add::{combine, combine_axpy, combine_par, MAX_INLINE_COMBINE};
pub use blocked::{
    gemm_combined_st, gemm_combined_st_with_scratch, gemm_combined_st_with_spec, gemm_st,
    gemm_st_with_scratch, gemm_st_with_spec, matmul, BlockSizes, Scratch,
};
pub use blocktune::{
    block_report, block_sizes, probe_bandwidth_bytes, probe_parallel_gflops, CacheHierarchy,
    TuneSource,
};
pub use counting_alloc::{
    allocation_counters, thread_allocation_counters, AllocationCounters, CountingAlloc,
};
pub use kernel::{
    available_tiers, dispatch_report, kernel_spec, selected_tier, spec_for_tier, KernelSpec,
    KernelTier, MAX_TILE_ELEMS,
};
pub use matrix::{Mat, MatMut, MatRef};
pub use naive::{matmul_naive, matmul_naive_f64};
pub use pack::{pack_a, pack_a_combined, pack_b, pack_b_combined, MAX_PACK_TERMS};
pub use parallel::{
    gemm, gemm_combined, live_arenas, matmul_par, par_stats, try_gemm, try_gemm_combined, ParStats,
};
pub use pool::{
    default_threads, pool, rebuild, topology, topology_report, CpuSlot, Par, PoolError, Topology,
    WorkerPool,
};
pub use scalar::Scalar;
pub use transpose::{gemm_op, transpose, transpose_into, Op};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn microkernel_tile_shapes_match_scalar_consts() {
        // The scalar tier hard-codes these monomorphizations; keep them
        // in lockstep with the Scalar consts and the shared ragged-edge
        // scratch budget that every dispatch tier must fit.
        assert_eq!((f32::MR, f32::NR), (8, 8));
        assert_eq!((f64::MR, f64::NR), (4, 8));
        assert!(f32::MR * f32::NR <= MAX_TILE_ELEMS);
        assert!(f64::MR * f64::NR <= MAX_TILE_ELEMS);
    }
}
