//! The ABFT checksum tier through the guarded matmul: fault-free runs are
//! bitwise transparent at catalog λ (no false positives, no demotions),
//! and — with `--features fault-inject` — injected single-bit flips in
//! the gemm leaves are detected, surgically repaired in place and only
//! escalate the rung ladder when configured to.
//!
//! The ABFT session is installed process-globally around each guarded
//! call, so tests serialize on one lock.

use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{AbftMode, GuardedApaMatmul, SentinelConfig};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn probe_mat(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn assert_bitwise_eq(a: &Mat<f32>, b: &Mat<f32>, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a.at(i, j).to_bits(),
                b.at(i, j).to_bits(),
                "{what}: ({i},{j})"
            );
        }
    }
}

#[test]
fn abft_tier_is_bitwise_transparent_on_fault_free_apa_runs() {
    let _g = lock();
    // Catalog λ (the tuned optimum): the APA approximation error lives
    // between the leaves, so the leaf checksums must never fire.
    let on = GuardedApaMatmul::new(catalog::bini322());
    let off = GuardedApaMatmul::new(catalog::bini322()).sentinel(SentinelConfig {
        abft: AbftMode::Off,
        ..SentinelConfig::default()
    });
    // Divisible and ragged (peeled) shapes.
    for (s, &(m, k, n)) in [(30usize, 20usize, 22usize), (31, 21, 23), (12, 8, 10)]
        .iter()
        .enumerate()
    {
        let a = probe_mat(m, k, 2 * s as u64 + 1);
        let b = probe_mat(k, n, 2 * s as u64 + 2);
        let c_on = on.multiply(a.as_ref(), b.as_ref());
        let c_off = off.multiply(a.as_ref(), b.as_ref());
        assert_bitwise_eq(&c_on, &c_off, "ABFT on vs off");
    }
    let h = on.health();
    assert!(h.abft_checks > 0, "checksum tier never ran: {h:?}");
    assert_eq!(h.abft_detected, 0, "false positive: {h:?}");
    assert_eq!(h.abft_repaired, 0, "{h:?}");
    assert_eq!(h.abft_escalations, 0, "{h:?}");
    assert_eq!(h.demotions, 0, "false-positive demotion: {h:?}");
    let h_off = off.health();
    assert_eq!(h_off.abft_checks, 0, "Off mode must not check: {h_off:?}");
}

#[test]
fn abft_counters_merge_and_round_trip_through_guard_state() {
    let _g = lock();
    let guard = GuardedApaMatmul::new(catalog::bini322());
    let a = probe_mat(12, 8, 91);
    let b = probe_mat(8, 10, 92);
    for _ in 0..3 {
        guard.multiply(a.as_ref(), b.as_ref());
    }
    let h = guard.health();
    assert!(h.abft_checks > 0);

    // merge() accumulates the ABFT counters like every other field.
    let mut merged = apa_matmul::HealthStats::default();
    merged.merge(&h);
    merged.merge(&h);
    assert_eq!(merged.abft_checks, 2 * h.abft_checks);

    // export/restore round-trips them.
    let snapshot = guard.export_state();
    assert_eq!(snapshot.stats.abft_checks, h.abft_checks);
    let fresh = GuardedApaMatmul::new(catalog::bini322());
    fresh.restore_state(&snapshot).unwrap();
    assert_eq!(fresh.health().abft_checks, h.abft_checks);
}

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use apa_matmul::fault::{self, Fault, FaultKind, FlipTarget};

    /// Drive one guard through a bit-flip drill: arm `kind` at guard
    /// call `at_call`, run `calls` multiplies, return (guard, outputs).
    fn drill(
        sentinel: SentinelConfig,
        target: FlipTarget,
        index: usize,
        bit: u32,
        at_call: u64,
        calls: u64,
        shape: (usize, usize, usize),
    ) -> (GuardedApaMatmul, Vec<Mat<f32>>) {
        let (m, k, n) = shape;
        let guard = GuardedApaMatmul::new(catalog::bini322()).sentinel(sentinel);
        fault::install(&[Fault {
            at_call,
            kind: FaultKind::BitFlip { target, index, bit },
        }]);
        let a = probe_mat(m, k, 171);
        let b = probe_mat(k, n, 172);
        let outs = (0..calls)
            .map(|_| guard.multiply(a.as_ref(), b.as_ref()))
            .collect();
        fault::clear();
        (guard, outs)
    }

    fn clean_reference(
        sentinel: SentinelConfig,
        calls: u64,
        shape: (usize, usize, usize),
    ) -> Vec<Mat<f32>> {
        let (m, k, n) = shape;
        fault::clear();
        let guard = GuardedApaMatmul::new(catalog::bini322()).sentinel(sentinel);
        let a = probe_mat(m, k, 171);
        let b = probe_mat(k, n, 172);
        (0..calls)
            .map(|_| guard.multiply(a.as_ref(), b.as_ref()))
            .collect()
    }

    #[test]
    fn exponent_flip_is_repaired_in_place_with_no_demotion() {
        let _g = lock();
        let shape = (30, 20, 22);
        let sent = SentinelConfig::default();
        for target in [FlipTarget::PackA, FlipTarget::PackB, FlipTarget::Output] {
            let fired_before = apa_gemm::abft::sdc::injected();
            let (guard, outs) = drill(sent, target, 7, 30, 1, 3, shape);
            assert_eq!(
                apa_gemm::abft::sdc::injected(),
                fired_before + 1,
                "{target:?}: flip did not fire"
            );
            let clean = clean_reference(sent, 3, shape);
            for (i, (c, r)) in outs.iter().zip(&clean).enumerate() {
                assert_bitwise_eq(c, r, &format!("{target:?} call {i}"));
            }
            let h = guard.health();
            assert!(h.abft_detected >= 1, "{target:?}: {h:?}");
            assert!(h.abft_repaired >= 1, "{target:?}: {h:?}");
            assert_eq!(h.abft_escalations, 0, "{target:?}: {h:?}");
            assert_eq!(h.demotions, 0, "repair must not demote: {target:?}: {h:?}");
            assert_eq!(h.probe_failures, 0, "{target:?}: {h:?}");
            assert_eq!(guard.current_rung(shape.0, shape.1, shape.2), Some(0));
        }
    }

    #[test]
    fn escalate_after_one_offense_demotes_the_shape() {
        let _g = lock();
        let shape = (30, 20, 22);
        let sent = SentinelConfig {
            abft: AbftMode::On {
                slack: apa_gemm::DEFAULT_SLACK,
                escalate_after: 1,
            },
            ..SentinelConfig::default()
        };
        let (guard, outs) = drill(sent, FlipTarget::Output, 3, 30, 0, 1, shape);
        // The call lands on a deeper rung (different bits than rung 0 by
        // design) but the returned product is clean and accurate.
        let a = probe_mat(shape.0, shape.1, 171);
        let b = probe_mat(shape.1, shape.2, 172);
        let expect = apa_gemm::matmul_naive(a.as_ref(), b.as_ref());
        let err = outs[0].rel_frobenius_error(&expect);
        assert!(err < 5e-3, "escalated call output err {err}");
        let h = guard.health();
        assert!(h.abft_detected >= 1, "{h:?}");
        assert_eq!(h.abft_escalations, 1, "{h:?}");
        assert!(h.demotions >= 1, "escalation must demote: {h:?}");
        let rung = guard.current_rung(shape.0, shape.1, shape.2).unwrap();
        assert!(rung >= 1, "shape should sit on a demoted rung, got {rung}");
    }

    #[test]
    fn repaired_offense_streak_below_threshold_never_escalates() {
        let _g = lock();
        let shape = (30, 20, 22);
        // Default escalate_after = 3; two offenses stay invisible to the
        // ladder, and the clean call in between resets the streak.
        let guard = GuardedApaMatmul::new(catalog::bini322());
        let a = probe_mat(30, 20, 171);
        let b = probe_mat(20, 22, 172);
        fault::install(&[
            Fault {
                at_call: 0,
                kind: FaultKind::BitFlip {
                    target: FlipTarget::Output,
                    index: 11,
                    bit: 30,
                },
            },
            Fault {
                at_call: 2,
                kind: FaultKind::BitFlip {
                    target: FlipTarget::Output,
                    index: 11,
                    bit: 30,
                },
            },
        ]);
        for _ in 0..4 {
            guard.multiply(a.as_ref(), b.as_ref());
        }
        fault::clear();
        let h = guard.health();
        assert!(h.abft_detected >= 2, "{h:?}");
        assert_eq!(h.abft_escalations, 0, "{h:?}");
        assert_eq!(h.demotions, 0, "{h:?}");
        assert_eq!(guard.current_rung(shape.0, shape.1, shape.2), Some(0));
    }
}
