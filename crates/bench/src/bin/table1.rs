//! Table 1 — properties of the APA algorithms.
//!
//! Paper columns: reference, dims, rank, ideal speedup, σ, φ, predicted
//! single-precision error (2^(−dσ/(σ+φ)), d = 23, 1 recursive step). Every
//! value here is *computed* from the algorithm's coefficients (σ via the
//! Brent validator, φ from the negative λ-degrees), not transcribed.
//!
//! Usage: `cargo run --release -p apa-bench --bin table1 [--all]`
//!   --all   include non-paper entries (winograd, fast422, the Bini cube)

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::{catalog, error_model};

fn main() {
    let args = Args::parse();
    banner(
        "Table 1: APA algorithm properties (computed, not transcribed)",
        &[
            "paper ranks use Smirnov's unpublished tensors; ours are derived",
            "constructions (DESIGN.md §5) — same shapes, slightly higher ranks.",
            "classical <2,2,2> row shown for the error baseline, as in the paper.",
        ],
    );

    let mut algs = vec![catalog::classical(apa_core::Dims::new(2, 2, 2))];
    algs.extend(if args.flag("all") {
        catalog::all()
    } else {
        catalog::paper_lineup()
    });

    let mut rows = Vec::new();
    for alg in &algs {
        let row = error_model::table1_row(alg);
        rows.push(vec![
            row.name.clone(),
            format!("<{},{},{}>", row.dims.0, row.dims.1, row.dims.2),
            row.rank.to_string(),
            format!("{:.0}%", row.speedup_pct),
            if row.exact {
                "-".into()
            } else {
                row.sigma.to_string()
            },
            row.phi.to_string(),
            format!("{:.1e}", row.error),
            row.nnz.to_string(),
        ]);
    }

    print_table(
        &[
            "algorithm",
            "dims",
            "rank",
            "speedup",
            "sigma",
            "phi",
            "error(d=23,s=1)",
            "nnz",
        ],
        &rows,
    );
    println!();
    print_csv(
        &[
            "algorithm",
            "dims",
            "rank",
            "speedup_pct",
            "sigma",
            "phi",
            "error",
            "nnz",
        ],
        &rows,
    );

    println!();
    println!(
        "paper reference rows: <3,2,2>:10 20% err 3.5e-4 | <4,2,2>:13 23% 4.9e-3 | \
         <3,3,2>:14 29% 1.9e-2 | <5,2,2>:16 25% 1.9e-2 | <3,3,3>:20 35% 1.0e-1 | \
         <3,3,3>:21 29% 4.9e-3 | <7,2,2>:22 27% 7.0e-2 | <4,4,2>:24 33% 1.9e-2 | \
         <4,3,3>:27 33% 1.9e-2 | <5,5,2>:37 35% 1.9e-2 | <4,4,4>:46 39% 1.9e-2 | \
         <5,5,5>:90 39% 1.9e-2"
    );
}
