//! Shared panic-isolated worker pools, one per requested width.
//!
//! The paper's experiments pin thread counts (1, 6, 12); the APA hybrid
//! strategy additionally needs "p workers each running sequential gemm"
//! and "all p workers inside one gemm" *on the same pool*. Pools are
//! created lazily and cached for the life of the process.
//!
//! Robustness contract (the crash-safety PR):
//!
//! * **Panic isolation** — every spawned task runs under `catch_unwind`;
//!   a panicking lane never kills its worker thread and never leaves a
//!   scope barrier hanging. [`WorkerPool::try_scope`] drains *all* spawned
//!   tasks (the lifetime-erasure safety argument requires it), then
//!   reports the first panic as a typed [`PoolError::WorkerPanicked`].
//! * **Idempotent, drop-safe shutdown** — [`WorkerPool::shutdown`] may be
//!   called any number of times, concurrently with in-flight scopes, and
//!   is invoked from `Drop`; it never hangs on a worker that already
//!   exited. A scope opened after shutdown degrades gracefully by running
//!   its tasks inline on the caller.
//! * **Rebuild** — [`rebuild`] replaces the cached pool for a width with a
//!   fresh one (the degradation ladder calls it after a lane panic, belt
//!   and braces: workers survive caught panics by construction).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Typed failure of pooled work: the only way pooled execution can fail
/// is a task panicking on a worker lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A task spawned into a scope panicked on a worker thread. `detail`
    /// carries the panic payload when it was a string.
    WorkerPanicked { detail: String },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { detail } => {
                write!(f, "worker lane panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

type Job = Box<dyn FnOnce() + Send + 'static>;

static POOLS: Mutex<Option<HashMap<usize, Arc<WorkerPool>>>> = Mutex::new(None);

/// One schedulable CPU the pool may pin a worker to: the logical CPU id
/// plus the physical (package, core) pair it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuSlot {
    /// Logical CPU index (`/sys/devices/system/cpu/cpuN`).
    pub cpu: usize,
    /// `topology/core_id` of that CPU.
    pub core: usize,
    /// `topology/physical_package_id` of that CPU.
    pub package: usize,
}

/// CPU topology read once from sysfs. `slots` holds one logical CPU per
/// *physical* core (hyperthread siblings deduplicated, lowest cpu id
/// kept), sorted by cpu id — the pinning order for pool workers.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Logical CPUs enumerated online.
    pub cpus_online: usize,
    /// One pinnable slot per physical core.
    pub slots: Vec<CpuSlot>,
    /// Distinct physical packages (sockets).
    pub packages: usize,
    /// NUMA nodes (`/sys/devices/system/node`), 1 when absent.
    pub numa_nodes: usize,
}

fn parse_sysfs_usize(path: &str) -> Option<usize> {
    std::fs::read_to_string(path)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
}

fn detect_topology() -> Topology {
    let mut cpus: Vec<usize> = Vec::new();
    if let Ok(entries) = std::fs::read_dir("/sys/devices/system/cpu") {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name.strip_prefix("cpu") {
                if let Ok(n) = idx.parse::<usize>() {
                    // Only CPUs with a topology directory are schedulable
                    // candidates (offline CPUs lack one).
                    if e.path().join("topology").is_dir() {
                        cpus.push(n);
                    }
                }
            }
        }
    }
    cpus.sort_unstable();
    let mut slots: Vec<CpuSlot> = Vec::new();
    let mut seen: Vec<(usize, usize)> = Vec::new();
    for &cpu in &cpus {
        let base = format!("/sys/devices/system/cpu/cpu{cpu}/topology");
        let core = parse_sysfs_usize(&format!("{base}/core_id")).unwrap_or(cpu);
        let package = parse_sysfs_usize(&format!("{base}/physical_package_id")).unwrap_or(0);
        if !seen.contains(&(package, core)) {
            seen.push((package, core));
            slots.push(CpuSlot { cpu, core, package });
        }
    }
    let mut packages: Vec<usize> = slots.iter().map(|s| s.package).collect();
    packages.sort_unstable();
    packages.dedup();
    let numa_nodes = std::fs::read_dir("/sys/devices/system/node")
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.strip_prefix("node")
                        .is_some_and(|s| s.parse::<usize>().is_ok())
                })
                .count()
        })
        .unwrap_or(0)
        .max(1);
    Topology {
        cpus_online: cpus.len(),
        slots,
        packages: packages.len().max(1),
        numa_nodes,
    }
}

/// The machine topology, detected once per process.
pub fn topology() -> &'static Topology {
    static TOPOLOGY: OnceLock<Topology> = OnceLock::new();
    TOPOLOGY.get_or_init(detect_topology)
}

/// `true` when `APA_NO_PIN` disables worker pinning (any non-empty value
/// except `0`).
fn pin_disabled() -> bool {
    std::env::var("APA_NO_PIN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Worker lanes successfully pinned / pins skipped (CPU not in our
/// affinity mask, kernel refusal, or unsupported platform) since process
/// start. Counts accumulate across pool builds.
static PINNED_LANES: AtomicUsize = AtomicUsize::new(0);
static PINS_SKIPPED: AtomicUsize = AtomicUsize::new(0);

/// Raw `sched_{get,set}affinity` syscalls. The workspace carries no libc
/// dependency, and these two calls are stable kernel ABI on x86_64, so a
/// two-instruction wrapper keeps pinning dependency-free.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sched {
    const SCHED_SETAFFINITY: u64 = 203;
    const SCHED_GETAFFINITY: u64 = 204;
    /// 16 × u64 = 1024 CPUs, the kernel's historical default mask size.
    pub const MASK_WORDS: usize = 16;

    /// # Safety
    /// `nr` must be a syscall taking (pid, len, ptr) with `ptr` valid for
    /// `len` bytes in the required direction.
    unsafe fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Affinity mask of the calling thread (pid 0), or `None` on failure.
    pub fn current_mask() -> Option<[u64; MASK_WORDS]> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: mask is writable for MASK_WORDS·8 bytes.
        let rc = unsafe {
            syscall3(
                SCHED_GETAFFINITY,
                0,
                (MASK_WORDS * 8) as u64,
                mask.as_mut_ptr() as u64,
            )
        };
        (rc > 0).then_some(mask)
    }

    /// Restrict the calling thread to `mask`; `true` on success.
    pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        // SAFETY: mask is readable for MASK_WORDS·8 bytes.
        let rc = unsafe {
            syscall3(
                SCHED_SETAFFINITY,
                0,
                (MASK_WORDS * 8) as u64,
                mask.as_ptr() as u64,
            )
        };
        rc == 0
    }
}

/// Pin the calling thread to `cpu`. Deliberately conservative: the pin is
/// attempted only when `cpu` is already in the thread's allowed mask, so
/// inside a cgroup/CI cpuset that excludes the CPU the call is a silent
/// no-op — pinning degrades to inert, never to an error.
fn pin_current_thread(cpu: usize) -> bool {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        if cpu >= sched::MASK_WORDS * 64 {
            return false;
        }
        let Some(allowed) = sched::current_mask() else {
            return false;
        };
        if allowed[cpu / 64] & (1u64 << (cpu % 64)) == 0 {
            return false;
        }
        let mut want = [0u64; sched::MASK_WORDS];
        want[cpu / 64] = 1u64 << (cpu % 64);
        sched::set_mask(&want)
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = cpu;
        false
    }
}

/// The thread budget "use the machine" callers should default to:
/// `APA_THREADS` when set to a positive integer, otherwise one worker per
/// physical core, and at least 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("APA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    topology().slots.len().max(1)
}

/// One-line topology/pinning summary alongside the dispatch and block
/// reports: CPU counts, package/NUMA layout, whether pinning is active and
/// how many lanes have been pinned (or had their pin skipped) so far.
pub fn topology_report() -> String {
    let t = topology();
    format!(
        "topology: cpus_online={} physical_cores={} packages={} numa_nodes={} \
         pinning={} pinned_lanes={} pins_skipped={}",
        t.cpus_online,
        t.slots.len(),
        t.packages,
        t.numa_nodes,
        if pin_disabled() {
            "off (APA_NO_PIN)"
        } else {
            "on"
        },
        PINNED_LANES.load(Ordering::Relaxed),
        PINS_SKIPPED.load(Ordering::Relaxed),
    )
}

/// A cached pool with exactly `threads` workers (≥ 1). If the cached pool
/// for this width was shut down, a fresh one transparently replaces it.
pub fn pool(threads: usize) -> Arc<WorkerPool> {
    let threads = threads.max(1);
    let mut guard = POOLS.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    let entry = map
        .entry(threads)
        .or_insert_with(|| Arc::new(WorkerPool::new(threads)));
    if entry.is_shut_down() {
        *entry = Arc::new(WorkerPool::new(threads));
    }
    entry.clone()
}

/// Replace the cached pool for `threads` with a freshly built one and shut
/// the old one down. Subsequent [`pool`] calls for this width get the new
/// pool; scopes still running on the old pool finish their work first.
pub fn rebuild(threads: usize) -> Arc<WorkerPool> {
    let threads = threads.max(1);
    let fresh = Arc::new(WorkerPool::new(threads));
    let old = {
        let mut guard = POOLS.lock();
        let map = guard.get_or_insert_with(HashMap::new);
        map.insert(threads, fresh.clone())
    };
    if let Some(old) = old {
        old.shutdown();
    }
    fresh
}

struct PoolInner {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// A fixed-width worker pool running scoped fork-join work.
pub struct WorkerPool {
    threads: usize,
    inner: Mutex<PoolInner>,
}

impl WorkerPool {
    /// Spawn `threads` workers (≥ 1) sharing one job queue. Unless
    /// `APA_NO_PIN` is set, worker `i` pins itself to physical core
    /// `i mod cores` (distinct cores first, hyperthreads never doubled up
    /// until the core list wraps). Shared packed arenas are first-touched
    /// by the worker that claims each panel, so with pinning the pages
    /// land on the consuming worker's NUMA node without any explicit
    /// placement call.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let pin = !pin_disabled();
        let slots = &topology().slots;
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(StdMutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                let pin_cpu = if pin && !slots.is_empty() {
                    Some(slots[i % slots.len()].cpu)
                } else {
                    None
                };
                std::thread::Builder::new()
                    .name(format!("apa-gemm-{threads}-{i}"))
                    .spawn(move || {
                        if let Some(cpu) = pin_cpu {
                            if pin_current_thread(cpu) {
                                PINNED_LANES.fetch_add(1, Ordering::Relaxed);
                            } else {
                                PINS_SKIPPED.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        worker_loop(&rx)
                    })
                    .expect("worker thread spawn cannot fail")
            })
            .collect();
        Self {
            threads,
            inner: Mutex::new(PoolInner {
                sender: Some(sender),
                workers,
            }),
        }
    }

    /// Worker count the pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// True once [`Self::shutdown`] has run (or `Drop` did).
    pub fn is_shut_down(&self) -> bool {
        self.inner.lock().sender.is_none()
    }

    /// Stop accepting work, drain the queue and join the workers.
    /// Idempotent: extra calls (including from `Drop`) are no-ops, and a
    /// worker that already exited never makes this hang — `join` on a
    /// finished thread returns immediately and a panicked worker's `Err`
    /// is discarded.
    pub fn shutdown(&self) {
        let workers = {
            let mut inner = self.inner.lock();
            inner.sender = None; // closing the channel ends worker_loop
            std::mem::take(&mut inner.workers)
        };
        for handle in workers {
            let _ = handle.join();
        }
    }

    /// Scoped fork-join: tasks spawned inside `f` may borrow from the
    /// enclosing stack; the call returns only after every task finished.
    /// A lane panic is re-raised on the caller **after** the barrier (so
    /// no task is left running) with the [`PoolError`] message;
    /// [`Self::try_scope`] is the non-panicking variant.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        match self.try_scope(f) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::scope`] returning a lane panic as a typed
    /// [`PoolError::WorkerPanicked`] instead of re-panicking. All spawned
    /// tasks are always run to completion before this returns — on
    /// success, on lane panic, and even when `f` itself unwinds — so the
    /// borrow-erasure below stays sound and a dead lane can never leave
    /// the barrier (or a later caller) hanging.
    pub fn try_scope<'env, F, R>(&self, f: F) -> Result<R, PoolError>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            state: Arc::new(ScopeState::default()),
            sender: self.inner.lock().sender.clone(),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.wait_all();
        let lane_panic = scope.state.take_panic();
        match result {
            // The caller's own closure unwound: propagate its panic, but
            // only now that every spawned task has finished.
            Err(payload) => resume_unwind(payload),
            Ok(_) if lane_panic.is_some() => Err(PoolError::WorkerPanicked {
                detail: lane_panic.unwrap(),
            }),
            Ok(r) => Ok(r),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &StdMutex<Receiver<Job>>) {
    loop {
        // Release the receiver lock before running the job so lanes run
        // concurrently. Jobs are panic-wrapped at spawn; the only way out
        // of this loop is the channel closing on shutdown.
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => break,
        }
    }
}

#[derive(Default)]
struct ScopeBarrier {
    pending: usize,
    panic: Option<String>,
}

#[derive(Default)]
struct ScopeState {
    barrier: StdMutex<ScopeBarrier>,
    all_done: Condvar,
}

impl ScopeState {
    fn add_task(&self) {
        self.barrier
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending += 1;
    }

    fn finish_task(&self) {
        let mut b = self.barrier.lock().unwrap_or_else(PoisonError::into_inner);
        b.pending -= 1;
        if b.pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn note_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let detail = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut b = self.barrier.lock().unwrap_or_else(PoisonError::into_inner);
        b.panic.get_or_insert(detail);
    }

    fn wait_all(&self) {
        let mut b = self.barrier.lock().unwrap_or_else(PoisonError::into_inner);
        while b.pending > 0 {
            b = self
                .all_done
                .wait(b)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_panic(&self) -> Option<String> {
        self.barrier
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .panic
            .take()
    }
}

/// Decrements the barrier on drop, so even a panicking task (or a bug in
/// the wrapper) can never strand the scope's `wait_all`.
struct FinishGuard(Arc<ScopeState>);

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.0.finish_task();
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`] /
/// [`WorkerPool::try_scope`].
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    /// `None` once the pool is shut down — tasks then run inline.
    sender: Option<Sender<Job>>,
    /// Invariant over `'env`, like `std::thread::scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queue `f` on the pool. The closure receives a scope handle with the
    /// same spawning power (nested spawns join the same barrier).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        let state = self.state.clone();
        let sender = self.sender.clone();
        self.state.add_task();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _finish = FinishGuard(state.clone());
            let nested = Scope {
                state: state.clone(),
                sender,
                _env: PhantomData,
            };
            let run = AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                lane_fault::fire();
                f(&nested);
            });
            if let Err(payload) = catch_unwind(run) {
                state.note_panic(payload.as_ref());
            }
        });
        // SAFETY: the job only borrows data outliving 'env, and both
        // `scope` and `try_scope` block on `wait_all` before returning —
        // on every path, including caller and lane panics (FinishGuard) —
        // so no borrow in the job can outlive its referent.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        match &self.sender {
            // A send only fails if shutdown closed the channel after this
            // scope grabbed its sender; fall through to inline execution.
            Some(tx) => {
                if let Err(e) = tx.send(job) {
                    (e.0)();
                }
            }
            None => job(),
        }
    }
}

/// Deterministic lane-fault switches for crash drills (compiled only with
/// `--features fault-inject`). Arming is one-shot: the next task any pool
/// worker dequeues consumes the fault. Panics raised here are caught by
/// the task wrapper like any real lane panic.
#[cfg(feature = "fault-inject")]
pub mod lane_fault {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;

    /// Message of an injected lane panic (tests match on it).
    pub const INJECTED_PANIC: &str = "injected lane panic (fault-inject)";

    static PANIC_ARMED: AtomicBool = AtomicBool::new(false);
    static STALL_MS: AtomicU64 = AtomicU64::new(0);

    /// Make the next pooled task panic.
    pub fn arm_panic() {
        PANIC_ARMED.store(true, Ordering::SeqCst);
    }

    /// Make the next pooled task sleep `millis` before running.
    pub fn arm_stall(millis: u64) {
        STALL_MS.store(millis, Ordering::SeqCst);
    }

    /// Clear both switches (armed faults that never fired included).
    pub fn disarm() {
        PANIC_ARMED.store(false, Ordering::SeqCst);
        STALL_MS.store(0, Ordering::SeqCst);
    }

    pub(super) fn fire() {
        let stall = STALL_MS.swap(0, Ordering::SeqCst);
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        if PANIC_ARMED.swap(false, Ordering::SeqCst) {
            panic!("{INJECTED_PANIC}");
        }
    }
}

/// Degree of parallelism for a kernel invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Par {
    /// Run on the calling thread.
    Seq,
    /// Run on the cached pool with this many workers.
    Threads(usize),
}

impl Par {
    /// Worker count (1 for `Seq`).
    pub fn threads(self) -> usize {
        match self {
            Par::Seq => 1,
            Par::Threads(t) => t.max(1),
        }
    }

    /// Normalize: `Threads(0|1)` behaves as `Seq`.
    pub fn normalize(self) -> Par {
        match self {
            Par::Threads(t) if t <= 1 => Par::Seq,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn topology_names_distinct_physical_cores() {
        let t = topology();
        assert!(t.cpus_online >= 1);
        assert!(!t.slots.is_empty());
        assert!(t.slots.len() <= t.cpus_online);
        assert!(t.packages >= 1);
        assert!(t.numa_nodes >= 1);
        for (i, a) in t.slots.iter().enumerate() {
            for b in &t.slots[..i] {
                assert_ne!(
                    (a.package, a.core),
                    (b.package, b.core),
                    "hyperthread siblings must be deduplicated"
                );
            }
        }
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn topology_report_summarizes_the_machine() {
        let r = topology_report();
        assert!(r.contains("physical_cores="), "{r}");
        assert!(r.contains("pinning="), "{r}");
    }

    #[test]
    fn pool_is_cached_and_sized() {
        let p1 = pool(3);
        let p2 = pool(3);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.current_num_threads(), 3);
        assert_eq!(pool(0).current_num_threads(), 1);
    }

    #[test]
    fn par_normalization() {
        assert_eq!(Par::Threads(1).normalize(), Par::Seq);
        assert_eq!(Par::Threads(0).normalize(), Par::Seq);
        assert_eq!(Par::Threads(4).normalize(), Par::Threads(4));
        assert_eq!(Par::Seq.threads(), 1);
        assert_eq!(Par::Threads(6).threads(), 6);
    }

    #[test]
    fn scope_runs_borrowing_tasks() {
        let p = WorkerPool::new(2);
        let mut parts = vec![0usize; 4];
        p.scope(|s| {
            for (i, slot) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (0..=i * 10).sum());
            }
        });
        assert_eq!(parts, vec![0, 55, 210, 465]);
        p.shutdown();
    }

    #[test]
    fn lane_panic_is_typed_and_pool_survives() {
        let p = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let result = p.try_scope(|s| {
            s.spawn(|_| panic!("lane 0 exploded"));
            for _ in 0..3 {
                s.spawn(|_| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(
            result,
            Err(PoolError::WorkerPanicked {
                detail: "lane 0 exploded".to_string()
            })
        );
        // The barrier drained: sibling lanes all ran despite the panic.
        assert_eq!(done.load(Ordering::SeqCst), 3);
        // The same pool keeps working — no poisoned state, no dead worker.
        let ok = p.try_scope(|s| {
            s.spawn(|_| {
                done.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(ok, Ok(()));
        assert_eq!(done.load(Ordering::SeqCst), 13);
        p.shutdown();
    }

    #[test]
    fn scope_repanic_carries_the_lane_message() {
        let p = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| s.spawn(|_| panic!("boom on a lane")));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("worker lane panicked"), "{msg}");
        assert!(msg.contains("boom on a lane"), "{msg}");
        p.shutdown();
    }

    #[test]
    fn double_shutdown_is_idempotent() {
        let p = WorkerPool::new(3);
        p.scope(|s| s.spawn(|_| {}));
        p.shutdown();
        assert!(p.is_shut_down());
        p.shutdown(); // second call: no hang, no panic
        assert!(p.is_shut_down());
    }

    #[test]
    fn spawn_after_shutdown_runs_inline() {
        let p = WorkerPool::new(2);
        p.shutdown();
        let ran = AtomicUsize::new(0);
        let r = p.try_scope(|s| {
            s.spawn(|_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(r, Ok(()));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_while_busy_drains_and_returns() {
        // Shut down (as Drop would) while lanes are mid-task on another
        // thread: the queue drains, every job runs, and neither shutdown
        // nor the in-flight scope hangs or loses work.
        let p = Arc::new(WorkerPool::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        let (p2, done2) = (p.clone(), done.clone());
        let scope_thread = std::thread::spawn(move || {
            p2.scope(|s| {
                for _ in 0..6 {
                    let d = done2.clone();
                    s.spawn(move |_| {
                        std::thread::sleep(Duration::from_millis(5));
                        d.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        std::thread::sleep(Duration::from_millis(2));
        p.shutdown();
        scope_thread.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 6);
        assert!(p.is_shut_down());
    }

    #[test]
    fn rebuild_replaces_the_cached_pool() {
        let before = pool(5);
        let fresh = rebuild(5);
        assert!(!Arc::ptr_eq(&before, &fresh));
        assert!(before.is_shut_down());
        assert!(Arc::ptr_eq(&fresh, &pool(5)));
        // A shut-down cached pool is also replaced transparently.
        fresh.shutdown();
        let replaced = pool(5);
        assert!(!replaced.is_shut_down());
    }

    #[test]
    fn nested_spawns_join_the_same_barrier() {
        let p = WorkerPool::new(3);
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..3 {
                s.spawn(|inner| {
                    count.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(|_| {
                        count.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 33);
        p.shutdown();
    }
}
