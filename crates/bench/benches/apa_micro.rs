//! Criterion micro-benchmarks for the APA engine: per-algorithm one-step
//! multiplication vs the classical baseline, plus plan compilation.

use apa_core::catalog;
use apa_gemm::{gemm_st, Mat};
use apa_matmul::{ApaMatmul, ExecPlan, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn probe(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn bench_apa_vs_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("apa_one_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 768; // divisible by 2, 3, 4 — every base shape gets its fast path
    let a = probe(n, 1);
    let b = probe(n, 2);
    let mut out = Mat::<f32>::zeros(n, n);

    group.bench_function("classical", |bench| {
        bench.iter(|| gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut()));
    });
    for name in ["strassen", "bini322", "fast442", "fast444"] {
        let mm = ApaMatmul::new(catalog::by_name(name).unwrap()).strategy(Strategy::Seq);
        group.bench_with_input(BenchmarkId::new("apa", name), &name, |bench, _| {
            bench.iter(|| mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut()));
        });
    }
    group.finish();
}

fn bench_plan_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_compile");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for name in ["bini322", "fast444", "fast555"] {
        let alg = catalog::by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("compile", name), &name, |bench, _| {
            bench.iter(|| ExecPlan::compile(&alg, 1e-3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apa_vs_classical, bench_plan_compile);
criterion_main!(benches);
