//! Snap numerically discovered factors to exact rational coefficients and
//! re-verify them symbolically.
//!
//! ALS converges to factors that are *numerically* a decomposition; useful
//! algorithms have small rational coefficients (0, ±1, ±½, ±¼ dominate the
//! published tensors). `round_factors` snaps every entry to the nearest
//! value on that grid, builds a [`BilinearAlgorithm`] and runs the Brent
//! validator — only a symbolically exact result is returned.

use crate::als::AlsResult;
use crate::linalg::DMat;
use apa_core::{brent, BilinearAlgorithm, CoeffMatrix, Laurent};

/// The coefficient grid used for snapping.
pub const GRID: [f64; 9] = [0.0, 1.0, -1.0, 0.5, -0.5, 0.25, -0.25, 2.0, -2.0];

/// Snap a value to the nearest grid point.
pub fn snap(v: f64) -> f64 {
    let mut best = GRID[0];
    let mut dist = (v - GRID[0]).abs();
    for &g in &GRID[1..] {
        let d = (v - g).abs();
        if d < dist {
            dist = d;
            best = g;
        }
    }
    best
}

fn to_coeffs(m: &DMat) -> CoeffMatrix {
    let mut out = CoeffMatrix::zeros(m.rows, m.cols);
    for i in 0..m.rows {
        for t in 0..m.cols {
            let v = snap(m.at(i, t));
            if v != 0.0 {
                out.set(i, t, Laurent::constant(v));
            }
        }
    }
    out
}

/// Outcome of rounding a candidate decomposition.
#[derive(Debug)]
pub enum RoundOutcome {
    /// The snapped factors satisfy the Brent equations exactly.
    Exact(BilinearAlgorithm),
    /// Snapping destroyed the decomposition (residual too irrational).
    NotExact { brent_error: String },
}

/// Round an [`AlsResult`] and verify it.
pub fn round_and_verify(result: &AlsResult, name: &str) -> RoundOutcome {
    let alg = BilinearAlgorithm::new(
        name,
        result.dims,
        to_coeffs(&result.u),
        to_coeffs(&result.v),
        to_coeffs(&result.w),
    );
    match brent::validate(&alg) {
        Ok(report) if report.exact => RoundOutcome::Exact(alg),
        Ok(_) => RoundOutcome::NotExact {
            brent_error: "rounded factors are APA, not exact".into(),
        },
        Err(e) => RoundOutcome::NotExact {
            brent_error: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{als_from, AlsConfig};
    use apa_core::{catalog, Dims};

    #[test]
    fn snap_hits_grid_points() {
        assert_eq!(snap(0.02), 0.0);
        assert_eq!(snap(0.97), 1.0);
        assert_eq!(snap(-1.04), -1.0);
        assert_eq!(snap(0.52), 0.5);
        assert_eq!(snap(-0.26), -0.25);
        assert_eq!(snap(1.9), 2.0);
    }

    #[test]
    fn roundtrip_strassen_through_als_and_rounding() {
        // Perturb Strassen, re-polish with ALS, round, verify: the full
        // discovery pipeline must reproduce a valid exact rank-7 rule.
        let d = Dims::new(2, 2, 2);
        let alg = catalog::strassen();
        let dense = |m: &apa_core::CoeffMatrix, rows: usize| {
            DMat::from_fn(rows, 7, |i, t| {
                m.get(i, t).eval(0.0) + (((i * 13 + t * 7) % 11) as f64 - 5.0) * 0.005
            })
        };
        let config = AlsConfig {
            reg: 1e-6,
            max_iters: 300,
            ..AlsConfig::default()
        };
        let result = als_from(
            d,
            dense(&alg.u, 4),
            dense(&alg.v, 4),
            dense(&alg.w, 4),
            &config,
        );
        assert!(result.residual < 1e-7, "residual {}", result.residual);
        match round_and_verify(&result, "rediscovered-strassen") {
            RoundOutcome::Exact(found) => {
                assert_eq!(found.rank(), 7);
                assert_eq!(found.dims, d);
            }
            RoundOutcome::NotExact { brent_error } => {
                panic!("rounding failed: {brent_error}")
            }
        }
    }

    #[test]
    fn garbage_factors_do_not_round_to_valid_algorithm() {
        let d = Dims::new(2, 2, 2);
        let result = AlsResult {
            dims: d,
            rank: 3,
            u: DMat::from_fn(4, 3, |i, t| ((i + t) % 3) as f64 * 0.4),
            v: DMat::from_fn(4, 3, |i, t| ((i * t) % 2) as f64),
            w: DMat::from_fn(4, 3, |i, t| (i as f64 - t as f64) * 0.3),
            residual: 1.0,
            iters: 0,
            converged: false,
        };
        assert!(matches!(
            round_and_verify(&result, "junk"),
            RoundOutcome::NotExact { .. }
        ));
    }
}
