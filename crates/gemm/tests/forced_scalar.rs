//! `APA_FORCE_SCALAR_KERNEL` must pin dispatch to the portable scalar
//! tier — the escape hatch for masked/buggy SIMD and the lever
//! `scripts/tier1.sh` uses to run the whole suite through the scalar
//! path. Lives in its own integration-test binary because tier selection
//! is a process-wide `OnceLock`: the env var has to be set before the
//! first kernel use, and nothing else in this process may have touched
//! dispatch first.

use apa_gemm::{gemm_st, kernel_spec, matmul_naive, selected_tier, KernelTier, Mat};

#[test]
fn force_scalar_env_pins_dispatch_and_stays_correct() {
    // Set before the first dispatch query anywhere in this process; this
    // is the only test in this binary, so nothing has raced dispatch.
    std::env::set_var("APA_FORCE_SCALAR_KERNEL", "1");

    assert_eq!(selected_tier(), KernelTier::Scalar);
    let spec = kernel_spec::<f32>();
    assert_eq!(spec.tier, KernelTier::Scalar);

    // The scalar path must still compute a correct product.
    let (m, k, n) = (37, 29, 41);
    let a = Mat::<f32>::from_fn(m, k, |i, j| ((i * 7 + j) % 13) as f32 * 0.1 - 0.5);
    let b = Mat::<f32>::from_fn(k, n, |i, j| ((i + 11 * j) % 17) as f32 * 0.1 - 0.7);
    let mut c = Mat::<f32>::zeros(m, n);
    gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    let want = matmul_naive(a.as_ref(), b.as_ref());
    for i in 0..m {
        for j in 0..n {
            assert!(
                (c.at(i, j) - want.at(i, j)).abs() <= 1e-4,
                "forced-scalar gemm wrong at ({i},{j})"
            );
        }
    }
}
