//! Softmax + cross-entropy, fused for a numerically stable gradient.

use apa_gemm::Mat;

/// Row-wise softmax (stable: shifts by the row max).
pub fn softmax_rows(logits: &Mat<f32>) -> Mat<f32> {
    let (r, c) = (logits.rows(), logits.cols());
    let mut out = Mat::zeros(r, c);
    for i in 0..r {
        let row = &logits.as_slice()[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let orow = &mut out.as_mut_slice()[i * c..(i + 1) * c];
        for (o, &v) in orow.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in orow {
            *o *= inv;
        }
    }
    out
}

/// Mean cross-entropy of softmax(logits) against integer labels, plus the
/// gradient w.r.t. the logits: `(softmax − onehot) / batch`.
pub fn softmax_cross_entropy(logits: &Mat<f32>, labels: &[u8]) -> (f32, Mat<f32>) {
    let batch = logits.rows();
    assert_eq!(batch, labels.len(), "label count mismatch");
    let classes = logits.cols();
    let mut probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        let l = label as usize;
        assert!(l < classes, "label {l} out of range (classes = {classes})");
        let p = probs.at(i, l).max(1e-12);
        loss -= (p as f64).ln();
        let row = &mut probs.as_mut_slice()[i * classes..(i + 1) * classes];
        row[l] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_batch;
        }
    }
    ((loss / batch as f64) as f32, probs)
}

/// Classification accuracy of logits (argmax) against labels.
pub fn accuracy(logits: &Mat<f32>, labels: &[u8]) -> f64 {
    let mut correct = 0usize;
    let c = logits.cols();
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap();
        if pred == label as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.5 - 2.0);
        let p = softmax_rows(&logits);
        for i in 0..3 {
            let s: f32 = (0..4).map(|j| p.at(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-5);
            for j in 0..4 {
                assert!(p.at(i, j) > 0.0);
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        let (pa, pb) = (softmax_rows(&a), softmax_rows(&b));
        for j in 0..3 {
            assert!((pa.at(0, j) - pb.at(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Mat::from_vec(2, 3, vec![10.0, -5.0, -5.0, -5.0, 10.0, -5.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Mat::from_fn(2, 5, |i, j| ((i + j * 2) % 3) as f32);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 4]);
        for i in 0..2 {
            let s: f32 = (0..5).map(|j| grad.at(i, j)).sum();
            assert!(s.abs() < 1e-6);
        }
        // True-class entries are negative, others positive.
        assert!(grad.at(0, 1) < 0.0);
        assert!(grad.at(0, 0) > 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Mat::from_vec(1, 3, vec![0.3, -0.2, 0.1]);
        let labels = [2u8];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for j in 0..3 {
            let orig = logits.at(0, j);
            logits.set(0, j, orig + eps);
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits.set(0, j, orig - eps);
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits.set(0, j, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.at(0, j) - numeric).abs() < 1e-3,
                "grad[{j}]: {} vs {numeric}",
                grad.at(0, j)
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Mat::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
    }
}
