//! Panel packing for the blocked GEMM (BLIS-style).
//!
//! The microkernel streams through *packed* panels: `A` blocks are
//! rearranged into MR-row slivers stored k-major (`ap[p·MR + i]`), `B`
//! blocks into NR-column slivers (`bp[p·NR + j]`). Ragged edges are
//! zero-padded so the kernel never branches on tile size.
//!
//! Since the register-tile shape is chosen at runtime by the kernel
//! dispatch ([`crate::kernel`]), the packers take the sliver height/width
//! (`mr`/`nr`) as a parameter — callers pass the active
//! [`crate::kernel::KernelSpec`]'s shape so panels always match the kernel
//! that will consume them.

use crate::matrix::MatRef;
use crate::scalar::Scalar;

/// Maximum operand-term arity the combined packers handle without falling
/// back to a heap-allocated staging list. Matches the executor's inline
/// term budget with headroom.
pub const MAX_PACK_TERMS: usize = 32;

/// Size `buf` to `len` elements without a full zero sweep: a grow
/// zero-fills only because `resize` must, a same-size reuse leaves stale
/// interior values that the caller overwrites element-by-element. Callers
/// must explicitly zero any pad region they do not write.
#[inline]
fn size_panel<T: Scalar>(buf: &mut Vec<T>, len: usize) {
    if buf.len() != len {
        buf.clear();
        buf.resize(len, T::ZERO);
    }
}

/// ABFT checksum accumulators fused into a pack sweep: per-`p` sums and
/// abs-sums (in f64) of the block being packed, taken from the source
/// reads so later corruption of the packed panel stays detectable.
pub(crate) type PackSums<'s> = (&'s mut [f64], &'s mut [f64]);

/// Clear-and-zero `sum`/`mag` to length `kc`, reborrowed as [`PackSums`].
#[inline]
fn prep_sums<'s>(sum: &'s mut Vec<f64>, mag: &'s mut Vec<f64>, kc: usize) -> PackSums<'s> {
    sum.clear();
    sum.resize(kc, 0.0);
    mag.clear();
    mag.resize(kc, 0.0);
    (&mut sum[..], &mut mag[..])
}

/// Pack an `mc × kc` block of `A` into `mr`-row slivers.
///
/// Output layout: sliver `s` (rows `s·mr .. s·mr+mr`, zero-padded past
/// `mc`) occupies `kc·mr` consecutive elements; within a sliver the layout
/// is k-major: element `(i, p)` is at `p·mr + i`.
pub fn pack_a<T: Scalar>(a: MatRef<'_, T>, buf: &mut Vec<T>, mr: usize) {
    let (mc, kc) = (a.rows(), a.cols());
    let slivers = mc.div_ceil(mr);
    size_panel(buf, slivers * kc * mr);
    for s in 0..slivers {
        let base = s * kc * mr;
        let i0 = s * mr;
        let rows = mr.min(mc - i0);
        for i in 0..rows {
            for (p, &v) in a.row(i0 + i).iter().enumerate() {
                buf[base + p * mr + i] = v;
            }
        }
        zero_a_pad(buf, base, kc, mr, rows);
    }
}

/// Zero the pad rows (`rows..MR`) of one A sliver — the only region the
/// interior writes never touch.
#[inline]
fn zero_a_pad<T: Scalar>(buf: &mut [T], base: usize, kc: usize, mr: usize, rows: usize) {
    if rows < mr {
        for p in 0..kc {
            buf[base + p * mr + rows..base + p * mr + mr].fill(T::ZERO);
        }
    }
}

/// Pack a `kc × nc` block of `B` into `nr`-column slivers.
///
/// Output layout: sliver `s` (columns `s·nr .. s·nr+nr`, zero-padded past
/// `nc`) occupies `kc·nr` consecutive elements; within a sliver element
/// `(p, j)` is at `p·nr + j`.
pub fn pack_b<T: Scalar>(b: MatRef<'_, T>, buf: &mut Vec<T>, nr: usize) {
    pack_b_sums(b, buf, nr, None);
}

/// [`pack_b`] plus fused ABFT row sums: `sum[p] = Σ_j B[p, j]` and
/// `mag[p] = Σ_j |B[p, j]|`, accumulated in 8-wide vector lanes from the
/// source values during the same sweep that writes the panel — this is
/// the only per-element ABFT cost on the hot path, so it must stay a few
/// vector ops per cache line.
pub(crate) fn pack_b_with_sums<T: Scalar>(
    b: MatRef<'_, T>,
    buf: &mut Vec<T>,
    nr: usize,
    sum: &mut Vec<f64>,
    mag: &mut Vec<f64>,
) {
    let kc = b.rows();
    pack_b_sums(b, buf, nr, Some(prep_sums(sum, mag, kc)));
}

fn pack_b_sums<T: Scalar>(
    b: MatRef<'_, T>,
    buf: &mut Vec<T>,
    nr: usize,
    sums: Option<PackSums<'_>>,
) {
    let (kc, nc) = (b.rows(), b.cols());
    let slivers = nc.div_ceil(nr);
    size_panel(buf, slivers * kc * nr);
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::hardware_fma_enabled() {
        // SAFETY: avx2+fma presence was verified at runtime.
        unsafe { pack_b_sweep_fma(b, buf, nr, nc, kc, sums) };
        return;
    }
    pack_b_sweep(b, buf, nr, nc, kc, sums);
}

/// The row sweep of [`pack_b`]; same dispatch story as
/// [`pack_a_combined_sweep`] — the `_fma` twin only changes codegen
/// (vectorizing the checksum lanes), never the IEEE-754 results.
#[inline(always)]
fn pack_b_sweep<T: Scalar>(
    b: MatRef<'_, T>,
    buf: &mut [T],
    nr: usize,
    nc: usize,
    kc: usize,
    mut sums: Option<PackSums<'_>>,
) {
    let slivers = nc.div_ceil(nr);
    for p in 0..kc {
        let brow = b.row(p);
        for s in 0..slivers {
            let base = s * kc * nr + p * nr;
            let j0 = s * nr;
            let cols = nr.min(nc - j0);
            buf[base..base + cols].copy_from_slice(&brow[j0..j0 + cols]);
            buf[base + cols..base + nr].fill(T::ZERO);
        }
        if let Some((sum, mag)) = &mut sums {
            let (rs, ra) = crate::abft::row_sum_abs_fast(&brow[..nc]);
            sum[p] = rs;
            mag[p] = ra;
        }
    }
}

/// # Safety
/// CPU must support avx2+fma (see [`crate::kernel::hardware_fma_enabled`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pack_b_sweep_fma<T: Scalar>(
    b: MatRef<'_, T>,
    buf: &mut [T],
    nr: usize,
    nc: usize,
    kc: usize,
    sums: Option<PackSums<'_>>,
) {
    pack_b_sweep(b, buf, nr, nc, kc, sums)
}

/// Pack the `mc × kc` block `Σ coeff_t · A_t` into MR-row slivers, forming
/// the linear combination *during* the pack sweep (write-once into the
/// panel; no intermediate S buffer is ever materialized).
///
/// Panel layout and zero padding are identical to [`pack_a`]. Per element
/// the combination is evaluated with exactly the mul_add chain
/// [`crate::add::combine`] uses, so `pack_a_combined(terms)` is bitwise
/// equal to `combine`-then-`pack_a`.
///
/// All sources must share one shape; `terms` must be non-empty.
pub fn pack_a_combined<T: Scalar>(terms: &[(T, MatRef<'_, T>)], buf: &mut Vec<T>, mr: usize) {
    assert!(!terms.is_empty(), "pack_a_combined needs at least one term");
    let (mc, kc) = (terms[0].1.rows(), terms[0].1.cols());
    for (_, src) in terms {
        assert_eq!((src.rows(), src.cols()), (mc, kc), "source shape mismatch");
    }
    let slivers = mc.div_ceil(mr);
    size_panel(buf, slivers * kc * mr);
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::hardware_fma_enabled() {
        // SAFETY: avx2+fma presence was verified at runtime.
        unsafe { pack_a_combined_sweep_fma(terms, buf, mr, mc, kc) };
        return;
    }
    pack_a_combined_sweep(terms, buf, mr, mc, kc);
}

/// The sliver sweep of [`pack_a_combined`]. Kept monomorphic over the
/// dispatch decision: the `_fma` twin runs the identical code inside an
/// `avx2,fma` target-feature scope so the `mul_add` chains compile to FMA
/// vector code instead of per-element libm calls. Same IEEE-754 results.
#[inline(always)]
fn pack_a_combined_sweep<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut [T],
    mr: usize,
    mc: usize,
    kc: usize,
) {
    let slivers = mc.div_ceil(mr);
    for s in 0..slivers {
        let base = s * kc * mr;
        let i0 = s * mr;
        let rows = mr.min(mc - i0);
        for i in 0..rows {
            combined_row_strided(terms, i0 + i, &mut buf[base + i..], mr, kc);
        }
        zero_a_pad(buf, base, kc, mr, rows);
    }
}

/// # Safety
/// CPU must support avx2+fma (see [`crate::kernel::hardware_fma_enabled`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pack_a_combined_sweep_fma<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut [T],
    mr: usize,
    mc: usize,
    kc: usize,
) {
    pack_a_combined_sweep(terms, buf, mr, mc, kc)
}

/// Pack the `kc × nc` block `Σ coeff_t · B_t` into NR-column slivers,
/// forming the combination during the pack sweep. Layout, padding and
/// bitwise-vs-`combine` guarantees mirror [`pack_a_combined`] /
/// [`pack_b`].
pub fn pack_b_combined<T: Scalar>(terms: &[(T, MatRef<'_, T>)], buf: &mut Vec<T>, nr: usize) {
    assert!(!terms.is_empty(), "pack_b_combined needs at least one term");
    let (kc, nc) = (terms[0].1.rows(), terms[0].1.cols());
    for (_, src) in terms {
        assert_eq!((src.rows(), src.cols()), (kc, nc), "source shape mismatch");
    }
    let slivers = nc.div_ceil(nr);
    size_panel(buf, slivers * kc * nr);
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::hardware_fma_enabled() {
        // SAFETY: avx2+fma presence was verified at runtime.
        unsafe { pack_b_combined_sweep_fma(terms, buf, nr, nc, kc) };
        return;
    }
    pack_b_combined_sweep(terms, buf, nr, nc, kc);
}

/// [`pack_b_combined`] plus fused ABFT row sums of the **packed combined
/// values**: `sum[p] = Σ_j packed[p, j]` (f64 accumulation of the exact
/// f32/f64 values the kernel will consume) and `mag[p] = Σ_j |packed[p,
/// j]|`. Taking the checksums from the combined values rather than the
/// term sources keeps them exact with respect to the kernel's actual
/// input, so operand-combination rounding never enters the row residual,
/// and it rides the pack's own source reads — no second pass over B.
/// Corruption of the packed panel *after* this sweep (the ABFT fault
/// model) still diverges from the recorded sums and stays detectable.
///
/// The packed panel is bitwise identical to [`pack_b_combined`]'s: the
/// vector bodies replicate `combine`'s mul_add chains lane-wise.
pub(crate) fn pack_b_combined_with_sums<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut Vec<T>,
    nr: usize,
    sum: &mut Vec<f64>,
    mag: &mut Vec<f64>,
) {
    assert!(!terms.is_empty(), "pack_b_combined needs at least one term");
    assert!(terms.len() <= MAX_PACK_TERMS, "term arity over pack budget");
    let (kc, nc) = (terms[0].1.rows(), terms[0].1.cols());
    for (_, src) in terms {
        assert_eq!((src.rows(), src.cols()), (kc, nc), "source shape mismatch");
    }
    let slivers = nc.div_ceil(nr);
    size_panel(buf, slivers * kc * nr);
    let sums = prep_sums(sum, mag, kc);
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::hardware_fma_enabled() {
        use core::any::TypeId;
        if TypeId::of::<T>() == TypeId::of::<f32>() {
            // SAFETY: avx2+fma verified at runtime; T is f32 (same layout).
            unsafe {
                let terms =
                    &*(terms as *const [(T, MatRef<'_, T>)] as *const [(f32, MatRef<'_, f32>)]);
                let fbuf = std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut f32, buf.len());
                csimd::pack_b_combined_sums_f32(terms, fbuf, nr, nc, kc, sums);
            }
            return;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // SAFETY: avx2+fma verified at runtime; T is f64 (same layout).
            unsafe {
                let terms =
                    &*(terms as *const [(T, MatRef<'_, T>)] as *const [(f64, MatRef<'_, f64>)]);
                let fbuf = std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut f64, buf.len());
                csimd::pack_b_combined_sums_f64(terms, fbuf, nr, nc, kc, sums);
            }
            return;
        }
    }
    pack_b_combined_sweep_sums(terms, buf, nr, nc, kc, sums);
}

/// Portable fallback for [`pack_b_combined_with_sums`] (scalar kernel
/// tier / non-x86): the plain combined sweep plus a per-row read-back of
/// the just-written (L1-hot) segments. Packed values are identical to
/// [`pack_b_combined_sweep`]'s; only checksum speed differs.
fn pack_b_combined_sweep_sums<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut [T],
    nr: usize,
    nc: usize,
    kc: usize,
    sums: PackSums<'_>,
) {
    let (sum, mag) = sums;
    let slivers = nc.div_ceil(nr);
    for p in 0..kc {
        for s in 0..slivers {
            let base = s * kc * nr + p * nr;
            let j0 = s * nr;
            let cols = nr.min(nc - j0);
            combined_segment(terms, p, j0, &mut buf[base..base + cols]);
            buf[base + cols..base + nr].fill(T::ZERO);
        }
        let (mut rs, mut ra) = (0.0f64, 0.0f64);
        for s in 0..slivers {
            let base = s * kc * nr + p * nr;
            let cols = nr.min(nc - s * nr);
            for &v in &buf[base..base + cols] {
                let v = v.to_f64();
                rs += v;
                ra += v.abs();
            }
        }
        sum[p] = rs;
        mag[p] = ra;
    }
}

/// Hand-written AVX2+FMA bodies of [`pack_b_combined_with_sums`]. The
/// combine chains mirror [`combined_segment`] lane-wise (vector FMA has
/// the same single-rounding semantics as scalar `mul_add`), so the packed
/// panel stays bitwise equal across dispatch paths; the f64 checksum
/// lanes ride for free under the sweep's memory traffic.
#[cfg(target_arch = "x86_64")]
mod csimd {
    use super::{PackSums, MAX_PACK_TERMS};
    use crate::matrix::MatRef;
    use core::arch::x86_64::*;

    /// Overwrite-combine chain `Σ_{e in o..o+n} co[e]·row_e[j..j+8]` for
    /// `n ≤ 4`, innermost term multiplied then FMA'd outward — the exact
    /// chain shape of `combined_segment_small`.
    ///
    /// # Safety
    /// Caller verified avx2+fma; every `rp[e]` (`e < o + n`) must be
    /// readable for `j + 8` elements.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain8_f32(
        co: &[f32; MAX_PACK_TERMS],
        rp: &[*const f32; MAX_PACK_TERMS],
        o: usize,
        n: usize,
        j: usize,
    ) -> __m256 {
        let term = |e: usize| (_mm256_set1_ps(co[e]), _mm256_loadu_ps(rp[e].add(j)));
        let (c0, r0) = term(o);
        if n == 1 {
            return _mm256_mul_ps(c0, r0);
        }
        let (c1, r1) = term(o + 1);
        if n == 2 {
            return _mm256_fmadd_ps(c0, r0, _mm256_mul_ps(c1, r1));
        }
        let (c2, r2) = term(o + 2);
        if n == 3 {
            return _mm256_fmadd_ps(c0, r0, _mm256_fmadd_ps(c1, r1, _mm256_mul_ps(c2, r2)));
        }
        let (c3, r3) = term(o + 3);
        _mm256_fmadd_ps(
            c0,
            r0,
            _mm256_fmadd_ps(c1, r1, _mm256_fmadd_ps(c2, r2, _mm256_mul_ps(c3, r3))),
        )
    }

    /// Full-arity combined segment (8 f32 lanes), chunked ≤4 exactly like
    /// `combined_segment` / `accumulate_segment_small`.
    ///
    /// # Safety
    /// As [`chain8_f32`], for all `t` terms.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn combine8_f32(
        co: &[f32; MAX_PACK_TERMS],
        rp: &[*const f32; MAX_PACK_TERMS],
        t: usize,
        j: usize,
    ) -> __m256 {
        let mut v = chain8_f32(co, rp, 0, t.min(4), j);
        let mut o = 4;
        while o < t {
            let n = (t - o).min(4);
            if n == 1 {
                v = _mm256_fmadd_ps(_mm256_set1_ps(co[o]), _mm256_loadu_ps(rp[o].add(j)), v);
            } else {
                v = _mm256_add_ps(v, chain8_f32(co, rp, o, n, j));
            }
            o += 4;
        }
        v
    }

    /// Scalar one-column combine with the identical mul_add chains, for
    /// the `nc % 8` tail.
    ///
    /// # Safety
    /// Every `rp[e]` must be readable at offset `j`.
    unsafe fn combine1_f32(
        co: &[f32; MAX_PACK_TERMS],
        rp: &[*const f32; MAX_PACK_TERMS],
        t: usize,
        j: usize,
    ) -> f32 {
        let x = |e: usize| *rp[e].add(j);
        let chain = |o: usize, n: usize| match n {
            1 => co[o] * x(o),
            2 => co[o].mul_add(x(o), co[o + 1] * x(o + 1)),
            3 => co[o].mul_add(x(o), co[o + 1].mul_add(x(o + 1), co[o + 2] * x(o + 2))),
            _ => co[o].mul_add(
                x(o),
                co[o + 1].mul_add(x(o + 1), co[o + 2].mul_add(x(o + 2), co[o + 3] * x(o + 3))),
            ),
        };
        let mut v = chain(0, t.min(4));
        let mut o = 4;
        while o < t {
            let n = (t - o).min(4);
            if n == 1 {
                v = co[o].mul_add(x(o), v);
            } else {
                v += chain(o, n);
            }
            o += 4;
        }
        v
    }

    /// # Safety
    /// CPU must support avx2+fma; `nr` must be a multiple of 8; `buf`
    /// must hold `nc.div_ceil(nr)·kc·nr` elements; `sum`/`mag` length
    /// `kc`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pack_b_combined_sums_f32(
        terms: &[(f32, MatRef<'_, f32>)],
        buf: &mut [f32],
        nr: usize,
        nc: usize,
        kc: usize,
        sums: PackSums<'_>,
    ) {
        debug_assert_eq!(nr % 8, 0);
        let (sum, mag) = sums;
        let t = terms.len();
        let mut co = [0.0f32; MAX_PACK_TERMS];
        for (e, (c, _)) in terms.iter().enumerate() {
            co[e] = *c;
        }
        let sign = _mm256_set1_ps(-0.0);
        let mut rp = [core::ptr::null::<f32>(); MAX_PACK_TERMS];
        let full = nc & !7;
        for p in 0..kc {
            for (e, (_, src)) in terms.iter().enumerate() {
                rp[e] = src.row(p).as_ptr();
            }
            let mut s0 = _mm256_setzero_pd();
            let mut s1 = _mm256_setzero_pd();
            let mut m0 = _mm256_setzero_pd();
            let mut m1 = _mm256_setzero_pd();
            let mut j = 0usize;
            while j < full {
                let v = combine8_f32(&co, &rp, t, j);
                let sl = j / nr;
                let dst = sl * kc * nr + p * nr + (j - sl * nr);
                _mm256_storeu_ps(buf.as_mut_ptr().add(dst), v);
                s0 = _mm256_add_pd(s0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
                s1 = _mm256_add_pd(s1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
                let av = _mm256_andnot_ps(sign, v);
                m0 = _mm256_add_pd(m0, _mm256_cvtps_pd(_mm256_castps256_ps128(av)));
                m1 = _mm256_add_pd(m1, _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1)));
                j += 8;
            }
            let mut lane = [0.0f64; 4];
            let (mut rs, mut ra) = (0.0f64, 0.0f64);
            _mm256_storeu_pd(lane.as_mut_ptr(), _mm256_add_pd(s0, s1));
            for &l in &lane {
                rs += l;
            }
            _mm256_storeu_pd(lane.as_mut_ptr(), _mm256_add_pd(m0, m1));
            for &l in &lane {
                ra += l;
            }
            while j < nc {
                let v = combine1_f32(&co, &rp, t, j);
                let sl = j / nr;
                buf[sl * kc * nr + p * nr + (j - sl * nr)] = v;
                let vd = v as f64;
                rs += vd;
                ra += vd.abs();
                j += 1;
            }
            if !nc.is_multiple_of(nr) {
                let sl = nc / nr;
                let base = sl * kc * nr + p * nr;
                buf[base + (nc - sl * nr)..base + nr].fill(0.0);
            }
            sum[p] = rs;
            mag[p] = ra;
        }
    }

    /// f64 overwrite-combine chain (4 lanes), mirroring [`chain8_f32`].
    ///
    /// # Safety
    /// As [`chain8_f32`], reading `j + 4` elements.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain4_f64(
        co: &[f64; MAX_PACK_TERMS],
        rp: &[*const f64; MAX_PACK_TERMS],
        o: usize,
        n: usize,
        j: usize,
    ) -> __m256d {
        let term = |e: usize| (_mm256_set1_pd(co[e]), _mm256_loadu_pd(rp[e].add(j)));
        let (c0, r0) = term(o);
        if n == 1 {
            return _mm256_mul_pd(c0, r0);
        }
        let (c1, r1) = term(o + 1);
        if n == 2 {
            return _mm256_fmadd_pd(c0, r0, _mm256_mul_pd(c1, r1));
        }
        let (c2, r2) = term(o + 2);
        if n == 3 {
            return _mm256_fmadd_pd(c0, r0, _mm256_fmadd_pd(c1, r1, _mm256_mul_pd(c2, r2)));
        }
        let (c3, r3) = term(o + 3);
        _mm256_fmadd_pd(
            c0,
            r0,
            _mm256_fmadd_pd(c1, r1, _mm256_fmadd_pd(c2, r2, _mm256_mul_pd(c3, r3))),
        )
    }

    /// # Safety
    /// As [`chain4_f64`], for all `t` terms.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn combine4_f64(
        co: &[f64; MAX_PACK_TERMS],
        rp: &[*const f64; MAX_PACK_TERMS],
        t: usize,
        j: usize,
    ) -> __m256d {
        let mut v = chain4_f64(co, rp, 0, t.min(4), j);
        let mut o = 4;
        while o < t {
            let n = (t - o).min(4);
            if n == 1 {
                v = _mm256_fmadd_pd(_mm256_set1_pd(co[o]), _mm256_loadu_pd(rp[o].add(j)), v);
            } else {
                v = _mm256_add_pd(v, chain4_f64(co, rp, o, n, j));
            }
            o += 4;
        }
        v
    }

    /// Scalar one-column f64 combine for the `nc % 4` tail.
    ///
    /// # Safety
    /// Every `rp[e]` must be readable at offset `j`.
    unsafe fn combine1_f64(
        co: &[f64; MAX_PACK_TERMS],
        rp: &[*const f64; MAX_PACK_TERMS],
        t: usize,
        j: usize,
    ) -> f64 {
        let x = |e: usize| *rp[e].add(j);
        let chain = |o: usize, n: usize| match n {
            1 => co[o] * x(o),
            2 => co[o].mul_add(x(o), co[o + 1] * x(o + 1)),
            3 => co[o].mul_add(x(o), co[o + 1].mul_add(x(o + 1), co[o + 2] * x(o + 2))),
            _ => co[o].mul_add(
                x(o),
                co[o + 1].mul_add(x(o + 1), co[o + 2].mul_add(x(o + 2), co[o + 3] * x(o + 3))),
            ),
        };
        let mut v = chain(0, t.min(4));
        let mut o = 4;
        while o < t {
            let n = (t - o).min(4);
            if n == 1 {
                v = co[o].mul_add(x(o), v);
            } else {
                v += chain(o, n);
            }
            o += 4;
        }
        v
    }

    /// # Safety
    /// CPU must support avx2+fma; `nr` must be a multiple of 4; `buf`
    /// must hold `nc.div_ceil(nr)·kc·nr` elements; `sum`/`mag` length
    /// `kc`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pack_b_combined_sums_f64(
        terms: &[(f64, MatRef<'_, f64>)],
        buf: &mut [f64],
        nr: usize,
        nc: usize,
        kc: usize,
        sums: PackSums<'_>,
    ) {
        debug_assert_eq!(nr % 4, 0);
        let (sum, mag) = sums;
        let t = terms.len();
        let mut co = [0.0f64; MAX_PACK_TERMS];
        for (e, (c, _)) in terms.iter().enumerate() {
            co[e] = *c;
        }
        let sign = _mm256_set1_pd(-0.0);
        let mut rp = [core::ptr::null::<f64>(); MAX_PACK_TERMS];
        let full = nc & !3;
        for p in 0..kc {
            for (e, (_, src)) in terms.iter().enumerate() {
                rp[e] = src.row(p).as_ptr();
            }
            let mut s0 = _mm256_setzero_pd();
            let mut m0 = _mm256_setzero_pd();
            let mut j = 0usize;
            while j < full {
                let v = combine4_f64(&co, &rp, t, j);
                let sl = j / nr;
                let dst = sl * kc * nr + p * nr + (j - sl * nr);
                _mm256_storeu_pd(buf.as_mut_ptr().add(dst), v);
                s0 = _mm256_add_pd(s0, v);
                m0 = _mm256_add_pd(m0, _mm256_andnot_pd(sign, v));
                j += 4;
            }
            let mut lane = [0.0f64; 4];
            let (mut rs, mut ra) = (0.0f64, 0.0f64);
            _mm256_storeu_pd(lane.as_mut_ptr(), s0);
            for &l in &lane {
                rs += l;
            }
            _mm256_storeu_pd(lane.as_mut_ptr(), m0);
            for &l in &lane {
                ra += l;
            }
            while j < nc {
                let v = combine1_f64(&co, &rp, t, j);
                let sl = j / nr;
                buf[sl * kc * nr + p * nr + (j - sl * nr)] = v;
                rs += v;
                ra += v.abs();
                j += 1;
            }
            if !nc.is_multiple_of(nr) {
                let sl = nc / nr;
                let base = sl * kc * nr + p * nr;
                buf[base + (nc - sl * nr)..base + nr].fill(0.0);
            }
            sum[p] = rs;
            mag[p] = ra;
        }
    }
}

/// The row sweep of [`pack_b_combined`]; same dispatch story as
/// [`pack_a_combined_sweep`].
#[inline(always)]
fn pack_b_combined_sweep<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut [T],
    nr: usize,
    nc: usize,
    kc: usize,
) {
    let slivers = nc.div_ceil(nr);
    for p in 0..kc {
        for s in 0..slivers {
            let base = s * kc * nr + p * nr;
            let j0 = s * nr;
            let cols = nr.min(nc - j0);
            combined_segment(terms, p, j0, &mut buf[base..base + cols]);
            buf[base + cols..base + nr].fill(T::ZERO);
        }
    }
}

/// # Safety
/// CPU must support avx2+fma (see [`crate::kernel::hardware_fma_enabled`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pack_b_combined_sweep_fma<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    buf: &mut [T],
    nr: usize,
    nc: usize,
    kc: usize,
) {
    pack_b_combined_sweep(terms, buf, nr, nc, kc)
}

/// Write `out[q] ← Σ_t coeff_t · src_t[i, j0 + q]` for a contiguous column
/// segment of row `i`, using `combine`'s arity-specialized mul_add chains.
///
/// Non-recursive: arities above 4 run the ≤4-term bodies over 4-term
/// chunks (the identical chain shapes the old recursion produced), and
/// everything is `inline(always)` so the sweep inlines into the
/// target-feature wrappers and the mul_adds pick up FMA codegen.
#[inline(always)]
fn combined_segment<T: Scalar>(terms: &[(T, MatRef<'_, T>)], i: usize, j0: usize, out: &mut [T]) {
    if terms.len() <= 4 {
        combined_segment_small(terms, i, j0, out);
    } else {
        let (head, tail) = terms.split_at(4);
        combined_segment_small(head, i, j0, out);
        for chunk in tail.chunks(4) {
            accumulate_segment_small(chunk, i, j0, out);
        }
    }
}

/// The ≤4-term overwrite bodies of [`combined_segment`].
#[inline(always)]
fn combined_segment_small<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    i: usize,
    j0: usize,
    out: &mut [T],
) {
    let w = out.len();
    match terms {
        [] => unreachable!("empty term list rejected at entry"),
        [(c0, s0)] => {
            let r0 = &s0.row(i)[j0..j0 + w];
            for (o, &x0) in out.iter_mut().zip(r0) {
                *o = *c0 * x0;
            }
        }
        [(c0, s0), (c1, s1)] => {
            let (r0, r1) = (&s0.row(i)[j0..j0 + w], &s1.row(i)[j0..j0 + w]);
            for (q, o) in out.iter_mut().enumerate() {
                *o = c0.mul_add(r0[q], *c1 * r1[q]);
            }
        }
        [(c0, s0), (c1, s1), (c2, s2)] => {
            let (r0, r1, r2) = (
                &s0.row(i)[j0..j0 + w],
                &s1.row(i)[j0..j0 + w],
                &s2.row(i)[j0..j0 + w],
            );
            for (q, o) in out.iter_mut().enumerate() {
                *o = c0.mul_add(r0[q], c1.mul_add(r1[q], *c2 * r2[q]));
            }
        }
        [(c0, s0), (c1, s1), (c2, s2), (c3, s3)] => {
            let (r0, r1, r2, r3) = (
                &s0.row(i)[j0..j0 + w],
                &s1.row(i)[j0..j0 + w],
                &s2.row(i)[j0..j0 + w],
                &s3.row(i)[j0..j0 + w],
            );
            for (q, o) in out.iter_mut().enumerate() {
                *o = c0.mul_add(r0[q], c1.mul_add(r1[q], c2.mul_add(r2[q], *c3 * r3[q])));
            }
        }
        _ => unreachable!("combined_segment chunks terms to at most 4"),
    }
}

/// `out[q] += Σ_t coeff_t · src_t[i, j0 + q]` with the accumulate-mode
/// arithmetic of `combine` (single-term FMA into the accumulator; wider
/// arities form the chain then add). At most 4 terms per call.
#[inline(always)]
fn accumulate_segment_small<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    i: usize,
    j0: usize,
    out: &mut [T],
) {
    let w = out.len();
    match terms {
        [] => {}
        [(c0, s0)] => {
            let r0 = &s0.row(i)[j0..j0 + w];
            for (o, &x0) in out.iter_mut().zip(r0) {
                *o = c0.mul_add(x0, *o);
            }
        }
        [(c0, s0), (c1, s1)] => {
            let (r0, r1) = (&s0.row(i)[j0..j0 + w], &s1.row(i)[j0..j0 + w]);
            for (q, o) in out.iter_mut().enumerate() {
                *o += c0.mul_add(r0[q], *c1 * r1[q]);
            }
        }
        [(c0, s0), (c1, s1), (c2, s2)] => {
            let (r0, r1, r2) = (
                &s0.row(i)[j0..j0 + w],
                &s1.row(i)[j0..j0 + w],
                &s2.row(i)[j0..j0 + w],
            );
            for (q, o) in out.iter_mut().enumerate() {
                *o += c0.mul_add(r0[q], c1.mul_add(r1[q], *c2 * r2[q]));
            }
        }
        [(c0, s0), (c1, s1), (c2, s2), (c3, s3)] => {
            let (r0, r1, r2, r3) = (
                &s0.row(i)[j0..j0 + w],
                &s1.row(i)[j0..j0 + w],
                &s2.row(i)[j0..j0 + w],
                &s3.row(i)[j0..j0 + w],
            );
            for (q, o) in out.iter_mut().enumerate() {
                *o += c0.mul_add(r0[q], c1.mul_add(r1[q], c2.mul_add(r2[q], *c3 * r3[q])));
            }
        }
        _ => unreachable!("accumulate_segment_small takes at most 4 terms"),
    }
}

/// Strided variant of [`combined_segment`]: write the combined row `i`
/// (all `kc` columns) into `out[p · stride]` for `p = 0..kc`, the k-major
/// A-sliver layout. Same non-recursive chunking.
#[inline(always)]
fn combined_row_strided<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    i: usize,
    out: &mut [T],
    stride: usize,
    kc: usize,
) {
    if terms.len() <= 4 {
        combined_row_strided_small(terms, i, out, stride, kc);
    } else {
        let (head, tail) = terms.split_at(4);
        combined_row_strided_small(head, i, out, stride, kc);
        for chunk in tail.chunks(4) {
            accumulate_row_strided_small(chunk, i, out, stride, kc);
        }
    }
}

/// The ≤4-term overwrite bodies of [`combined_row_strided`].
#[inline(always)]
fn combined_row_strided_small<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    i: usize,
    out: &mut [T],
    stride: usize,
    kc: usize,
) {
    match terms {
        [] => unreachable!("empty term list rejected at entry"),
        [(c0, s0)] => {
            for (p, &x0) in s0.row(i).iter().enumerate() {
                out[p * stride] = *c0 * x0;
            }
        }
        [(c0, s0), (c1, s1)] => {
            let (r0, r1) = (s0.row(i), s1.row(i));
            for p in 0..kc {
                out[p * stride] = c0.mul_add(r0[p], *c1 * r1[p]);
            }
        }
        [(c0, s0), (c1, s1), (c2, s2)] => {
            let (r0, r1, r2) = (s0.row(i), s1.row(i), s2.row(i));
            for p in 0..kc {
                out[p * stride] = c0.mul_add(r0[p], c1.mul_add(r1[p], *c2 * r2[p]));
            }
        }
        [(c0, s0), (c1, s1), (c2, s2), (c3, s3)] => {
            let (r0, r1, r2, r3) = (s0.row(i), s1.row(i), s2.row(i), s3.row(i));
            for p in 0..kc {
                out[p * stride] =
                    c0.mul_add(r0[p], c1.mul_add(r1[p], c2.mul_add(r2[p], *c3 * r3[p])));
            }
        }
        _ => unreachable!("combined_row_strided chunks terms to at most 4"),
    }
}

/// Accumulate counterpart of [`combined_row_strided_small`]; at most 4
/// terms per call.
#[inline(always)]
fn accumulate_row_strided_small<T: Scalar>(
    terms: &[(T, MatRef<'_, T>)],
    i: usize,
    out: &mut [T],
    stride: usize,
    kc: usize,
) {
    match terms {
        [] => {}
        [(c0, s0)] => {
            let r0 = s0.row(i);
            for p in 0..kc {
                out[p * stride] = c0.mul_add(r0[p], out[p * stride]);
            }
        }
        [(c0, s0), (c1, s1)] => {
            let (r0, r1) = (s0.row(i), s1.row(i));
            for p in 0..kc {
                out[p * stride] += c0.mul_add(r0[p], *c1 * r1[p]);
            }
        }
        [(c0, s0), (c1, s1), (c2, s2)] => {
            let (r0, r1, r2) = (s0.row(i), s1.row(i), s2.row(i));
            for p in 0..kc {
                out[p * stride] += c0.mul_add(r0[p], c1.mul_add(r1[p], *c2 * r2[p]));
            }
        }
        [(c0, s0), (c1, s1), (c2, s2), (c3, s3)] => {
            let (r0, r1, r2, r3) = (s0.row(i), s1.row(i), s2.row(i), s3.row(i));
            for p in 0..kc {
                out[p * stride] +=
                    c0.mul_add(r0[p], c1.mul_add(r1[p], c2.mul_add(r2[p], *c3 * r3[p])));
            }
        }
        _ => unreachable!("accumulate_row_strided_small takes at most 4 terms"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;

    #[test]
    fn pack_a_layout_exact_multiple() {
        // mc = MR, kc = 2 → single sliver, k-major.
        let mr = f32::MR;
        let a = Mat::<f32>::from_fn(mr, 2, |i, j| (i * 2 + j) as f32);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), &mut buf, mr);
        assert_eq!(buf.len(), mr * 2);
        for i in 0..mr {
            assert_eq!(buf[i], a.at(i, 0)); // p = 0 sliver column
            assert_eq!(buf[mr + i], a.at(i, 1)); // p = 1
        }
    }

    #[test]
    fn pack_a_zero_pads_ragged_rows() {
        let mr = f32::MR;
        let a = Mat::<f32>::from_fn(mr + 3, 4, |i, j| (i * 10 + j) as f32 + 1.0);
        let mut buf = Vec::new();
        pack_a(a.as_ref(), &mut buf, mr);
        assert_eq!(buf.len(), 2 * 4 * mr);
        // Second sliver has 3 valid rows; the rest are zeros.
        for p in 0..4 {
            for i in 0..mr {
                let v = buf[4 * mr + p * mr + i];
                if i < 3 {
                    assert_eq!(v, a.at(mr + i, p));
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let nr = f32::NR;
        let b = Mat::<f32>::from_fn(3, nr + 2, |i, j| (i * 100 + j) as f32);
        let mut buf = Vec::new();
        pack_b(b.as_ref(), &mut buf, nr);
        assert_eq!(buf.len(), 2 * 3 * nr);
        for p in 0..3 {
            for j in 0..nr {
                assert_eq!(buf[p * nr + j], b.at(p, j));
            }
            for j in 0..nr {
                let v = buf[3 * nr + p * nr + j];
                if j < 2 {
                    assert_eq!(v, b.at(p, nr + j));
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn panel_reuse_rezeros_ragged_pads() {
        // A big no-pad pack followed by a same-length ragged pack must not
        // leak stale interior values into the pad region.
        let mr = f32::MR;
        let mut buf = Vec::new();
        let full = Mat::<f32>::from_fn(2 * mr, 4, |_, _| 5.0);
        pack_a(full.as_ref(), &mut buf, mr);
        let ragged = Mat::<f32>::from_fn(mr + 1, 8, |_, _| 3.0);
        pack_a(ragged.as_ref(), &mut buf, mr); // resize path (len changes)
        pack_a(ragged.as_ref(), &mut buf, mr); // same-len reuse path
        for p in 0..8 {
            for i in 1..mr {
                assert_eq!(buf[8 * mr + p * mr + i], 0.0, "pad ({i},{p})");
            }
        }
        let nr = f32::NR;
        let mut bbuf = Vec::new();
        let bfull = Mat::<f32>::from_fn(3, 2 * nr, |_, _| 7.0);
        pack_b(bfull.as_ref(), &mut bbuf, nr);
        let bragged = Mat::<f32>::from_fn(3, nr + 1, |_, _| 2.0);
        pack_b(bragged.as_ref(), &mut bbuf, nr);
        pack_b(bragged.as_ref(), &mut bbuf, nr);
        for p in 0..3 {
            for j in 1..nr {
                assert_eq!(bbuf[3 * nr + p * nr + j], 0.0, "pad ({p},{j})");
            }
        }
    }

    fn combo_mats(rows: usize, cols: usize, count: usize) -> Vec<Mat<f32>> {
        (0..count)
            .map(|s| {
                Mat::from_fn(rows, cols, |i, j| {
                    ((i * 31 + j * 7 + s * 13) as f32).sin() * 2.0
                })
            })
            .collect()
    }

    fn check_combined_bitwise(rows: usize, cols: usize, arity: usize) {
        use crate::add::combine;
        let srcs = combo_mats(rows, cols, arity);
        let coeffs: Vec<f32> = (0..arity).map(|t| 0.5 * (t as f32) - 0.7).collect();
        let terms: Vec<(f32, _)> = coeffs
            .iter()
            .zip(&srcs)
            .map(|(&c, m)| (c, m.as_ref()))
            .collect();
        // Reference: materialize Σ coeff·src then pack.
        let mut s = Mat::<f32>::zeros(rows, cols);
        combine(s.as_mut(), false, &terms);
        let (mut want_a, mut got_a) = (Vec::new(), Vec::new());
        pack_a(s.as_ref(), &mut want_a, f32::MR);
        pack_a_combined(&terms, &mut got_a, f32::MR);
        assert_eq!(want_a, got_a, "pack_a arity {arity} ({rows}x{cols})");
        let (mut want_b, mut got_b) = (Vec::new(), Vec::new());
        pack_b(s.as_ref(), &mut want_b, f32::NR);
        pack_b_combined(&terms, &mut got_b, f32::NR);
        assert_eq!(want_b, got_b, "pack_b arity {arity} ({rows}x{cols})");
    }

    #[test]
    fn combined_pack_bitwise_matches_materialized() {
        for arity in 1..=7 {
            for &(rows, cols) in &[(8, 8), (9, 5), (17, 19), (3, 33)] {
                check_combined_bitwise(rows, cols, arity);
            }
        }
    }

    fn check_combined_sums<T: Scalar>(kc: usize, nc: usize, arity: usize, nr: usize) {
        let srcs: Vec<Mat<T>> = (0..arity)
            .map(|s| {
                Mat::from_fn(kc, nc, |i, j| {
                    T::from_f64((((i * 31 + j * 7 + s * 13) as f64).sin() - 0.3) * 2.0)
                })
            })
            .collect();
        let terms: Vec<(T, _)> = srcs
            .iter()
            .enumerate()
            .map(|(t, m)| (T::from_f64(0.5 * t as f64 - 0.7), m.as_ref()))
            .collect();
        let mut plain = Vec::new();
        pack_b_combined(&terms, &mut plain, nr);
        let (mut fused, mut sum, mut mag) = (Vec::new(), Vec::new(), Vec::new());
        pack_b_combined_with_sums(&terms, &mut fused, nr, &mut sum, &mut mag);
        assert_eq!(plain, fused, "packed panel must be bitwise identical");
        // Sums must match an f64 reference over the packed values (lane
        // order differs, so compare to a tight relative tolerance).
        let slivers = nc.div_ceil(nr);
        for p in 0..kc {
            let (mut rs, mut ra) = (0.0f64, 0.0f64);
            for s in 0..slivers {
                let cols = nr.min(nc - s * nr);
                for q in 0..cols {
                    let v = fused[s * kc * nr + p * nr + q].to_f64();
                    rs += v;
                    ra += v.abs();
                }
            }
            let tol = 1e-12 * (1.0 + ra.abs());
            assert!((sum[p] - rs).abs() <= tol, "sum[{p}] {} vs {rs}", sum[p]);
            assert!((mag[p] - ra).abs() <= tol, "mag[{p}] {} vs {ra}", mag[p]);
        }
    }

    #[test]
    fn combined_pack_with_sums_matches_plain_pack() {
        for arity in 1..=7 {
            for &(kc, nc) in &[(3, 33), (5, 8), (7, 19), (4, 64), (2, 3)] {
                check_combined_sums::<f32>(kc, nc, arity, f32::NR);
                check_combined_sums::<f64>(kc, nc, arity, f64::NR);
                check_combined_sums::<f32>(kc, nc, arity, 16);
            }
        }
    }

    #[test]
    fn pack_roundtrip_via_kernel_contract() {
        // Inner-product check: packed dot products must equal A·B entries.
        let mr = f64::MR;
        let nr = f64::NR;
        let kc = 5;
        let a = Mat::<f64>::from_fn(mr, kc, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let b = Mat::<f64>::from_fn(kc, nr, |i, j| (i as f64) - (j as f64));
        let (mut ab, mut bb) = (Vec::new(), Vec::new());
        pack_a(a.as_ref(), &mut ab, mr);
        pack_b(b.as_ref(), &mut bb, nr);
        for i in 0..mr {
            for j in 0..nr {
                let mut s = 0.0;
                for p in 0..kc {
                    s += ab[p * mr + i] * bb[p * nr + j];
                }
                let mut expect = 0.0;
                for p in 0..kc {
                    expect += a.at(i, p) * b.at(p, j);
                }
                assert!((s - expect).abs() < 1e-12);
            }
        }
    }
}
