//! Checkpoint-overhead measurement: how much wall time does the
//! crash-safety subsystem add to an epoch of ParaDnn-style training at
//! hidden width 1024? The acceptance criterion (EXPERIMENTS.md) is that
//! one atomic checkpoint write — serialize, CRC, fsync, rename — costs
//! ≤ 2% of the epoch it protects.
//!
//! Usage: `cargo run --release -p apa-bench --bin ckptcost
//!         [--width 1024] [--batches 8] [--threads 1] [--reps 5]`

use apa_bench::{banner, print_table, Args};
use apa_nn::checkpoint::{EpochProgress, TrainState};
use apa_nn::{classical, performance_network, synthetic_mnist, CheckpointManager};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let width = args.get("width", 1024usize);
    let batches = args.get("batches", 8usize);
    let threads = args.get("threads", 1usize);
    let reps = args.get("reps", 5usize);

    banner(
        "Checkpoint write cost vs epoch wall time",
        &[
            &format!("ParaDnn performance network, hidden width {width}, batch {width}"),
            &format!("{batches} batches/epoch, {threads} thread(s), classical backend"),
            "criterion: one atomic save (temp + fsync + rename) ≤ 2% of the epoch",
        ],
    );

    let mut net = performance_network(width, classical(threads), threads, 0xC0DE);
    let data = synthetic_mnist(batches * width, 0x5EED);

    // One timed epoch of plain training (no checkpointing in the loop).
    let epoch = net.train_epoch(&data, width, 0.05, 0);
    let epoch_secs = epoch.seconds;

    // The full state a checkpoint carries: weights + momentum velocities.
    let velocities = Some(net.snapshot()); // same geometry as real velocity buffers
    let state = TrainState {
        epoch: 0,
        next_batch: batches as u32,
        batch_size: width as u32,
        lr: 0.05,
        degraded_batches: 0,
        progress: EpochProgress::default(),
        layers: net.snapshot(),
        velocities,
        guards: Vec::new(),
    };

    let dir = std::env::temp_dir().join(format!("apa-ckptcost-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mgr = CheckpointManager::new(&dir, 2).expect("temp checkpoint dir");

    let mut bytes = 0u64;
    let mut save_secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let path = mgr.save(&state).expect("checkpoint save");
        save_secs.push(t.elapsed().as_secs_f64());
        bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mean = save_secs.iter().sum::<f64>() / reps as f64;
    let worst = save_secs.iter().cloned().fold(0.0f64, f64::max);
    let overhead = 100.0 * mean / epoch_secs;

    print_table(
        &["metric", "value"],
        &[
            vec!["epoch wall time".into(), format!("{epoch_secs:.3} s")],
            vec![
                "checkpoint size".into(),
                format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64),
            ],
            vec!["save (mean)".into(), format!("{:.1} ms", mean * 1e3)],
            vec!["save (worst)".into(), format!("{:.1} ms", worst * 1e3)],
            vec!["overhead/epoch".into(), format!("{overhead:.2} %")],
        ],
    );
    println!(
        "\n{}: one boundary save costs {overhead:.2}% of the epoch (criterion ≤ 2%)",
        if overhead <= 2.0 { "PASS" } else { "FAIL" }
    );
}
