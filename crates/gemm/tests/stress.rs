//! GEMM stress tests: exhaustive small shapes, awkward strides, and
//! proptest-driven randomized checks against the naive oracle.

use apa_gemm::{gemm, gemm_op, gemm_st, matmul_naive, Mat, Op, Par, Scalar};
use proptest::prelude::*;

fn rand_mat<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        T::from_f64(((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

#[test]
fn exhaustive_tiny_shapes_f32() {
    // Every (m, k, n) in 1..=10 — covers all microkernel edge paths.
    for m in 1..=10usize {
        for k in 1..=10usize {
            for n in 1..=10usize {
                let a = rand_mat::<f32>(m, k, (m * 100 + k * 10 + n) as u64);
                let b = rand_mat::<f32>(k, n, (m * 7 + k * 5 + n * 3) as u64);
                let mut c = Mat::<f32>::zeros(m, n);
                gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
                let expect = matmul_naive(a.as_ref(), b.as_ref());
                let err = c.rel_frobenius_error(&expect);
                assert!(err < 1e-5, "({m},{k},{n}): {err}");
            }
        }
    }
}

#[test]
fn register_tile_boundary_shapes_f64() {
    // Shapes straddling MR=4 / NR=8 boundaries for f64.
    for &(m, n) in &[(3, 7), (4, 8), (5, 9), (8, 16), (9, 17), (12, 24), (13, 25)] {
        let k = 33;
        let a = rand_mat::<f64>(m, k, 1);
        let b = rand_mat::<f64>(k, n, 2);
        let mut c = Mat::<f64>::zeros(m, n);
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-13, "({m},{n})");
    }
}

#[test]
fn deep_k_accumulation() {
    // k much larger than KC: many rank-k update rounds with beta chaining.
    let a = rand_mat::<f32>(16, 2000, 3);
    let b = rand_mat::<f32>(2000, 16, 4);
    let mut c = Mat::<f32>::zeros(16, 16);
    gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    assert!(c.rel_frobenius_error(&expect) < 1e-4);
}

#[test]
fn repeated_accumulation_is_linear() {
    let a = rand_mat::<f64>(24, 24, 5);
    let b = rand_mat::<f64>(24, 24, 6);
    let mut c = Mat::<f64>::zeros(24, 24);
    for _ in 0..5 {
        gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut(), Par::Seq);
    }
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    for i in 0..24 {
        for j in 0..24 {
            assert!((c.at(i, j) - 5.0 * expect.at(i, j)).abs() < 1e-10);
        }
    }
}

#[test]
fn gemm_op_transposes_on_subviews() {
    let big = rand_mat::<f64>(40, 40, 7);
    let a = big.as_ref().subview(5, 5, 12, 20); // 12×20
    let b = big.as_ref().subview(0, 10, 12, 17); // 12×17
                                                 // C = Aᵀ·B → 20×17
    let mut c = Mat::<f64>::zeros(20, 17);
    gemm_op(Op::Trans, Op::NoTrans, 1.0, a, b, 0.0, c.as_mut(), Par::Seq);
    let at = apa_gemm::transpose(a);
    let expect = matmul_naive(at.as_ref(), b);
    assert!(c.rel_frobenius_error(&expect) < 1e-13);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_match_naive(
        m in 1usize..80, k in 1usize..80, n in 1usize..80, seed in 0u64..10_000
    ) {
        let a = rand_mat::<f32>(m, k, seed);
        let b = rand_mat::<f32>(k, n, seed ^ 0xFFFF);
        let mut c = Mat::<f32>::zeros(m, n);
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        prop_assert!(c.rel_frobenius_error(&expect) < 1e-4);
    }

    #[test]
    fn parallel_equals_sequential(
        m in 1usize..60, k in 1usize..60, n in 1usize..60, threads in 2usize..5
    ) {
        let a = rand_mat::<f64>(m, k, 11);
        let b = rand_mat::<f64>(k, n, 13);
        let mut seq = Mat::<f64>::zeros(m, n);
        let mut par = Mat::<f64>::zeros(m, n);
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, seq.as_mut());
        gemm(1.0, a.as_ref(), b.as_ref(), 0.0, par.as_mut(), Par::Threads(threads));
        // Same stripe-internal order ⇒ bitwise equality per stripe.
        prop_assert!(par.rel_frobenius_error(&seq) < 1e-14);
    }

    #[test]
    fn alpha_beta_algebra(
        m in 1usize..30, k in 1usize..30, n in 1usize..30,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0
    ) {
        let a = rand_mat::<f64>(m, k, 17);
        let b = rand_mat::<f64>(k, n, 19);
        let c0 = rand_mat::<f64>(m, n, 23);
        let mut c = c0.clone();
        gemm_st(alpha, a.as_ref(), b.as_ref(), beta, c.as_mut());
        let ab = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..m {
            for j in 0..n {
                let expect = alpha * ab.at(i, j) + beta * c0.at(i, j);
                prop_assert!((c.at(i, j) - expect).abs() < 1e-10 * (1.0 + expect.abs()));
            }
        }
    }
}
