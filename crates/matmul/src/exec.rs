//! The APA execution engine: runs a compiled [`ExecPlan`] on real matrices.
//!
//! One recursive step (the paper's regime):
//!
//! 1. the operands are partitioned into the rule's `m×k` / `k×n` grids of
//!    zero-copy block views;
//! 2. for each multiplication `t`, the operand combinations `S_t`/`T_t` are
//!    formed with write-once [`combine`] kernels — unless the combination
//!    is a singleton, in which case the block view is used directly and the
//!    scalar folds into the gemm α;
//! 3. `M_t = S_t · T_t` runs on the classical [`apa_gemm`] leaf (or
//!    recursively on this engine for multi-step execution);
//! 4. each output block of `Ĉ` is produced in a single write-once pass over
//!    its contributing products.
//!
//! Parallelism follows [`Strategy`]: DFS (all-thread gemm per product), BFS
//! (round-robin distribution), or the paper's Hybrid (q products per thread
//! on single-threaded gemm, then the ℓ remainder products on all threads).

use crate::plan::{Combo, ExecPlan};
use crate::schedule::{hybrid_schedule, Strategy};
use apa_gemm::{combine_par, gemm, pool, Mat, MatMut, MatRef, Par, Scalar};

/// `C ← Â·B̂` by the compiled plan. Dimensions must be divisible by the
/// rule's base dims (use [`crate::peel`] for arbitrary shapes).
pub fn fast_matmul_into<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
) {
    let chain: Vec<&ExecPlan> = (0..steps).map(|_| plan).collect();
    fast_matmul_chain_into(&chain, a, b, c, strategy, threads);
}

/// Non-stationary execution (the paper's §6 extension): apply a *chain* of
/// possibly different rules, one per recursion level — `chain[0]` splits
/// the top level, `chain[1]` each sub-product, and so on. An empty chain
/// (or an indivisible level) falls back to classical gemm. Uniform
/// recursion is the special case `chain = [plan; steps]`, which is exactly
/// what [`fast_matmul_into`] builds.
pub fn fast_matmul_chain_into<T: Scalar>(
    chain: &[&ExecPlan],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
) {
    let threads = threads.max(1);
    let strategy = if threads == 1 { Strategy::Seq } else { strategy };
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "inner dimensions must match");
    assert_eq!((m, n), (c.rows(), c.cols()), "C shape mismatch");

    match chain.first() {
        Some(plan) if divisible(plan, m, k, n) => {
            one_step(plan, &chain[1..], a, b, c, strategy, threads)
        }
        _ => {
            // Leaf: classical gemm at the caller's parallelism.
            let par = leaf_par(strategy, threads);
            gemm(T::ONE, a, b, T::ZERO, c, par);
        }
    }
}

fn divisible(plan: &ExecPlan, m: usize, k: usize, n: usize) -> bool {
    let d = plan.dims;
    m % d.m == 0 && k % d.k == 0 && n % d.n == 0 && m >= d.m && k >= d.k && n >= d.n
}

fn leaf_par(strategy: Strategy, threads: usize) -> Par {
    match strategy {
        Strategy::Seq => Par::Seq,
        _ => Par::Threads(threads),
    }
}

fn one_step<T: Scalar>(
    plan: &ExecPlan,
    rest: &[&ExecPlan],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
) {
    let d = plan.dims;
    let (bm, bk, bn) = (a.rows() / d.m, a.cols() / d.k, b.cols() / d.n);
    let a_blocks = a.grid(d.m, d.k);
    let b_blocks = b.grid(d.k, d.n);
    let r = plan.rank;

    let mut products: Vec<Mat<T>> = (0..r).map(|_| Mat::zeros(bm, bn)).collect();

    match strategy {
        Strategy::Seq => {
            for (t, m_out) in products.iter_mut().enumerate() {
                compute_product(plan, rest, t, &a_blocks, &b_blocks, (bm, bk, bn), m_out, Par::Seq);
            }
        }
        Strategy::Dfs => {
            let par = Par::Threads(threads);
            for (t, m_out) in products.iter_mut().enumerate() {
                compute_product(plan, rest, t, &a_blocks, &b_blocks, (bm, bk, bn), m_out, par);
            }
        }
        Strategy::Bfs => {
            let mut per_thread: Vec<Vec<(usize, &mut Mat<T>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (t, m_out) in products.iter_mut().enumerate() {
                per_thread[t % threads].push((t, m_out));
            }
            let ab = &a_blocks;
            let bb = &b_blocks;
            pool(threads).scope(|s| {
                for list in per_thread {
                    s.spawn(move |_| {
                        for (t, m_out) in list {
                            compute_product(plan, rest, t, ab, bb, (bm, bk, bn), m_out, Par::Seq);
                        }
                    });
                }
            });
        }
        Strategy::Hybrid => {
            let sched = hybrid_schedule(r, threads);
            let owned = threads * sched.q;
            let (own_slice, rem_slice) = products.split_at_mut(owned);
            if sched.q > 0 {
                let ab = &a_blocks;
                let bb = &b_blocks;
                pool(threads).scope(|s| {
                    for (i, chunk) in own_slice.chunks_mut(sched.q).enumerate() {
                        s.spawn(move |_| {
                            for (j, m_out) in chunk.iter_mut().enumerate() {
                                let t = i * sched.q + j;
                                compute_product(
                                    plan,
                                    rest,
                                    t,
                                    ab,
                                    bb,
                                    (bm, bk, bn),
                                    m_out,
                                    Par::Seq,
                                );
                            }
                        });
                    }
                });
            }
            // Remainder products: all threads cooperate inside each one.
            let par = Par::Threads(threads);
            for (j, m_out) in rem_slice.iter_mut().enumerate() {
                let t = owned + j;
                compute_product(plan, rest, t, &a_blocks, &b_blocks, (bm, bk, bn), m_out, par);
            }
        }
    }

    write_outputs(plan, c, &products, strategy, threads);
}

/// Form `S_t`, `T_t` and run `M_t = α · S_t · T_t`.
#[allow(clippy::too_many_arguments)]
fn compute_product<T: Scalar>(
    plan: &ExecPlan,
    rest: &[&ExecPlan],
    t: usize,
    a_blocks: &[MatRef<'_, T>],
    b_blocks: &[MatRef<'_, T>],
    (bm, bk, bn): (usize, usize, usize),
    m_out: &mut Mat<T>,
    par: Par,
) {
    let recursive = !rest.is_empty();

    // Combination buffers are declared up front so block views and buffer
    // views unify to one lifetime without copies.
    let s_storage: Mat<T>;
    let t_storage: Mat<T>;

    let (s_view, alpha_a) = match &plan.a_combos[t] {
        Combo::Single { block, coeff } if !recursive || *coeff == 1.0 => {
            (a_blocks[*block], *coeff)
        }
        combo => {
            let mut buf = Mat::zeros(bm, bk);
            form_combo(buf.as_mut(), combo, a_blocks, par);
            s_storage = buf;
            (s_storage.as_ref(), 1.0)
        }
    };
    let (t_view, alpha_b) = match &plan.b_combos[t] {
        Combo::Single { block, coeff } if !recursive || *coeff == 1.0 => {
            (b_blocks[*block], *coeff)
        }
        combo => {
            let mut buf = Mat::zeros(bk, bn);
            form_combo(buf.as_mut(), combo, b_blocks, par);
            t_storage = buf;
            (t_storage.as_ref(), 1.0)
        }
    };

    if recursive {
        debug_assert!((alpha_a - 1.0).abs() < f64::EPSILON && (alpha_b - 1.0).abs() < f64::EPSILON);
        fast_matmul_chain_into(rest, s_view, t_view, m_out.as_mut(), Strategy::Seq, 1);
    } else {
        let alpha = T::from_f64(alpha_a * alpha_b);
        gemm(alpha, s_view, t_view, T::ZERO, m_out.as_mut(), par);
    }
}

fn form_combo<T: Scalar>(dst: MatMut<'_, T>, combo: &Combo, blocks: &[MatRef<'_, T>], par: Par) {
    let terms: Vec<(T, MatRef<'_, T>)> = match combo {
        Combo::Single { block, coeff } => vec![(T::from_f64(*coeff), blocks[*block])],
        Combo::Multi(v) => v
            .iter()
            .map(|&(b, c)| (T::from_f64(c), blocks[b]))
            .collect(),
    };
    combine_par(dst, false, &terms, par);
}

fn write_outputs<T: Scalar>(
    plan: &ExecPlan,
    c: MatMut<'_, T>,
    products: &[Mat<T>],
    strategy: Strategy,
    threads: usize,
) {
    let d = plan.dims;
    let c_blocks = c.into_grid(d.m, d.n);
    let par = leaf_par(strategy, threads);
    for (block, mut dst) in c_blocks.into_iter().enumerate() {
        let terms: Vec<(T, MatRef<'_, T>)> = plan.c_outputs[block]
            .iter()
            .map(|&(t, coeff)| (T::from_f64(coeff), products[t].as_ref()))
            .collect();
        debug_assert!(!terms.is_empty(), "output block {block} receives no products");
        combine_par(dst.rb(), false, &terms, par);
    }
}

/// Convenience: allocate and return `Ĉ = Â·B̂`.
pub fn fast_matmul<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
) -> Mat<T> {
    let mut c = Mat::zeros(a.rows(), b.cols());
    fast_matmul_into(plan, a, b, c.as_mut(), steps, strategy, threads);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;
    use apa_gemm::matmul_naive;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check(alg_name: &str, lambda: f64, mult: usize, tol: f64, strategy: Strategy, threads: usize) {
        let alg = catalog::by_name(alg_name).unwrap();
        let d = alg.dims;
        let (m, k, n) = (d.m * mult, d.k * mult, d.n * mult);
        let a = rand_mat(m, k, 1);
        let b = rand_mat(k, n, 2);
        let plan = ExecPlan::compile(&alg, lambda);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, strategy, threads);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        assert!(
            err < tol,
            "{alg_name} ({strategy:?}, t={threads}): rel err {err} > {tol}"
        );
    }

    #[test]
    fn strassen_exact_sequential() {
        check("strassen", 0.0, 16, 1e-12, Strategy::Seq, 1);
    }

    #[test]
    fn bini_apa_sequential() {
        // f64: optimal λ ≈ 2^-26; error ~2^-26 ≈ 1.5e-8.
        check("bini322", 2.0_f64.powi(-26), 10, 1e-6, Strategy::Seq, 1);
    }

    #[test]
    fn every_paper_algorithm_multiplies_correctly() {
        for alg in catalog::paper_lineup() {
            let lambda = if alg.is_exact_rule() { 0.0 } else { 2.0_f64.powi(-26) };
            check(&alg.name, lambda, 4, 1e-5, Strategy::Seq, 1);
        }
    }

    #[test]
    fn strategies_agree() {
        for strategy in [Strategy::Dfs, Strategy::Bfs, Strategy::Hybrid] {
            check("bini322", 2.0_f64.powi(-26), 8, 1e-6, strategy, 3);
            check("fast444", 0.0, 8, 1e-12, strategy, 4);
        }
    }

    #[test]
    fn hybrid_with_exact_division_of_threads() {
        // fast442 has 28 products; with 4 threads q = 7, ℓ = 0.
        check("fast442", 0.0, 8, 1e-12, Strategy::Hybrid, 4);
        // With 3 threads ℓ = 1: exercises the all-thread remainder phase.
        check("fast442", 0.0, 8, 1e-12, Strategy::Hybrid, 3);
    }

    #[test]
    fn two_recursive_steps() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let a = rand_mat(32, 32, 7);
        let b = rand_mat(32, 32, 8);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 2, Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn two_steps_apa_rule() {
        let alg = catalog::bini322();
        // 2 steps need divisibility by 3², 2², 2².
        let plan = ExecPlan::compile(&alg, 2.0_f64.powi(-18));
        let a = rand_mat(27, 12, 9);
        let b = rand_mat(12, 12, 10);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 2, Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        // two steps double φ's effect; stay lenient.
        assert!(got.rel_frobenius_error(&expect) < 1e-3);
    }

    #[test]
    fn indivisible_dims_fall_back_to_gemm() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let a = rand_mat(7, 9, 11);
        let b = rand_mat(9, 5, 12);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn zero_steps_is_plain_gemm() {
        let alg = catalog::bini322();
        let plan = ExecPlan::compile(&alg, 0.5); // huge λ — must not matter
        let a = rand_mat(6, 4, 13);
        let b = rand_mat(4, 4, 14);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 0, Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn nonstationary_chain_of_two_rules() {
        // Level 0 splits with Bini <3,2,2>, level 1 with Strassen <2,2,2>:
        // needs dims divisible by (6, 4, 4).
        let bini = ExecPlan::compile(&catalog::bini322(), 2.0_f64.powi(-20));
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = rand_mat(30, 20, 50);
        let b = rand_mat(20, 20, 51);
        let mut c = Mat::zeros(30, 20);
        fast_matmul_chain_into(
            &[&bini, &strassen],
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            Strategy::Seq,
            1,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-4);
    }

    #[test]
    fn chain_order_matters_for_divisibility() {
        // 8×8×8 divides Strassen twice but Bini not even once; the chain
        // must gracefully degrade to gemm at the Bini level.
        let bini = ExecPlan::compile(&catalog::bini322(), 2.0_f64.powi(-20));
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = rand_mat(8, 8, 52);
        let b = rand_mat(8, 8, 53);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for chain in [vec![&strassen, &bini], vec![&bini, &strassen]] {
            let mut c = Mat::zeros(8, 8);
            fast_matmul_chain_into(&chain, a.as_ref(), b.as_ref(), c.as_mut(), Strategy::Seq, 1);
            assert!(c.rel_frobenius_error(&expect) < 1e-4);
        }
    }

    #[test]
    fn empty_chain_is_gemm() {
        let a = rand_mat(9, 7, 54);
        let b = rand_mat(7, 5, 55);
        let mut c = Mat::zeros(9, 5);
        fast_matmul_chain_into::<f64>(&[], a.as_ref(), b.as_ref(), c.as_mut(), Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn f32_single_precision_path() {
        let alg = catalog::bini322();
        let lambda = 2.0_f64.powf(-11.5); // optimal for d = 23
        let plan = ExecPlan::compile(&alg, lambda);
        let a = Mat::<f32>::from_fn(30, 20, |i, j| ((i * 31 + j * 17) % 13) as f32 * 0.1 - 0.6);
        let b = Mat::<f32>::from_fn(20, 20, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.1 - 0.5);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, Strategy::Seq, 1);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        // paper Table 1: ⟨3,2,2⟩ error ≈ 3.5e-4 at single precision.
        assert!(err < 5e-3, "err {err}");
    }
}
