//! 2D-parallel gemm contract (ISSUE 10): the cooperative-packing
//! multithreaded driver is **bitwise identical** to the single-threaded
//! blocked kernel — plain and fused, f32 and f64, ragged shapes, any
//! thread count — and the sequential path stays entirely outside the
//! pool's claim machinery.
//!
//! The proptests force multi-cell grids with small explicit block sizes
//! (via the `parallel::hooks` test seam); the public entry points use the
//! same driver with the tuned blocking.

use apa_gemm::blocked::BlockSizes;
use apa_gemm::parallel::hooks;
use apa_gemm::{gemm, gemm_st, matmul_naive_f64, Mat, Par, Scalar};
use proptest::prelude::*;

fn rand_mat<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        T::from_f64(((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

/// Tiny blocking that turns even 64×64 shapes into many MC×NC cells and
/// several KC slabs, exercising panel sharing, stealing and beta chaining.
const SMALL: BlockSizes = BlockSizes {
    mc: 24,
    kc: 16,
    nc: 24,
};

fn assert_bitwise<T: Scalar + Bits>(par: &Mat<T>, seq: &Mat<T>, ctx: &str) {
    for i in 0..seq.rows() {
        for j in 0..seq.cols() {
            assert!(
                par.at(i, j).to_bits_u64() == seq.at(i, j).to_bits_u64(),
                "{ctx}: C[{i},{j}] differs: {:?} vs {:?}",
                par.at(i, j),
                seq.at(i, j)
            );
        }
    }
}

/// Bit-pattern access without requiring new Scalar API in the test.
trait Bits: Copy {
    fn to_bits_u64(self) -> u64;
}
impl Bits for f32 {
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
}
impl Bits for f64 {
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn plain_f32_parallel_is_bitwise_st(
        m in 1usize..90, k in 1usize..90, n in 1usize..90,
        threads in 1usize..=8, seed in 0u64..1_000
    ) {
        let a = rand_mat::<f32>(m, k, seed);
        let b = rand_mat::<f32>(k, n, seed ^ 0xABCD);
        let c0 = rand_mat::<f32>(m, n, seed ^ 0x1234);
        let (mut seq, mut par) = (c0.clone(), c0.clone());
        hooks::gemm_st_with_blocks(1.5f32, a.as_ref(), b.as_ref(), -0.5, seq.as_mut(), SMALL);
        hooks::gemm_2d_with_blocks(1.5f32, a.as_ref(), b.as_ref(), -0.5, par.as_mut(), threads, SMALL)
            .unwrap();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(par.at(i, j).to_bits(), seq.at(i, j).to_bits(),
                    "({},{},{}) t={} C[{},{}]", m, k, n, threads, i, j);
            }
        }
    }

    #[test]
    fn plain_f64_parallel_is_bitwise_st(
        m in 1usize..70, k in 1usize..70, n in 1usize..70,
        threads in 1usize..=8, seed in 0u64..1_000
    ) {
        let a = rand_mat::<f64>(m, k, seed);
        let b = rand_mat::<f64>(k, n, seed ^ 0xBEEF);
        let (mut seq, mut par) = (Mat::<f64>::zeros(m, n), Mat::<f64>::zeros(m, n));
        hooks::gemm_st_with_blocks(1.0f64, a.as_ref(), b.as_ref(), 0.0, seq.as_mut(), SMALL);
        hooks::gemm_2d_with_blocks(1.0f64, a.as_ref(), b.as_ref(), 0.0, par.as_mut(), threads, SMALL)
            .unwrap();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(par.at(i, j).to_bits(), seq.at(i, j).to_bits(),
                    "({},{},{}) t={} C[{},{}]", m, k, n, threads, i, j);
            }
        }
    }

    #[test]
    fn fused_combined_parallel_is_bitwise_st(
        m in 1usize..60, k in 1usize..60, n in 1usize..60,
        threads in 1usize..=8, seed in 0u64..1_000
    ) {
        // Two-term linear combinations on both sides — the APA leaf shape.
        let a1 = rand_mat::<f32>(m, k, seed);
        let a2 = rand_mat::<f32>(m, k, seed ^ 0x11);
        let b1 = rand_mat::<f32>(k, n, seed ^ 0x22);
        let b2 = rand_mat::<f32>(k, n, seed ^ 0x33);
        let a_terms = [(1.0f32, a1.as_ref()), (-0.25f32, a2.as_ref())];
        let b_terms = [(0.5f32, b1.as_ref()), (2.0f32, b2.as_ref())];
        let (mut seq, mut par) = (Mat::<f32>::zeros(m, n), Mat::<f32>::zeros(m, n));
        hooks::gemm_combined_st_with_blocks(1.0f32, &a_terms, &b_terms, 0.0, seq.as_mut(), SMALL);
        hooks::gemm_combined_2d_with_blocks(
            1.0f32, &a_terms, &b_terms, 0.0, par.as_mut(), threads, SMALL,
        )
        .unwrap();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(par.at(i, j).to_bits(), seq.at(i, j).to_bits(),
                    "({},{},{}) t={} C[{},{}]", m, k, n, threads, i, j);
            }
        }
    }

    #[test]
    fn fused_f64_parallel_is_bitwise_st(
        m in 1usize..50, k in 1usize..50, n in 1usize..50,
        threads in 1usize..=8, seed in 0u64..1_000
    ) {
        let a1 = rand_mat::<f64>(m, k, seed);
        let a2 = rand_mat::<f64>(m, k, seed ^ 0x44);
        let b1 = rand_mat::<f64>(k, n, seed ^ 0x55);
        let a_terms = [(1.0f64, a1.as_ref()), (0.125f64, a2.as_ref())];
        let b_terms = [(-1.5f64, b1.as_ref())];
        let (mut seq, mut par) = (Mat::<f64>::zeros(m, n), Mat::<f64>::zeros(m, n));
        hooks::gemm_combined_st_with_blocks(2.0f64, &a_terms, &b_terms, 0.0, seq.as_mut(), SMALL);
        hooks::gemm_combined_2d_with_blocks(
            2.0f64, &a_terms, &b_terms, 0.0, par.as_mut(), threads, SMALL,
        )
        .unwrap();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(par.at(i, j).to_bits(), seq.at(i, j).to_bits(),
                    "({},{},{}) t={} C[{},{}]", m, k, n, threads, i, j);
            }
        }
    }
}

#[test]
fn public_entry_points_are_bitwise_across_thread_counts() {
    // The tuned-blocking public path: every thread count produces the
    // byte-identical result of the sequential call.
    let a = rand_mat::<f32>(130, 75, 9);
    let b = rand_mat::<f32>(75, 110, 10);
    let mut seq = Mat::<f32>::zeros(130, 110);
    gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, seq.as_mut());
    for threads in [1usize, 2, 3, 4, 6, 8] {
        let mut par = Mat::<f32>::zeros(130, 110);
        gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            par.as_mut(),
            Par::Threads(threads),
        );
        assert_bitwise(&par, &seq, &format!("threads={threads}"));
    }
}

#[test]
fn parallel_result_is_numerically_correct() {
    // Bitwise-equal to ST is the strong contract; anchor ST itself to the
    // f64 oracle so the pair can't be "equal but wrong".
    let a = rand_mat::<f32>(64, 48, 21);
    let b = rand_mat::<f32>(48, 57, 22);
    let mut par = Mat::<f32>::zeros(64, 57);
    hooks::gemm_2d_with_blocks(1.0f32, a.as_ref(), b.as_ref(), 0.0, par.as_mut(), 4, SMALL)
        .unwrap();
    let oracle = matmul_naive_f64(a.as_ref(), b.as_ref());
    let mut err: f64 = 0.0;
    for i in 0..64 {
        for j in 0..57 {
            err = err.max((par.at(i, j) as f64 - oracle.at(i, j)).abs());
        }
    }
    assert!(err < 1e-4, "max abs error {err}");
}

#[test]
fn seq_path_touches_no_claim_machinery() {
    // ISSUE 10 satellite: a `Par::Seq` (or degenerate `Threads(1)`) call
    // must never route through the arena/queue claim protocol. The
    // thread-local op counter ticks on every arena build, panel claim and
    // queue pop — it must not move.
    let a = rand_mat::<f32>(96, 64, 31);
    let b = rand_mat::<f32>(64, 80, 32);
    let mut c = Mat::<f32>::zeros(96, 80);
    gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), Par::Seq); // warm pools/blocks
    let before = apa_gemm::parallel::thread_par_ops();
    for par in [Par::Seq, Par::Threads(1), Par::Threads(0)] {
        gemm(1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut(), par);
    }
    assert_eq!(
        apa_gemm::parallel::thread_par_ops(),
        before,
        "sequential path performed parallel claim ops"
    );
}

#[test]
fn stats_show_cooperative_packing_once_per_slab() {
    // 64×64×64 with kc=16, nc=24 → 4 slabs × 3 jc blocks = 12 panels;
    // they must be packed exactly once each no matter how many workers
    // race, and reuse accounts for the rest of the touches.
    let a = rand_mat::<f32>(64, 64, 41);
    let b = rand_mat::<f32>(64, 64, 42);
    let mut c = Mat::<f32>::zeros(64, 64);
    let stats =
        hooks::gemm_2d_with_blocks(1.0f32, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), 4, SMALL)
            .unwrap();
    let slabs = 64usize.div_ceil(SMALL.kc);
    let jc_blocks = 64usize.div_ceil(SMALL.nc);
    assert_eq!(stats.panels_packed, (slabs * jc_blocks) as u64);
    // Every (cell, slab) touch is either the one pack or a reuse.
    let cells = 64usize.div_ceil(SMALL.mc) * jc_blocks;
    assert_eq!(
        stats.panels_packed + stats.panels_reused,
        (cells * slabs) as u64
    );
}
