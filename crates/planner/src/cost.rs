//! The analytic machine model the compiler ranks candidates with: a
//! roofline-style estimate combining recursive gemm flops with the byte
//! traffic modeled by `apa_matmul::modeled_bytes_moved` (the analytic
//! mirror of the instrumented `ExecProfile::est_bytes_moved` accounting).
//!
//! The absolute numbers are deliberately coarse — tier-typical per-thread
//! flop rates, a flat memory-bandwidth figure — because the compiler only
//! needs the *ordering* of candidates to be right, and ties are broken
//! deterministically. When a real measurement exists (opt-in autotune),
//! it overrides the analytic estimate entirely.

use crate::request::DType;
use apa_matmul::{modeled_bytes_moved, ExecPlan, FusionPolicy, Strategy};

/// Per-thread throughput and memory bandwidth for the dispatched kernel
/// tier. Values are order-of-magnitude figures for the tier class, not
/// calibrated constants; see the module docs.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Kernel tier name this model was built for ("scalar" / "avx2" /
    /// "avx512").
    pub tier: &'static str,
    /// Sustained f32 flops/sec for one thread.
    pub flops_f32: f64,
    /// Sustained f64 flops/sec for one thread.
    pub flops_f64: f64,
    /// Sustained main-memory bandwidth (bytes/sec), shared by all threads.
    pub bytes_per_sec: f64,
    /// Measured parallel-scaling curve: `(threads, speedup-vs-1-thread)`
    /// points, sorted by thread count. **Empty means linear scaling** —
    /// the uncalibrated default, which keeps the analytic ordering
    /// identical to the historical model. Populated from the persisted
    /// plan-store calibration block (probed by `apa_gemm`'s
    /// `probe_parallel_gflops` under measured tuning).
    pub parallel_points: Vec<(u32, f64)>,
}

impl MachineModel {
    /// The model for the kernel tier runtime dispatch actually selected
    /// (honours `APA_FORCE_SCALAR_KERNEL`).
    pub fn detect() -> Self {
        Self::for_tier(apa_gemm::selected_tier().name())
    }

    /// Model for a named tier; unknown names get the scalar figures.
    pub fn for_tier(tier: &'static str) -> Self {
        let (flops_f32, flops_f64) = match tier {
            "avx512" => (64.0e9, 32.0e9),
            "avx2" => (32.0e9, 16.0e9),
            _ => (4.0e9, 2.0e9),
        };
        MachineModel {
            tier,
            flops_f32,
            flops_f64,
            bytes_per_sec: 16.0e9,
            parallel_points: Vec::new(),
        }
    }

    /// Overlay measured calibration onto the analytic model: a probed
    /// memory bandwidth (ignored unless finite and positive) and a set of
    /// `(threads, speedup)` scaling points (invalid entries dropped, the
    /// rest sorted). With no valid points the model keeps the linear
    /// default.
    pub fn calibrated(mut self, bandwidth: f64, points: &[(u32, f64)]) -> Self {
        if bandwidth.is_finite() && bandwidth > 0.0 {
            self.bytes_per_sec = bandwidth;
        }
        let mut pts: Vec<(u32, f64)> = points
            .iter()
            .copied()
            .filter(|&(t, s)| t >= 1 && s.is_finite() && s > 0.0)
            .collect();
        pts.sort_by_key(|&(t, _)| t);
        pts.dedup_by_key(|&mut (t, _)| t);
        self.parallel_points = pts;
        self
    }

    /// Effective speedup of `threads` lanes over one lane. Uncalibrated
    /// (no measured points) this is the historical linear assumption
    /// `threads`; with measured points it interpolates the curve
    /// piecewise-linearly (anchored at `(1, 1.0)`), holds the last point
    /// flat beyond the probed range, and clamps to `[1, threads]` so a
    /// noisy probe can never predict super-linear scaling or a slowdown
    /// below the single-thread baseline.
    pub fn parallel_speedup(&self, threads: usize) -> f64 {
        if threads <= 1 {
            return 1.0;
        }
        if self.parallel_points.is_empty() {
            return threads as f64;
        }
        let t = threads as f64;
        let mut prev = (1.0f64, 1.0f64);
        let mut speedup = None;
        for &(pt, ps) in &self.parallel_points {
            let (pt, ps) = (pt as f64, ps);
            if pt >= t {
                speedup = Some(if pt > prev.0 {
                    prev.1 + (ps - prev.1) * (t - prev.0) / (pt - prev.0)
                } else {
                    ps
                });
                break;
            }
            prev = (pt, ps);
        }
        // Past the probed range: hold the last measured speedup flat.
        speedup.unwrap_or(prev.1).clamp(1.0, t)
    }

    fn rate(&self, dtype: DType) -> f64 {
        match dtype {
            DType::F32 => self.flops_f32,
            DType::F64 => self.flops_f64,
        }
    }

    /// Multiplication flops for one `(m, k, n)` product under `plan`
    /// recursed `steps` deep: `2 · r^s · (m·k·n) / (dm·dk·dn)^s`. Shapes
    /// the rule cannot divide fall back to the classical count (dynamic
    /// peeling executes them near-classically anyway).
    pub fn gemm_flops(plan: &ExecPlan, m: usize, k: usize, n: usize, steps: u32) -> f64 {
        let classical = 2.0 * (m as f64) * (k as f64) * (n as f64);
        let d = plan.dims;
        let (dm, dk, dn) = (d.m as f64, d.k as f64, d.n as f64);
        let s = steps as i32;
        let divisible = |len: usize, by: usize| len.is_multiple_of(by.pow(steps));
        if steps == 0 || !(divisible(m, d.m) && divisible(k, d.k) && divisible(n, d.n)) {
            return classical;
        }
        classical * (plan.rank as f64).powi(s) / (dm * dk * dn).powi(s)
    }

    /// Thread utilization of the task-parallel product loop: `r` leaf
    /// tasks on `T` threads keep `r / (ceil(r/T)·T)` of the machine busy
    /// in the final wave. Sequential strategies use the whole single
    /// thread by definition.
    pub fn utilization(strategy: Strategy, rank: usize, threads: usize) -> f64 {
        if threads <= 1 {
            return 1.0;
        }
        match strategy {
            Strategy::Hybrid | Strategy::Bfs => {
                let waves = rank.div_ceil(threads);
                rank as f64 / (waves * threads) as f64
            }
            Strategy::Seq | Strategy::Dfs => 1.0 / threads as f64,
        }
    }

    /// Predicted wall-clock seconds for executing `plan` on every shape
    /// in `shapes`: compute time at the tier's rate (scaled by thread
    /// count and load-balance utilization) plus modeled memory traffic at
    /// the flat bandwidth.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_seconds(
        &self,
        plan: &ExecPlan,
        shapes: &[(usize, usize, usize)],
        steps: u32,
        strategy: Strategy,
        threads: usize,
        fusion: FusionPolicy,
        dtype: DType,
    ) -> f64 {
        let mut total = 0.0;
        for &(m, k, n) in shapes {
            let flops = Self::gemm_flops(plan, m, k, n, steps);
            let util = Self::utilization(strategy, plan.rank, threads);
            let compute = flops / (self.rate(dtype) * self.parallel_speedup(threads) * util);
            let bytes = modeled_bytes_moved(
                plan,
                m,
                k,
                n,
                steps,
                strategy,
                threads,
                fusion,
                dtype.elem_size(),
            );
            total += compute + bytes as f64 / self.bytes_per_sec;
        }
        total
    }

    /// Predicted seconds for the classical (exact, non-recursive) tiled
    /// gemm baseline on the same shapes. The classical kernel
    /// parallelizes by output tiles, so utilization is ~1.
    pub fn predict_classical_seconds(
        &self,
        shapes: &[(usize, usize, usize)],
        threads: usize,
        dtype: DType,
    ) -> f64 {
        let mut total = 0.0;
        for &(m, k, n) in shapes {
            let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);
            let bytes = ((m * k + k * n + 2 * m * n) * dtype.elem_size()) as f64;
            total += flops / (self.rate(dtype) * self.parallel_speedup(threads))
                + bytes / self.bytes_per_sec;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;

    #[test]
    fn tier_rates_are_ordered() {
        let scalar = MachineModel::for_tier("scalar");
        let avx2 = MachineModel::for_tier("avx2");
        let avx512 = MachineModel::for_tier("avx512");
        assert!(scalar.flops_f32 < avx2.flops_f32);
        assert!(avx2.flops_f32 < avx512.flops_f32);
        assert!(scalar.flops_f64 < scalar.flops_f32);
    }

    #[test]
    fn strassen_saves_flops_at_depth() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let classical = MachineModel::gemm_flops(&plan, 256, 256, 256, 0);
        let one = MachineModel::gemm_flops(&plan, 256, 256, 256, 1);
        let two = MachineModel::gemm_flops(&plan, 256, 256, 256, 2);
        assert_eq!(classical, 2.0 * 256.0f64.powi(3));
        assert!((one / classical - 7.0 / 8.0).abs() < 1e-12);
        assert!((two / classical - 49.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn indivisible_shapes_cost_classical_flops() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let odd = MachineModel::gemm_flops(&plan, 255, 255, 255, 1);
        assert_eq!(odd, 2.0 * 255.0f64.powi(3));
    }

    #[test]
    fn utilization_models_load_imbalance() {
        // 7 tasks on 4 threads: two waves, 7/8 busy.
        assert!((MachineModel::utilization(Strategy::Hybrid, 7, 4) - 7.0 / 8.0).abs() < 1e-12);
        // 7 tasks on 7 threads: perfectly balanced.
        assert_eq!(MachineModel::utilization(Strategy::Bfs, 7, 7), 1.0);
        // Sequential strategy wastes the other threads.
        assert_eq!(MachineModel::utilization(Strategy::Seq, 7, 4), 0.25);
        assert_eq!(MachineModel::utilization(Strategy::Hybrid, 7, 1), 1.0);
    }

    #[test]
    fn uncalibrated_speedup_is_linear() {
        let model = MachineModel::for_tier("scalar");
        assert_eq!(model.parallel_speedup(1), 1.0);
        assert_eq!(model.parallel_speedup(4), 4.0);
        assert_eq!(model.parallel_speedup(16), 16.0);
    }

    #[test]
    fn calibrated_speedup_interpolates_and_saturates() {
        let model =
            MachineModel::for_tier("scalar").calibrated(20.0e9, &[(2, 1.8), (4, 3.0), (8, 4.0)]);
        assert_eq!(model.bytes_per_sec, 20.0e9);
        assert_eq!(model.parallel_speedup(1), 1.0);
        assert!((model.parallel_speedup(2) - 1.8).abs() < 1e-12);
        // Between probes: linear interpolation (3 threads → midpoint).
        assert!((model.parallel_speedup(3) - 2.4).abs() < 1e-12);
        assert!((model.parallel_speedup(4) - 3.0).abs() < 1e-12);
        // Beyond the probed range: hold flat, never extrapolate upward.
        assert!((model.parallel_speedup(32) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_rejects_garbage_points() {
        let model = MachineModel::for_tier("scalar")
            .calibrated(f64::NAN, &[(0, 2.0), (4, f64::INFINITY), (2, -1.0)]);
        // Bad bandwidth and bad points are all dropped → linear default.
        assert_eq!(model.bytes_per_sec, 16.0e9);
        assert!(model.parallel_points.is_empty());
        assert_eq!(model.parallel_speedup(8), 8.0);
    }

    #[test]
    fn sublinear_calibration_raises_predicted_seconds() {
        let linear = MachineModel::for_tier("scalar");
        let measured = linear.clone().calibrated(16.0e9, &[(4, 2.0)]);
        let shapes = [(512usize, 512usize, 512usize)];
        let fast = linear.predict_classical_seconds(&shapes, 4, DType::F32);
        let slow = measured.predict_classical_seconds(&shapes, 4, DType::F32);
        assert!(slow > fast, "measured sublinear scaling must cost more");
        // Single-threaded predictions are untouched by calibration points.
        let st_a = linear.predict_classical_seconds(&shapes, 1, DType::F32);
        let st_b = measured.predict_classical_seconds(&shapes, 1, DType::F32);
        assert_eq!(st_a, st_b);
    }

    #[test]
    fn prediction_is_finite_and_monotone_in_shape() {
        let model = MachineModel::detect();
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let small = model.predict_seconds(
            &plan,
            &[(128, 128, 128)],
            1,
            Strategy::Hybrid,
            4,
            FusionPolicy::Auto,
            DType::F32,
        );
        let big = model.predict_seconds(
            &plan,
            &[(512, 512, 512)],
            1,
            Strategy::Hybrid,
            4,
            FusionPolicy::Auto,
            DType::F32,
        );
        assert!(small.is_finite() && small > 0.0);
        assert!(big > small);
    }
}
