//! Explore the algorithm catalog: validation, error parameters,
//! transformations and the algorithm-file formats.
//!
//! Run with: `cargo run --release --example algorithm_explorer`

use apa_repro::core::{brent, catalog, error_model, io, transform};

fn main() {
    println!("== Catalog ==");
    for alg in catalog::all() {
        let row = error_model::table1_row(&alg);
        println!(
            "  {:12} {:9} rank {:4}  speedup {:5.1}%  phi {}  predicted f32 error {:.1e}",
            row.name,
            format!("<{},{},{}>", row.dims.0, row.dims.1, row.dims.2),
            row.rank,
            row.speedup_pct,
            row.phi,
            row.error
        );
    }

    println!("\n== Brent validation of Bini's rule ==");
    let bini = catalog::bini322();
    let report = brent::validate(&bini).expect("catalog entries always validate");
    println!(
        "  exact: {}, sigma: {:?}, residual equations: {}",
        report.exact, report.sigma, report.residual_equations
    );

    println!("\n== Transformations ==");
    let rot = transform::rotate(&bini);
    println!("  rotate(bini322): {}", rot.summary());
    let sum = transform::direct_sum_m(&bini, &catalog::strassen());
    println!("  bini ⊕ strassen: {}", sum.summary());
    let tens = transform::tensor(&catalog::strassen(), &catalog::strassen());
    println!("  strassen ⊗ strassen: {}", tens.summary());

    println!("\n== Algorithm file formats ==");
    let text = io::to_text(&bini);
    println!("--- text form (first 12 lines) ---");
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    let parsed = io::from_text(&text).expect("round-trip");
    println!(
        "  parsed back: {} (validates: {})",
        parsed.summary(),
        brent::validate(&parsed).is_ok()
    );
    let json = io::to_json(&catalog::strassen());
    println!("  JSON form of strassen: {} bytes", json.len());
}
