//! Admission control in front of the submission queue.
//!
//! Two independent gates run **before** a request may touch the queue:
//!
//! 1. **Per-tenant token buckets** — each tenant refills at
//!    [`RateLimit::per_sec`] tokens per second up to [`RateLimit::burst`];
//!    a submission spends `cost` tokens (its batch-row weight). A dry
//!    bucket rejects with [`ServeError::RateLimited`] and an honest
//!    `retry_after` computed from the deficit, so a well-behaved client
//!    can sleep exactly long enough instead of hammering the service.
//! 2. **Cost-aware probabilistic shedding** — once the queue fill factor
//!    passes [`AdmissionConfig::shed_start`], every admission candidate
//!    survives an independent coin flip per unit of cost: survive
//!    probability `(1 - p)^cost` where `p` ramps linearly from 0 at
//!    `shed_start` to 1 at [`AdmissionConfig::shed_full`]. Heavier
//!    requests are therefore shed first — exactly the requests whose
//!    queue residency would hurt everyone else's deadline the most. A
//!    shed request rejects with [`ServeError::Overloaded`] and a
//!    `retry_after` scaled by how deep into the shedding band the queue
//!    sits.
//!
//! The coin flips use a deterministic xorshift stream seeded by
//! [`AdmissionConfig::seed`], so overload drills replay bit-identically.
//!
//! [`ServeError::RateLimited`]: crate::ServeError::RateLimited
//! [`ServeError::Overloaded`]: crate::ServeError::Overloaded

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A token-bucket rate limit: sustained `per_sec`, burst up to `burst`.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Tokens refilled per second (1 token = 1 unit of request cost).
    pub per_sec: f64,
    /// Bucket capacity — the largest burst a fully idle tenant may spend
    /// at once.
    pub burst: f64,
}

/// Admission-control knobs, fixed at service start.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Rate limit applied to every tenant without an entry in
    /// [`Self::tenant_limits`] — including the anonymous tenant (`None`).
    /// `None` disables rate limiting (shedding still applies).
    pub default_limit: Option<RateLimit>,
    /// Per-tenant overrides of [`Self::default_limit`].
    pub tenant_limits: Vec<(u64, RateLimit)>,
    /// Queue fill factor (depth / capacity) where probabilistic shedding
    /// begins.
    pub shed_start: f64,
    /// Fill factor at (and above) which every new request is shed.
    pub shed_full: f64,
    /// Base of the `retry_after` hint on [`ServeError::Overloaded`]; the
    /// hint grows with the overshoot past `shed_start`.
    ///
    /// [`ServeError::Overloaded`]: crate::ServeError::Overloaded
    pub retry_after_base: Duration,
    /// Seed of the deterministic shed-decision stream.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            default_limit: None,
            tenant_limits: Vec::new(),
            shed_start: 0.75,
            shed_full: 0.97,
            retry_after_base: Duration::from_millis(20),
            seed: 0x0A11_0C8E_D0F0_0D00,
        }
    }
}

/// Outcome of one admission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Let the request into the queue.
    Admit,
    /// The tenant's token bucket is dry; retry no sooner than this.
    RateLimited { retry_after: Duration },
    /// Shed by the overload gate; retry no sooner than this.
    Overloaded { retry_after: Duration },
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

struct Inner {
    buckets: HashMap<Option<u64>, Bucket>,
    /// xorshift64 state for shed coin flips (never zero).
    rng: u64,
}

/// The admission gate: token buckets plus cost-weighted shedding.
pub struct AdmissionController {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        let rng = config.seed | 1;
        Self {
            config,
            inner: Mutex::new(Inner {
                buckets: HashMap::new(),
                rng,
            }),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn limit_for(&self, tenant: Option<u64>) -> Option<RateLimit> {
        if let Some(id) = tenant {
            if let Some((_, limit)) = self.config.tenant_limits.iter().find(|(t, _)| *t == id) {
                return Some(*limit);
            }
        }
        self.config.default_limit
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decide one submission of weight `cost` (≥ 1; single rows cost 1)
    /// from `tenant`, with the queue currently at `fill` (depth /
    /// capacity). Token buckets are charged only when the request is
    /// actually admitted — a shed request never burns the tenant's
    /// budget.
    pub fn admit(&self, tenant: Option<u64>, cost: u32, fill: f64, now: Instant) -> AdmitDecision {
        let cost = cost.max(1);
        let limit = self.limit_for(tenant);
        let mut inner = self.lock();

        // Gate 1: the tenant bucket must hold `cost` tokens (checked
        // first so a rate-limited tenant gets the cheaper, more specific
        // answer even under overload).
        if let Some(limit) = limit {
            let bucket = inner.buckets.entry(tenant).or_insert(Bucket {
                tokens: limit.burst,
                last_refill: now,
            });
            let elapsed = now.saturating_duration_since(bucket.last_refill);
            bucket.tokens =
                (bucket.tokens + elapsed.as_secs_f64() * limit.per_sec).min(limit.burst.max(1.0));
            bucket.last_refill = now;
            if bucket.tokens < f64::from(cost) {
                let deficit = f64::from(cost) - bucket.tokens;
                let secs = if limit.per_sec > 0.0 {
                    deficit / limit.per_sec
                } else {
                    1.0
                };
                return AdmitDecision::RateLimited {
                    retry_after: Duration::from_secs_f64(secs.clamp(0.001, 60.0)),
                };
            }
        }

        // Gate 2: cost-weighted probabilistic shedding by queue fill.
        let (start, full) = (self.config.shed_start, self.config.shed_full);
        if fill >= start && full > start {
            let p = ((fill - start) / (full - start)).clamp(0.0, 1.0);
            let survive = (1.0 - p).powi(cost as i32);
            // xorshift64 → uniform in [0, 1).
            let mut x = inner.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            inner.rng = x;
            let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
            if draw >= survive {
                let scale = 1.0 + 4.0 * p;
                return AdmitDecision::Overloaded {
                    retry_after: Duration::from_secs_f64(
                        self.config.retry_after_base.as_secs_f64() * scale,
                    ),
                };
            }
        }

        // Admitted: charge the bucket now.
        if limit.is_some() {
            if let Some(bucket) = inner.buckets.get_mut(&tenant) {
                bucket.tokens -= f64::from(cost);
            }
        }
        AdmitDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn token_bucket_limits_sustained_rate_and_reports_retry_after() {
        let ctl = AdmissionController::new(AdmissionConfig {
            default_limit: Some(RateLimit {
                per_sec: 10.0,
                burst: 2.0,
            }),
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        // Burst of 2 passes, the third is limited.
        assert_eq!(ctl.admit(Some(7), 1, 0.0, t0), AdmitDecision::Admit);
        assert_eq!(ctl.admit(Some(7), 1, 0.0, t0), AdmitDecision::Admit);
        let third = ctl.admit(Some(7), 1, 0.0, t0);
        let AdmitDecision::RateLimited { retry_after } = third else {
            panic!("expected RateLimited, got {third:?}");
        };
        // Deficit of 1 token at 10/s → ~100ms.
        assert!(retry_after >= Duration::from_millis(90));
        assert!(retry_after <= Duration::from_millis(110));
        // After the hinted wait the bucket has refilled.
        assert_eq!(
            ctl.admit(Some(7), 1, 0.0, at(t0, 150)),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let ctl = AdmissionController::new(AdmissionConfig {
            default_limit: Some(RateLimit {
                per_sec: 1.0,
                burst: 1.0,
            }),
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        assert_eq!(ctl.admit(Some(1), 1, 0.0, t0), AdmitDecision::Admit);
        assert!(matches!(
            ctl.admit(Some(1), 1, 0.0, t0),
            AdmitDecision::RateLimited { .. }
        ));
        // Tenant 2 and the anonymous tenant still have full buckets.
        assert_eq!(ctl.admit(Some(2), 1, 0.0, t0), AdmitDecision::Admit);
        assert_eq!(ctl.admit(None, 1, 0.0, t0), AdmitDecision::Admit);
    }

    #[test]
    fn shedding_ramps_with_fill_and_is_total_at_shed_full() {
        let ctl = AdmissionController::new(AdmissionConfig {
            shed_start: 0.5,
            shed_full: 0.9,
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        // Below the band nothing is shed.
        for _ in 0..200 {
            assert_eq!(ctl.admit(None, 1, 0.4, t0), AdmitDecision::Admit);
        }
        // At/above shed_full everything is shed with a typed hint.
        for _ in 0..50 {
            assert!(matches!(
                ctl.admit(None, 1, 0.95, t0),
                AdmitDecision::Overloaded { .. }
            ));
        }
        // Mid-band: some shed, some admitted (deterministic stream, but
        // statistically both outcomes must appear over 400 draws).
        let mut admitted = 0u32;
        let mut shed = 0u32;
        for _ in 0..400 {
            match ctl.admit(None, 1, 0.7, t0) {
                AdmitDecision::Admit => admitted += 1,
                AdmitDecision::Overloaded { retry_after } => {
                    assert!(retry_after >= ctl.config().retry_after_base);
                    shed += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(admitted > 50, "admitted only {admitted}/400 at fill 0.7");
        assert!(shed > 50, "shed only {shed}/400 at fill 0.7");
    }

    #[test]
    fn heavier_requests_are_shed_first() {
        let mk = || {
            AdmissionController::new(AdmissionConfig {
                shed_start: 0.5,
                shed_full: 1.0,
                ..AdmissionConfig::default()
            })
        };
        let t0 = Instant::now();
        // Same deterministic stream, different costs: the heavy stream
        // must shed at least as much as the light one, and strictly more
        // over enough draws.
        let count_shed = |cost: u32| {
            let ctl = mk();
            (0..500)
                .filter(|_| {
                    matches!(
                        ctl.admit(None, cost, 0.6, t0),
                        AdmitDecision::Overloaded { .. }
                    )
                })
                .count()
        };
        let light = count_shed(1);
        let heavy = count_shed(16);
        assert!(
            heavy > light,
            "cost-16 shed {heavy} ≤ cost-1 shed {light} over 500 draws"
        );
    }

    #[test]
    fn shed_requests_do_not_burn_tenant_tokens() {
        let ctl = AdmissionController::new(AdmissionConfig {
            default_limit: Some(RateLimit {
                per_sec: 0.0,
                burst: 1.0,
            }),
            shed_start: 0.5,
            shed_full: 0.6,
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        // Shed above shed_full — the single token must survive…
        assert!(matches!(
            ctl.admit(Some(3), 1, 0.99, t0),
            AdmitDecision::Overloaded { .. }
        ));
        // …so the same tenant is admitted once pressure clears.
        assert_eq!(ctl.admit(Some(3), 1, 0.0, t0), AdmitDecision::Admit);
    }

    #[test]
    fn decisions_replay_deterministically_for_a_fixed_seed() {
        let run = || {
            let ctl = AdmissionController::new(AdmissionConfig {
                shed_start: 0.5,
                shed_full: 1.0,
                seed: 42,
                ..AdmissionConfig::default()
            });
            let t0 = Instant::now();
            (0..100)
                .map(|_| matches!(ctl.admit(None, 2, 0.75, t0), AdmitDecision::Admit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
