//! Factor sparsification: between ALS sweeps, push small coefficients to
//! zero and re-polish. Published algorithms have very sparse factors
//! (Strassen: ≤ 2 nonzeros per column); pure least-squares solutions are
//! dense, so a thresholding pass is how numerical searches (Smirnov's
//! included) arrive at *usable* algorithms.

use crate::als::{als_polish_pattern, AlsConfig, AlsResult};
use crate::linalg::DMat;

/// Zero out every entry with |value| ≤ `threshold`; returns the count of
/// entries cleared.
pub fn threshold_factor(m: &mut DMat, threshold: f64) -> usize {
    let mut cleared = 0;
    for v in &mut m.data {
        if v.abs() <= threshold && *v != 0.0 {
            *v = 0.0;
            cleared += 1;
        }
    }
    cleared
}

/// Total nonzeros across the three factors.
pub fn nnz(result: &AlsResult) -> usize {
    let count = |m: &DMat| m.data.iter().filter(|v| **v != 0.0).count();
    count(&result.u) + count(&result.v) + count(&result.w)
}

/// Iteratively sparsify a (near-)converged decomposition: threshold, then
/// re-polish with low-regularization ALS; keep the result only while the
/// residual stays below `residual_budget`. Returns the sparsest accepted
/// decomposition.
pub fn sparsify(
    result: &AlsResult,
    thresholds: &[f64],
    residual_budget: f64,
    polish: &AlsConfig,
) -> AlsResult {
    let mut best = result.clone();
    for &th in thresholds {
        let mut u = best.u.clone();
        let mut v = best.v.clone();
        let mut w = best.w.clone();
        let cleared = threshold_factor(&mut u, th)
            + threshold_factor(&mut v, th)
            + threshold_factor(&mut w, th);
        if cleared == 0 {
            continue;
        }
        // Pattern-constrained polish: ALS restricted to the thresholded
        // sparsity pattern — the zeros stay structurally zero, so the
        // candidate cannot drift back into a dense gauge orbit.
        let candidate = als_polish_pattern(best.dims, u, v, w, polish);
        let better_sparsity = nnz(&candidate) < nnz(&best);
        let better_residual = candidate.residual < best.residual;
        if candidate.residual <= residual_budget && (better_sparsity || better_residual) {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::relative_residual;
    use apa_core::{catalog, Dims};

    fn perturbed_strassen(noise: f64) -> AlsResult {
        let alg = catalog::strassen();
        let dense = |m: &apa_core::CoeffMatrix| {
            DMat::from_fn(4, 7, |i, t| {
                m.get(i, t).eval(0.0) + (((i * 13 + t * 7) % 11) as f64 - 5.0) * noise
            })
        };
        let d = Dims::new(2, 2, 2);
        let (u, v, w) = (dense(&alg.u), dense(&alg.v), dense(&alg.w));
        let residual = relative_residual(d, &u, &v, &w);
        AlsResult {
            dims: d,
            rank: 7,
            u,
            v,
            w,
            residual,
            iters: 0,
            converged: false,
        }
    }

    #[test]
    fn threshold_clears_small_entries_only() {
        let mut m = DMat::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.001 });
        let cleared = threshold_factor(&mut m, 0.01);
        assert_eq!(cleared, 2);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 1), 0.0);
    }

    #[test]
    fn sparsify_recovers_strassen_sparsity() {
        // A noisy Strassen has 84 dense entries; true Strassen has 36.
        let noisy = perturbed_strassen(0.004);
        assert!(
            nnz(&noisy) > 70,
            "perturbation should densify: {}",
            nnz(&noisy)
        );
        let polish = AlsConfig {
            reg: 1e-8,
            max_iters: 200,
            ..AlsConfig::default()
        };
        let sparse = sparsify(&noisy, &[0.02, 0.05, 0.1], 1e-6, &polish);
        assert!(
            sparse.residual < 1e-6,
            "sparsified residual {}",
            sparse.residual
        );
        assert!(
            nnz(&sparse) <= 40,
            "expected near-Strassen sparsity, got {} nonzeros",
            nnz(&sparse)
        );
    }

    #[test]
    fn sparsify_respects_residual_budget() {
        // An aggressive threshold that would destroy the decomposition
        // must be rejected (result keeps a valid residual).
        let noisy = perturbed_strassen(0.002);
        let polish = AlsConfig {
            reg: 1e-8,
            max_iters: 60,
            ..AlsConfig::default()
        };
        let out = sparsify(&noisy, &[10.0], 1e-6, &polish);
        // thresholding everything to zero cannot satisfy the budget, so
        // the original (or a better) decomposition is returned.
        assert!(out.residual <= noisy.residual);
        assert!(nnz(&out) > 0);
    }
}
