//! Criterion micro-benchmark for the workspace-reuse ablation: cached
//! (zero-allocation steady state) vs allocate-per-call execution of the
//! same APA plan on ParaDnn-style MLP layer shapes (square batch×width
//! products, the dominant matmul of the paper's §4.3 MLP sweep).
//!
//! Run with `cargo bench -p apa-bench --bench workspace`; the numbers feed
//! the allocation ablation table in EXPERIMENTS.md.

use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{ApaMatmul, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn probe(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("workspace_reuse");
    // ParaDnn MLP widths (batch = width). 512 stresses allocation overhead
    // relative to compute; 2048 shows the steady-state large-shape regime.
    // Sample counts shrink with n so the total run stays bounded while the
    // small shapes — where the effect lives — get stable medians.
    for (n, samples) in [(512usize, 30), (1024, 10), (2048, 4)] {
        group
            .sample_size(samples)
            .measurement_time(Duration::from_secs(1));
        let a = probe(n, 1);
        let b = probe(n, 2);
        let mut out = Mat::<f32>::zeros(n, n);
        let mm = ApaMatmul::new(catalog::by_name("fast444").unwrap())
            .steps(1)
            .strategy(Strategy::Seq)
            .threads(1);
        // Warm the cache once so `cached` measures pure steady state.
        mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut());
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |bench, _| {
            bench.iter(|| mm.multiply_into(a.as_ref(), b.as_ref(), out.as_mut()));
        });
        group.bench_with_input(BenchmarkId::new("alloc_per_call", n), &n, |bench, _| {
            bench.iter(|| mm.multiply_into_uncached(a.as_ref(), b.as_ref(), out.as_mut()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workspace_reuse);
criterion_main!(benches);
