//! Figure 3 — standalone square matmul performance: effective GFLOPS
//! (2n³/time) of every APA algorithm vs the classical gemm baseline.
//!
//! The paper runs this at 1 thread (Fig. 3a), 6 threads / one socket
//! (Fig. 3b) and 12 threads / two sockets (Fig. 3c). On this container the
//! >1-thread settings are oversubscribed onto fewer physical cores — the
//! > harness still exercises the hybrid schedule end to end, but wall-clock
//! > speedups are only meaningful at `--threads 1` unless you have the cores.
//!
//! Usage: `cargo run --release -p apa-bench --bin fig3 [--threads p] [--full] [--max N] [--reps k]`
//!   default dims: 512 1024 1536 2048; --full adds 3072 4096 6144 8192.

use apa_bench::{banner, effective_gflops, print_csv, print_table, time_min, Args};
use apa_core::catalog;
use apa_gemm::{gemm, Mat, Par};
use apa_matmul::{ApaMatmul, Strategy};

fn main() {
    let args = Args::parse();
    let threads = args.get("threads", 1usize);
    let reps = args.get("reps", 2usize);
    let mut dims = vec![512usize, 1024, 1536, 2048];
    if args.flag("full") {
        dims.extend([3072, 4096, 6144, 8192]);
    }
    let max = args.get("max", usize::MAX);
    dims.retain(|&n| n <= max);

    banner(
        &format!("Figure 3: effective GFLOPS vs dimension, {threads} thread(s)"),
        &[
            "effective GFLOPS counts 2n^3 classical flops for every algorithm (paper §3.3)",
            &format!("dims: {dims:?}; hybrid strategy; min of {reps} reps"),
            if threads > 1 {
                "NOTE: threads may be oversubscribed on this machine (DESIGN.md §7)"
            } else {
                "sequential setting (paper Fig. 3a)"
            },
        ],
    );

    let algs = catalog::paper_lineup();
    let par = if threads > 1 {
        Par::Threads(threads)
    } else {
        Par::Seq
    };

    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(dims.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    // Global warm-up: the first heavy kernel of the process otherwise pays
    // page-fault/frequency ramp costs that would taint the first cell.
    {
        let w = 1024.min(*dims.last().unwrap());
        let a = Mat::<f32>::from_fn(w, w, |i, j| (i + j) as f32 * 0.001);
        let b = a.clone();
        let mut c = Mat::<f32>::zeros(w, w);
        for _ in 0..3 {
            gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), par);
        }
    }

    // Classical baseline row.
    let mut baseline = vec!["classical(gemm)".to_string()];
    let mut baseline_times = Vec::new();
    for &n in &dims {
        let a = Mat::<f32>::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as f32 * 0.077 - 0.5);
        let b = Mat::<f32>::from_fn(n, n, |i, j| ((i + j * 3) % 11) as f32 * 0.09 - 0.45);
        let mut c = Mat::<f32>::zeros(n, n);
        let t = time_min(
            || gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), par),
            reps,
        );
        baseline_times.push(t);
        baseline.push(format!("{:.1}", effective_gflops(n, t)));
        eprintln!("  classical n={n}: {t:.3}s");
    }
    let mut rows = vec![baseline];

    for alg in &algs {
        let mm = ApaMatmul::new(alg.clone())
            .strategy(Strategy::Hybrid)
            .threads(threads);
        let mut row = vec![alg.name.clone()];
        for (di, &n) in dims.iter().enumerate() {
            let a = Mat::<f32>::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as f32 * 0.077 - 0.5);
            let b = Mat::<f32>::from_fn(n, n, |i, j| ((i + j * 3) % 11) as f32 * 0.09 - 0.45);
            let mut c = Mat::<f32>::zeros(n, n);
            let t = time_min(
                || mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut()),
                reps,
            );
            let speedup = (baseline_times[di] / t - 1.0) * 100.0;
            row.push(format!("{:.1} ({speedup:+.0}%)", effective_gflops(n, t)));
        }
        eprintln!("  measured {}", alg.name);
        rows.push(row);
    }

    print_table(&header_refs, &rows);
    println!();
    print_csv(&header_refs, &rows);
    println!();
    println!("expected shape (paper): APA algorithms cross above classical around n≈2000;");
    println!("<4,4,4>-class fastest sequentially (paper: +28% at n=8192, ours capped by");
    println!("rank 49 vs Smirnov's 46); at 12 threads only rules whose sub-multiplication");
    println!("count divides the thread count avoid the remainder penalty (paper: <4,2,2>).");
}
