//! Per-lane circuit breakers: route around a sick replica instead of
//! feeding it batches that keep panicking.
//!
//! Classic three-state machine, one breaker per lane:
//!
//! ```text
//!   Closed ──(trip_after consecutive batch failures)──► Open
//!   Open ──(cool-down elapses)──► HalfOpen
//!   HalfOpen ──(half_open_successes clean batches)──► Closed
//!   HalfOpen ──(any failure)──► Open (cool-down doubles, capped)
//! ```
//!
//! While open, [`CircuitBreaker::gate`] answers [`Gate::Blocked`] and the
//! lane *leaves its work in the queue* — the other lanes' `next_batch`
//! calls pick it up, which is the routing-around. The cool-down backs off
//! exponentially per consecutive trip and carries a deterministic,
//! seed-derived jitter so a fleet of lanes tripped by the same fault does
//! not re-probe in lockstep.
//!
//! The breaker never mutates replica state; recovery happens because the
//! replica's own guarded ladder demotes while the breaker holds traffic
//! off it.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Breaker tuning knobs, fixed at service start.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive batch failures (all attempts exhausted) that trip the
    /// breaker open.
    pub trip_after: u32,
    /// Cool-down after the first trip; doubles per consecutive trip.
    pub open_base: Duration,
    /// Upper bound of the cool-down.
    pub open_cap: Duration,
    /// Clean half-open batches required to close again.
    pub half_open_successes: u32,
    /// Jitter fraction on the cool-down: the actual cool-down is
    /// `base × (1 + jitter × u)` with a deterministic `u ∈ [0, 1)`.
    pub jitter: f64,
    /// Seed of the jitter stream (salted per lane by the service).
    pub seed: u64,
    /// Watchdog: a batch that takes longer than this counts as a breaker
    /// failure even when it eventually succeeds — a synchronous lane
    /// cannot abort a stalled inference, but it *can* stop taking new
    /// work afterwards. Its responses are still delivered. `None`
    /// disables the watchdog.
    pub stall_timeout: Option<Duration>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            open_base: Duration::from_millis(25),
            open_cap: Duration::from_secs(1),
            half_open_successes: 2,
            jitter: 0.2,
            seed: 0xB4EA_4E55_0C1C_0FF5,
            stall_timeout: None,
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// What the lane should do with the next batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Healthy: serve normally.
    Serve,
    /// Half-open: serve, but this batch is a probe — its outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Open: do not take work before `until`.
    Blocked { until: Instant },
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive trips (resets on close) — drives the backoff doubling.
    streak: u32,
    /// Lifetime trips, for stats.
    trips: u64,
    open_until: Instant,
    half_open_successes: u32,
    /// splitmix64 counter for the jitter stream.
    jitter_ctr: u64,
}

/// One lane's breaker.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CircuitBreaker {
    /// A closed breaker for `lane` (the lane index salts the jitter seed
    /// so co-tripped lanes de-synchronize).
    pub fn new(config: BreakerConfig, lane: usize) -> Self {
        let salt = splitmix64(config.seed ^ (lane as u64).rotate_left(17));
        Self {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                streak: 0,
                trips: 0,
                open_until: Instant::now(),
                half_open_successes: 0,
                jitter_ctr: salt,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Lifetime closed→open transitions.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    /// The lane's decision point before taking a batch.
    pub fn gate(&self, now: Instant) -> Gate {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Gate::Serve,
            BreakerState::HalfOpen => Gate::Probe,
            BreakerState::Open => {
                if now >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_successes = 0;
                    Gate::Probe
                } else {
                    Gate::Blocked {
                        until: inner.open_until,
                    }
                }
            }
        }
    }

    /// A batch completed cleanly.
    pub fn on_success(&self) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.half_open_successes += 1;
                if inner.half_open_successes >= self.config.half_open_successes.max(1) {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                    inner.streak = 0;
                }
            }
            // A success while open can only be a race with gate(); the
            // cool-down stands.
            BreakerState::Open => {}
        }
    }

    /// A batch exhausted every attempt (or the lane's watchdog fired).
    /// `allow_open` is the last-lane guard: when the caller knows every
    /// *other* lane is already blocked, pass `false` and the breaker
    /// stays closed — a degraded answer beats no lane serving at all.
    /// Returns `true` when this failure tripped the breaker open.
    pub fn on_failure(&self, now: Instant, allow_open: bool) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.trip_after.max(1) && allow_open {
                    self.trip(&mut inner, now);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                if allow_open {
                    self.trip(&mut inner, now);
                    true
                } else {
                    // Stay half-open: keep probing, it's the only lane.
                    inner.half_open_successes = 0;
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&self, inner: &mut Inner, now: Instant) {
        let shift = inner.streak.min(20);
        let base = self
            .config
            .open_base
            .saturating_mul(1u32 << shift.min(31))
            .min(self.config.open_cap)
            .max(Duration::from_millis(1));
        inner.jitter_ctr = inner.jitter_ctr.wrapping_add(1);
        let u = (splitmix64(inner.jitter_ctr) >> 11) as f64 / (1u64 << 53) as f64;
        let cooldown = base.mul_f64(1.0 + self.config.jitter.max(0.0) * u);
        inner.state = BreakerState::Open;
        inner.open_until = now + cooldown;
        inner.streak = inner.streak.saturating_add(1);
        inner.trips += 1;
        inner.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            open_base: Duration::from_millis(10),
            open_cap: Duration::from_millis(100),
            half_open_successes: 2,
            jitter: 0.0,
            seed: 1,
            stall_timeout: None,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_then_blocks() {
        let b = CircuitBreaker::new(cfg(), 0);
        let t0 = Instant::now();
        assert_eq!(b.gate(t0), Gate::Serve);
        assert!(!b.on_failure(t0, true));
        assert!(!b.on_failure(t0, true));
        assert!(b.on_failure(t0, true));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        let Gate::Blocked { until } = b.gate(t0) else {
            panic!("expected Blocked");
        };
        assert_eq!(until, t0 + Duration::from_millis(10));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(cfg(), 0);
        let t0 = Instant::now();
        b.on_failure(t0, true);
        b.on_failure(t0, true);
        b.on_success();
        b.on_failure(t0, true);
        b.on_failure(t0, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_after_clean_batches() {
        let b = CircuitBreaker::new(cfg(), 0);
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0, true);
        }
        // Cool-down over → probe.
        let t1 = t0 + Duration::from_millis(11);
        assert_eq!(b.gate(t1), Gate::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(t1), Gate::Serve);
    }

    #[test]
    fn half_open_failure_reopens_with_doubled_cooldown() {
        let b = CircuitBreaker::new(cfg(), 0);
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0, true);
        }
        let t1 = t0 + Duration::from_millis(11);
        assert_eq!(b.gate(t1), Gate::Probe);
        assert!(b.on_failure(t1, true));
        assert_eq!(b.trips(), 2);
        let Gate::Blocked { until } = b.gate(t1) else {
            panic!("expected Blocked");
        };
        // Second trip: 10ms << 1 = 20ms.
        assert_eq!(until, t1 + Duration::from_millis(20));
    }

    #[test]
    fn cooldown_backoff_is_capped() {
        let b = CircuitBreaker::new(cfg(), 0);
        let mut now = Instant::now();
        for _ in 0..10 {
            for _ in 0..3 {
                b.on_failure(now, true);
            }
            // Walk past the cool-down so the next round trips from
            // half-open.
            now += Duration::from_millis(500);
            let _ = b.gate(now);
        }
        for _ in 0..3 {
            b.on_failure(now, true);
        }
        let Gate::Blocked { until } = b.gate(now) else {
            panic!("expected Blocked");
        };
        assert!(until - now <= Duration::from_millis(100));
    }

    #[test]
    fn last_lane_guard_keeps_the_breaker_closed() {
        let b = CircuitBreaker::new(cfg(), 0);
        let t0 = Instant::now();
        for _ in 0..10 {
            assert!(!b.on_failure(t0, false));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn jitter_extends_cooldown_deterministically_per_lane() {
        let mk = |lane| {
            CircuitBreaker::new(
                BreakerConfig {
                    jitter: 0.5,
                    seed: 7,
                    ..cfg()
                },
                lane,
            )
        };
        let t0 = Instant::now();
        let open_until = |b: &CircuitBreaker| {
            for _ in 0..3 {
                b.on_failure(t0, true);
            }
            match b.gate(t0) {
                Gate::Blocked { until } => until,
                g => panic!("expected Blocked, got {g:?}"),
            }
        };
        let a1 = open_until(&mk(0));
        let a2 = open_until(&mk(0));
        let c = open_until(&mk(1));
        // Same lane + seed → identical; base ≤ jittered ≤ 1.5 × base.
        assert_eq!(a1, a2);
        assert!(a1 >= t0 + Duration::from_millis(10));
        assert!(a1 <= t0 + Duration::from_millis(15));
        // Different lanes de-synchronize.
        assert_ne!(a1, c);
    }
}
