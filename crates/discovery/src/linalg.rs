//! Minimal dense linear algebra for the ALS solver: small row-major
//! matrices, Gram products and an LU solve with partial pivoting. The
//! factor matrices involved are at most a few hundred rows by ~100 columns,
//! so simplicity beats blocking here.

/// Dense row-major f64 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DMat {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl DMat {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `selfᵀ · self` (`cols × cols` Gram matrix).
    pub fn gram(&self) -> DMat {
        let c = self.cols;
        let mut g = DMat::zeros(c, c);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..c {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for (b, &rb) in row.iter().enumerate().skip(a) {
                    g.data[a * c + b] += ra * rb;
                }
            }
        }
        for a in 0..c {
            for b in 0..a {
                g.data[a * c + b] = g.data[b * c + a];
            }
        }
        g
    }

    /// Elementwise (Hadamard) product — used for Khatri-Rao Gram identities.
    pub fn hadamard(&self, other: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Add `reg` to the diagonal (Tikhonov).
    pub fn add_diag(&mut self, reg: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += reg;
        }
    }
}

/// Solve `A · Xᵀ = Bᵀ` for X where A is `n × n` and B is `m × n`
/// (i.e. each row of B is a right-hand side; the result has B's shape).
/// LU with partial pivoting; A is consumed.
pub fn solve_rows(mut a: DMat, b: &DMat) -> Option<DMat> {
    let n = a.rows;
    assert_eq!(a.cols, n, "A must be square");
    assert_eq!(b.cols, n, "RHS width must match A");
    let mut perm: Vec<usize> = (0..n).collect();

    // LU factorization.
    for col in 0..n {
        // Pivot.
        let (mut pivot_row, mut pivot_val) = (col, a.at(col, col).abs());
        for r in col + 1..n {
            let v = a.at(r, col).abs();
            if v > pivot_val {
                pivot_row = r;
                pivot_val = v;
            }
        }
        if pivot_val < 1e-14 {
            return None; // singular
        }
        if pivot_row != col {
            for j in 0..n {
                let (x, y) = (a.at(col, j), a.at(pivot_row, j));
                a.set(col, j, y);
                a.set(pivot_row, j, x);
            }
            perm.swap(col, pivot_row);
        }
        let inv = 1.0 / a.at(col, col);
        for r in col + 1..n {
            let factor = a.at(r, col) * inv;
            a.set(r, col, factor);
            for j in col + 1..n {
                let v = a.at(r, j) - factor * a.at(col, j);
                a.set(r, j, v);
            }
        }
    }

    // Solve for each row of B.
    let mut out = DMat::zeros(b.rows, n);
    let mut y = vec![0.0f64; n];
    for r in 0..b.rows {
        let rhs = b.row(r);
        // Forward substitution with permutation.
        for i in 0..n {
            let mut s = rhs[perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= a.at(i, j) * yj;
            }
            y[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= a.at(i, j) * out.at(r, j);
            }
            out.set(r, i, s / a.at(i, i));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_is_symmetric_and_correct() {
        let m = DMat::from_fn(3, 2, |i, j| (i + 2 * j) as f64);
        let g = m.gram();
        // column 0 = [0,1,2], column 1 = [2,3,4]
        assert_eq!(g.at(0, 0), 5.0);
        assert_eq!(g.at(1, 1), 29.0);
        assert_eq!(g.at(0, 1), 11.0);
        assert_eq!(g.at(1, 0), 11.0);
    }

    #[test]
    fn solve_identity() {
        let a = DMat::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = DMat::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let x = solve_rows(a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_random_system_roundtrip() {
        // x·Aᵀ = b with known x: construct b = x·Aᵀ and recover x.
        let a = DMat::from_fn(4, 4, |i, j| {
            ((i * 7 + j * 3) % 5) as f64 + if i == j { 3.0 } else { 0.0 }
        });
        let x_true = DMat::from_fn(2, 4, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let mut b = DMat::zeros(2, 4);
        for r in 0..2 {
            for i in 0..4 {
                let mut s = 0.0;
                for j in 0..4 {
                    s += a.at(i, j) * x_true.at(r, j);
                }
                b.set(r, i, s);
            }
        }
        let x = solve_rows(a, &b).unwrap();
        for r in 0..2 {
            for j in 0..4 {
                assert!((x.at(r, j) - x_true.at(r, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DMat::from_fn(2, 2, |_, _| 1.0);
        let b = DMat::from_fn(1, 2, |_, j| j as f64);
        assert!(solve_rows(a, &b).is_none());
    }

    #[test]
    fn hadamard_and_diag() {
        let a = DMat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = DMat::from_fn(2, 2, |_, _| 2.0);
        let mut h = a.hadamard(&b);
        assert_eq!(h.at(1, 1), 4.0);
        h.add_diag(0.5);
        assert_eq!(h.at(0, 0), 0.5);
        assert_eq!(h.at(1, 1), 4.5);
    }
}
