//! Arbitrary-dimension handling: dynamic peeling and zero padding.
//!
//! A one-step rule ⟨m,k,n⟩ needs its operands divisible by (m, k, n).
//! Two standard remedies, both implemented so the ablation bench can
//! compare them:
//!
//! * **dynamic peeling** — round each dimension *down* to a multiple, run
//!   the fast rule on the core, and finish the thin rims with classical
//!   gemm. No copies of the operands, extra work `O(n²·base)`.
//! * **zero padding** — round each dimension *up*, copy into padded
//!   buffers, run the fast rule, copy the result back. Simpler arithmetic
//!   but three buffer copies and wasted flops on the border.
//!
//! Each entry point comes in two flavors: the plain one allocates its
//! buffers per call, the `*_ws` one executes out of a caller-owned
//! [`Workspace`] (core buffer tree *and* pad buffers) so warm calls touch
//! the heap not at all. Both run the same engine and produce bitwise
//! identical results.

use crate::exec::{fast_matmul_chain_into, run_level, with_uniform_chain};
use crate::plan::ExecPlan;
use crate::schedule::{FusionPolicy, Strategy};
use crate::workspace::{chain_divisor, PadBufs, Workspace};
use apa_gemm::{gemm, Mat, MatMut, MatRef, Par, Scalar};
use serde::Serialize;
use std::borrow::Borrow;

/// How to reconcile arbitrary dimensions with the rule's base dims.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PeelMode {
    /// Core via the fast rule, rims via classical gemm.
    Dynamic,
    /// Pad operands up to the next multiple with zeros.
    Pad,
}

/// `C ← Â·B̂` for arbitrary shapes.
#[allow(clippy::too_many_arguments)]
pub fn fast_matmul_any_into<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
    mode: PeelMode,
    fusion: FusionPolicy,
) {
    // steps = 0 yields an empty chain, i.e. plain gemm.
    with_uniform_chain(plan, steps, |chain| {
        fast_matmul_chain_any_into(chain, a, b, c, strategy, threads, mode, fusion)
    })
}

/// [`fast_matmul_any_into`] executing out of a preallocated [`Workspace`]
/// built by [`Workspace::for_plan`] for the same configuration.
#[allow(clippy::too_many_arguments)]
pub fn fast_matmul_any_into_ws<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
    mode: PeelMode,
    fusion: FusionPolicy,
    ws: &mut Workspace<T>,
) {
    with_uniform_chain(plan, steps, |chain| {
        fast_matmul_chain_any_into_ws(chain, a, b, c, strategy, threads, mode, fusion, ws)
    })
}

/// Non-stationary variant of [`fast_matmul_any_into`]: arbitrary shapes
/// with a chain of rules (one per recursion level). The peel divisor is
/// the elementwise product of the chain's base dims.
#[allow(clippy::too_many_arguments)]
pub fn fast_matmul_chain_any_into<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    chain: &[P],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
    mode: PeelMode,
    fusion: FusionPolicy,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "inner dimensions must match");
    assert_eq!((m, n), (c.rows(), c.cols()), "C shape mismatch");

    let (dm, dk, dn) = chain_divisor(chain);
    if m % dm == 0 && k % dk == 0 && n % dn == 0 {
        fast_matmul_chain_into(chain, a, b, c, strategy, threads, fusion);
        return;
    }

    match mode {
        PeelMode::Dynamic => peel_dynamic(a, b, c, threads, (dm, dk, dn), |ac, bc, cc| {
            fast_matmul_chain_into(chain, ac, bc, cc, strategy, threads, fusion)
        }),
        PeelMode::Pad => {
            let (mp, kp, np) = (
                m.div_ceil(dm) * dm,
                k.div_ceil(dk) * dk,
                n.div_ceil(dn) * dn,
            );
            let mut pad = PadBufs {
                ap: Mat::<T>::zeros(mp, kp),
                bp: Mat::<T>::zeros(kp, np),
                cp: Mat::<T>::zeros(mp, np),
            };
            run_padded(a, b, c, &mut pad, |ac, bc, cc| {
                fast_matmul_chain_into(chain, ac, bc, cc, strategy, threads, fusion)
            });
        }
    }
}

/// Workspace-backed variant of [`fast_matmul_chain_any_into`]. Panics if
/// `ws` was sized for a different configuration (shape, chain structure,
/// strategy, threads or peel mode) — build one with
/// [`Workspace::for_chain`] using the exact same arguments.
#[allow(clippy::too_many_arguments)]
pub fn fast_matmul_chain_any_into_ws<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    chain: &[P],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
    mode: PeelMode,
    fusion: FusionPolicy,
    ws: &mut Workspace<T>,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "inner dimensions must match");
    assert_eq!((m, n), (c.rows(), c.cols()), "C shape mismatch");
    assert!(
        ws.matches(chain, m, k, n, strategy, threads, mode, fusion),
        "workspace was built for {:?}, called with ({m}×{k}×{n}, {strategy:?}, {threads} threads, {mode:?}, {fusion:?})",
        ws.key()
    );
    ws.note_run();
    let Workspace { root, pad, .. } = ws;

    let (dm, dk, dn) = chain_divisor(chain);
    if m % dm == 0 && k % dk == 0 && n % dn == 0 {
        run_level(chain, a, b, c, strategy, threads, root);
        return;
    }

    match mode {
        PeelMode::Dynamic => peel_dynamic(a, b, c, threads, (dm, dk, dn), |ac, bc, cc| {
            run_level(chain, ac, bc, cc, strategy, threads, root)
        }),
        PeelMode::Pad => {
            let pad = pad
                .as_mut()
                .expect("Pad-mode workspace carries pad buffers");
            run_padded(a, b, c, pad, |ac, bc, cc| {
                run_level(chain, ac, bc, cc, strategy, threads, root)
            });
        }
    }
}

/// Split into (core | rim), run `core` on the divisible core and classical
/// gemm on the rims.
fn peel_dynamic<T: Scalar>(
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    threads: usize,
    (dm, dk, dn): (usize, usize, usize),
    core: impl FnOnce(MatRef<'_, T>, MatRef<'_, T>, MatMut<'_, T>),
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mc = m / dm * dm;
    let kc = k / dk * dk;
    let nc = n / dn * dn;
    let par = if threads > 1 {
        Par::Threads(threads)
    } else {
        Par::Seq
    };

    if mc == 0 || kc == 0 || nc == 0 {
        // Too small for even one base block: the whole thing is a rim.
        gemm(T::ONE, a, b, T::ZERO, c, par);
        return;
    }

    // Partition (core | rim) in every dimension:
    // A = [A11 A12; A21 A22], B = [B11 B12; B21 B22].
    let a11 = a.subview(0, 0, mc, kc);
    let a12 = a.subview(0, kc, mc, k - kc);
    let a21 = a.subview(mc, 0, m - mc, kc);
    let a22 = a.subview(mc, kc, m - mc, k - kc);
    let b11 = b.subview(0, 0, kc, nc);
    let b12 = b.subview(0, nc, kc, n - nc);
    let b21 = b.subview(kc, 0, k - kc, nc);
    let b22 = b.subview(kc, nc, k - kc, n - nc);

    let (c_top, c_bottom) = c.split_at_row(mc);
    let (mut c11, mut c12) = c_top.split_at_col(nc);
    let (mut c21, mut c22) = c_bottom.split_at_col(nc);

    // C11 = fast(A11·B11) + A12·B21.
    core(a11, b11, c11.rb());
    if k > kc {
        gemm(T::ONE, a12, b21, T::ONE, c11.rb(), par);
    }
    // Rims are entirely classical.
    if n > nc {
        gemm(T::ONE, a11, b12, T::ZERO, c12.rb(), par);
        gemm(T::ONE, a12, b22, T::ONE, c12.rb(), par);
    }
    if m > mc {
        gemm(T::ONE, a21, b11, T::ZERO, c21.rb(), par);
        gemm(T::ONE, a22, b21, T::ONE, c21.rb(), par);
        if n > nc {
            gemm(T::ONE, a21, b12, T::ZERO, c22.rb(), par);
            gemm(T::ONE, a22, b22, T::ONE, c22.rb(), par);
        }
    }
}

/// Copy the operands into the (zero-bordered) pad buffers, run `core` on
/// the padded shapes, copy the live region of the result back. Only the
/// live top-left regions are written, so the zero borders established at
/// construction survive workspace reuse.
fn run_padded<T: Scalar>(
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
    pad: &mut PadBufs<T>,
    core: impl FnOnce(MatRef<'_, T>, MatRef<'_, T>, MatMut<'_, T>),
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    pad.ap.as_mut().subview_mut(0, 0, m, k).copy_from(a);
    pad.bp.as_mut().subview_mut(0, 0, k, n).copy_from(b);
    core(pad.ap.as_ref(), pad.bp.as_ref(), pad.cp.as_mut());
    c.copy_from(pad.cp.as_ref().subview(0, 0, m, n));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecPlan;
    use apa_core::catalog;
    use apa_gemm::matmul_naive;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check(alg_name: &str, m: usize, k: usize, n: usize, mode: PeelMode, tol: f64) {
        let alg = catalog::by_name(alg_name).unwrap();
        let lambda = if alg.is_exact_rule() {
            0.0
        } else {
            2.0_f64.powi(-26)
        };
        let plan = ExecPlan::compile(&alg, lambda);
        let a = rand_mat(m, k, 21);
        let b = rand_mat(k, n, 22);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for fusion in [FusionPolicy::Auto, FusionPolicy::Never] {
            let mut c = Mat::zeros(m, n);
            fast_matmul_any_into(
                &plan,
                a.as_ref(),
                b.as_ref(),
                c.as_mut(),
                1,
                Strategy::Seq,
                1,
                mode,
                fusion,
            );
            let err = c.rel_frobenius_error(&expect);
            assert!(
                err < tol,
                "{alg_name} {mode:?} {fusion:?} ({m},{k},{n}): err {err}"
            );

            // The workspace-backed path must agree bitwise, warm or cold,
            // under the same fusion policy.
            let mut ws =
                Workspace::<f64>::for_plan(&plan, m, k, n, 1, Strategy::Seq, 1, mode, fusion);
            for _ in 0..2 {
                let mut c_ws = Mat::zeros(m, n);
                fast_matmul_any_into_ws(
                    &plan,
                    a.as_ref(),
                    b.as_ref(),
                    c_ws.as_mut(),
                    1,
                    Strategy::Seq,
                    1,
                    mode,
                    fusion,
                    &mut ws,
                );
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(
                            c.at(i, j).to_bits(),
                            c_ws.at(i, j).to_bits(),
                            "workspace path diverged at ({i},{j}) under {fusion:?}"
                        );
                    }
                }
            }
            assert_eq!(ws.runs(), 2);
        }
    }

    #[test]
    fn peeling_handles_every_offset() {
        // Strassen base 2: all parities of every dimension.
        for dm in 0..2 {
            for dk in 0..2 {
                for dn in 0..2 {
                    check(
                        "strassen",
                        16 + dm,
                        16 + dk,
                        16 + dn,
                        PeelMode::Dynamic,
                        1e-12,
                    );
                    check("strassen", 16 + dm, 16 + dk, 16 + dn, PeelMode::Pad, 1e-12);
                }
            }
        }
    }

    #[test]
    fn peeling_bini_rectangular_base() {
        // base (3,2,2): awkward offsets.
        for (m, k, n) in [(31, 21, 23), (30, 20, 21), (32, 22, 22), (10, 7, 9)] {
            check("bini322", m, k, n, PeelMode::Dynamic, 1e-6);
            check("bini322", m, k, n, PeelMode::Pad, 1e-6);
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_gemm() {
        check("fast444", 3, 3, 3, PeelMode::Dynamic, 1e-12);
        check("fast444", 3, 3, 3, PeelMode::Pad, 1e-12);
        check("fast555", 2, 9, 2, PeelMode::Dynamic, 1e-12);
    }

    #[test]
    fn divisible_dims_take_fast_path() {
        check("fast444", 16, 16, 16, PeelMode::Dynamic, 1e-12);
        check("fast444", 16, 16, 16, PeelMode::Pad, 1e-12);
    }

    #[test]
    fn two_step_divisor_is_respected() {
        // steps = 2 with Strassen: needs divisibility by 4; 18 is not,
        // so peel must kick in and still be correct.
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let a = rand_mat(18, 18, 30);
        let b = rand_mat(18, 18, 31);
        let mut c = Mat::zeros(18, 18);
        fast_matmul_any_into(
            &plan,
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            2,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn chain_peeling_handles_awkward_shapes() {
        // Bini then Strassen needs divisibility by (6,4,4); 25×13×17 has
        // none of it, so peeling covers everything.
        let bini = ExecPlan::compile(&catalog::bini322(), 2.0_f64.powi(-22));
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = rand_mat(25, 13, 60);
        let b = rand_mat(13, 17, 61);
        let mut c = Mat::zeros(25, 17);
        for mode in [PeelMode::Dynamic, PeelMode::Pad] {
            fast_matmul_chain_any_into(
                &[&bini, &strassen],
                a.as_ref(),
                b.as_ref(),
                c.as_mut(),
                Strategy::Seq,
                1,
                mode,
                FusionPolicy::Auto,
            );
            let expect = matmul_naive(a.as_ref(), b.as_ref());
            assert!(c.rel_frobenius_error(&expect) < 1e-5, "{mode:?}");
        }
    }

    #[test]
    fn parallel_peeling_matches() {
        let alg = catalog::bini322();
        let plan = ExecPlan::compile(&alg, 2.0_f64.powi(-26));
        let a = rand_mat(25, 13, 40);
        let b = rand_mat(13, 17, 41);
        let mut seq = Mat::zeros(25, 17);
        let mut par = Mat::zeros(25, 17);
        fast_matmul_any_into(
            &plan,
            a.as_ref(),
            b.as_ref(),
            seq.as_mut(),
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        fast_matmul_any_into(
            &plan,
            a.as_ref(),
            b.as_ref(),
            par.as_mut(),
            1,
            Strategy::Hybrid,
            3,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        assert!(par.rel_frobenius_error(&seq) < 1e-12);
    }

    #[test]
    fn workspace_mismatch_panics() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let mut ws = Workspace::<f64>::for_plan(
            &plan,
            16,
            16,
            16,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        let a = rand_mat(18, 16, 70);
        let b = rand_mat(16, 16, 71);
        let mut c = Mat::zeros(18, 16);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fast_matmul_any_into_ws(
                &plan,
                a.as_ref(),
                b.as_ref(),
                c.as_mut(),
                1,
                Strategy::Seq,
                1,
                PeelMode::Dynamic,
                FusionPolicy::Auto,
                &mut ws,
            )
        }));
        assert!(err.is_err(), "shape mismatch must not execute");
    }
}
