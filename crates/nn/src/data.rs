//! Datasets: batching/shuffling, the IDX (MNIST) loader, and the synthetic
//! MNIST generator.
//!
//! The paper trains on MNIST [LeCun et al. 98]. The dataset files are not
//! redistributable inside this repository, so the default experiments use a
//! **synthetic MNIST**: procedurally rendered 28×28 digit images
//! (seven-segment strokes with per-sample translation, thickness-blurred
//! edges, intensity jitter and pixel noise). The task keeps the tensor
//! shapes (784 features, 10 classes) and — like MNIST — is learnable to
//! high accuracy by an MLP, which is what the accuracy experiment needs:
//! a task where APA-induced matmul error *could* show up as degraded
//! train/test accuracy. If real MNIST IDX files are present (see
//! [`load_mnist_idx`]), the harnesses use them instead.

use apa_gemm::Mat;
use bytes::Buf;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::path::Path;

/// A labelled dense dataset: `len × features` images, one byte label each.
pub struct Dataset {
    images: Mat<f32>,
    labels: Vec<u8>,
    num_classes: usize,
}

impl Dataset {
    pub fn new(images: Mat<f32>, labels: Vec<u8>, num_classes: usize) -> Self {
        assert_eq!(images.rows(), labels.len(), "one label per row required");
        Self {
            images,
            labels,
            num_classes,
        }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn features(&self) -> usize {
        self.images.cols()
    }

    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    pub fn images(&self) -> &Mat<f32> {
        &self.images
    }

    /// A deterministic shuffled index order for one epoch.
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }

    /// Materialize a batch from row indices.
    pub fn gather(&self, indices: &[usize]) -> (Mat<f32>, Vec<u8>) {
        let f = self.features();
        let mut x = Mat::zeros(indices.len(), f);
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            let src = &self.images.as_slice()[i * f..(i + 1) * f];
            x.as_mut_slice()[row * f..(row + 1) * f].copy_from_slice(src);
            labels.push(self.labels[i]);
        }
        (x, labels)
    }

    /// Split into (front `n`, rest).
    pub fn split_at(self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len());
        let f = self.features();
        let front_img = Mat::from_vec(n, f, self.images.as_slice()[..n * f].to_vec());
        let back_img = Mat::from_vec(self.len() - n, f, self.images.as_slice()[n * f..].to_vec());
        (
            Dataset::new(front_img, self.labels[..n].to_vec(), self.num_classes),
            Dataset::new(back_img, self.labels[n..].to_vec(), self.num_classes),
        )
    }
}

// ---------------------------------------------------------------------------
// Synthetic MNIST
// ---------------------------------------------------------------------------

const SIDE: usize = 28;

/// Segment masks per digit (seven-segment layout: a top, b top-right,
/// c bottom-right, d bottom, e bottom-left, f top-left, g middle).
const SEGMENTS: [&[u8]; 10] = [
    b"abcdef",  // 0
    b"bc",      // 1
    b"abged",   // 2
    b"abgcd",   // 3
    b"fgbc",    // 4
    b"afgcd",   // 5
    b"afgedc",  // 6
    b"abc",     // 7
    b"abcdefg", // 8
    b"abcdfg",  // 9
];

/// Stroke endpoints per segment in the 28×28 canvas (x, y), pre-jitter.
fn segment_line(seg: u8) -> ((f32, f32), (f32, f32)) {
    let (left, right, top, mid, bottom) = (9.0, 19.0, 5.0, 14.0, 23.0);
    match seg {
        b'a' => ((left, top), (right, top)),
        b'b' => ((right, top), (right, mid)),
        b'c' => ((right, mid), (right, bottom)),
        b'd' => ((left, bottom), (right, bottom)),
        b'e' => ((left, mid), (left, bottom)),
        b'f' => ((left, top), (left, mid)),
        b'g' => ((left, mid), (right, mid)),
        _ => unreachable!("unknown segment"),
    }
}

/// Render one digit image with per-sample randomness.
fn render_digit(digit: u8, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let mut img = vec![0.0f32; SIDE * SIDE];
    let dx: f32 = rng.gen_range(-2.0..2.0);
    let dy: f32 = rng.gen_range(-2.0..2.0);
    let thickness: f32 = rng.gen_range(1.0..1.9);
    let base_intensity: f32 = rng.gen_range(0.75..1.0);

    for &seg in SEGMENTS[digit as usize] {
        let ((x0, y0), (x1, y1)) = segment_line(seg);
        let (x0, y0, x1, y1) = (x0 + dx, y0 + dy, x1 + dx, y1 + dy);
        let seg_intensity = base_intensity * rng.gen_range(0.85..1.0);
        // Distance-to-segment rendering with a soft edge.
        let (min_x, max_x) = (x0.min(x1) - 2.0, x0.max(x1) + 2.0);
        let (min_y, max_y) = (y0.min(y1) - 2.0, y0.max(y1) + 2.0);
        for py in (min_y.max(0.0) as usize)..=(max_y.min((SIDE - 1) as f32) as usize) {
            for px in (min_x.max(0.0) as usize)..=(max_x.min((SIDE - 1) as f32) as usize) {
                let d = point_segment_distance(px as f32, py as f32, x0, y0, x1, y1);
                let v =
                    seg_intensity * (1.0 - ((d - thickness * 0.5) / 0.8).max(0.0)).clamp(0.0, 1.0);
                let cell = &mut img[py * SIDE + px];
                *cell = cell.max(v);
            }
        }
    }
    // Pixel noise.
    for v in &mut img {
        *v = (*v + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
    }
    img
}

fn point_segment_distance(px: f32, py: f32, x0: f32, y0: f32, x1: f32, y1: f32) -> f32 {
    let (vx, vy) = (x1 - x0, y1 - y0);
    let (wx, wy) = (px - x0, py - y0);
    let len2 = vx * vx + vy * vy;
    let t = if len2 <= f32::EPSILON {
        0.0
    } else {
        ((wx * vx + wy * vy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (x0 + t * vx, y0 + t * vy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Generate a balanced synthetic-MNIST dataset of `n` samples.
pub fn synthetic_mnist(n: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut images = Mat::zeros(n, SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = (i % 10) as u8;
        let img = render_digit(digit, &mut rng);
        images.as_mut_slice()[i * SIDE * SIDE..(i + 1) * SIDE * SIDE].copy_from_slice(&img);
        labels.push(digit);
    }
    // Shuffle rows so class order is not systematic.
    let ds = Dataset::new(images, labels, 10);
    let order = ds.shuffled_indices(seed ^ 0x5EED);
    let (x, y) = ds.gather(&order);
    Dataset::new(x, y, 10)
}

/// Paper-style train/test pair (60 000 / 10 000 at full scale).
pub fn synthetic_mnist_split(n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
    let all = synthetic_mnist(n_train + n_test, seed);
    all.split_at(n_train)
}

// ---------------------------------------------------------------------------
// IDX (real MNIST) loader
// ---------------------------------------------------------------------------

/// Which IDX file a [`DataError`] refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdxKind {
    Images,
    Labels,
}

impl IdxKind {
    fn noun(self) -> &'static str {
        match self {
            IdxKind::Images => "image",
            IdxKind::Labels => "label",
        }
    }
}

/// Typed IDX-parsing / dataset-loading failure, carrying enough context
/// (expected vs actual magic/length, offending path) to diagnose a bad
/// download or a truncated file without re-running under a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// The file does not start with the IDX magic for its kind.
    BadMagic {
        kind: IdxKind,
        expected: u32,
        got: u32,
    },
    /// The file is shorter than its own header declares.
    Truncated {
        kind: IdxKind,
        /// Total bytes the header implies the file must hold.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Filesystem failure (path and OS message).
    Io { path: String, msg: String },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::BadMagic {
                kind,
                expected,
                got,
            } => write!(
                f,
                "bad IDX {} magic: expected {expected:#010x}, got {got:#010x}",
                kind.noun()
            ),
            DataError::Truncated {
                kind,
                expected,
                got,
            } => write!(
                f,
                "IDX {} file truncated: header implies {expected} bytes, file has {got}",
                kind.noun()
            ),
            DataError::Io { path, msg } => write!(f, "cannot read {path}: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

const IDX_IMAGE_MAGIC: u32 = 0x0000_0803;
const IDX_LABEL_MAGIC: u32 = 0x0000_0801;

/// Parse an `idx3-ubyte` image file into row-major normalized f32 rows.
pub fn parse_idx_images(data: &[u8]) -> Result<Mat<f32>, DataError> {
    let mut buf = data;
    if buf.remaining() < 16 {
        return Err(DataError::Truncated {
            kind: IdxKind::Images,
            expected: 16,
            got: data.len(),
        });
    }
    let magic = buf.get_u32();
    if magic != IDX_IMAGE_MAGIC {
        return Err(DataError::BadMagic {
            kind: IdxKind::Images,
            expected: IDX_IMAGE_MAGIC,
            got: magic,
        });
    }
    let count = buf.get_u32() as usize;
    let rows = buf.get_u32() as usize;
    let cols = buf.get_u32() as usize;
    let pixels = count * rows * cols;
    if buf.remaining() < pixels {
        return Err(DataError::Truncated {
            kind: IdxKind::Images,
            expected: 16 + pixels,
            got: data.len(),
        });
    }
    let mut images = Mat::zeros(count, rows * cols);
    let slice = images.as_mut_slice();
    for (dst, &px) in slice.iter_mut().zip(buf.chunk().iter().take(pixels)) {
        *dst = px as f32 / 255.0;
    }
    Ok(images)
}

/// Parse an `idx1-ubyte` label file.
pub fn parse_idx_labels(data: &[u8]) -> Result<Vec<u8>, DataError> {
    let mut buf = data;
    if buf.remaining() < 8 {
        return Err(DataError::Truncated {
            kind: IdxKind::Labels,
            expected: 8,
            got: data.len(),
        });
    }
    let magic = buf.get_u32();
    if magic != IDX_LABEL_MAGIC {
        return Err(DataError::BadMagic {
            kind: IdxKind::Labels,
            expected: IDX_LABEL_MAGIC,
            got: magic,
        });
    }
    let count = buf.get_u32() as usize;
    if buf.remaining() < count {
        return Err(DataError::Truncated {
            kind: IdxKind::Labels,
            expected: 8 + count,
            got: data.len(),
        });
    }
    Ok(buf.chunk()[..count].to_vec())
}

/// Load real MNIST from a directory holding the four canonical
/// (uncompressed) IDX files, with a typed error naming the first file
/// that failed. [`load_mnist_idx`] is the `Option` convenience.
pub fn try_load_mnist_idx(dir: &Path) -> Result<(Dataset, Dataset), DataError> {
    let read = |name: &str| {
        let path = dir.join(name);
        fs::read(&path).map_err(|e| DataError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })
    };
    let train = Dataset::new(
        parse_idx_images(&read("train-images-idx3-ubyte")?)?,
        parse_idx_labels(&read("train-labels-idx1-ubyte")?)?,
        10,
    );
    let test = Dataset::new(
        parse_idx_images(&read("t10k-images-idx3-ubyte")?)?,
        parse_idx_labels(&read("t10k-labels-idx1-ubyte")?)?,
        10,
    );
    Ok((train, test))
}

/// Load real MNIST, or `None` when the files are absent or unreadable so
/// the harnesses can fall back to the synthetic generator.
pub fn load_mnist_idx(dir: &Path) -> Option<(Dataset, Dataset)> {
    try_load_mnist_idx(dir).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_digits_have_structure() {
        let ds = synthetic_mnist(100, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.features(), 784);
        // Every image must have ink, and the mean ink must differ across
        // class pairs (1 is sparse, 8 is dense).
        let mut class_ink = [0.0f64; 10];
        let mut class_count = [0usize; 10];
        for i in 0..ds.len() {
            let row = &ds.images().as_slice()[i * 784..(i + 1) * 784];
            let ink: f32 = row.iter().sum();
            assert!(ink > 1.0, "image {i} is blank");
            let l = ds.labels()[i] as usize;
            class_ink[l] += ink as f64;
            class_count[l] += 1;
        }
        let mean = |c: usize| class_ink[c] / class_count[c] as f64;
        assert!(mean(8) > mean(1) * 1.5, "8 should be inkier than 1");
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = synthetic_mnist(20, 7);
        let b = synthetic_mnist(20, 7);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        assert_eq!(a.labels(), b.labels());
        let c = synthetic_mnist(20, 8);
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn classes_are_balanced() {
        let ds = synthetic_mnist(200, 3);
        let mut counts = [0usize; 10];
        for &l in ds.labels() {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn shuffled_indices_are_permutations() {
        let ds = synthetic_mnist(50, 2);
        let idx = ds.shuffled_indices(9);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(idx, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
        assert_eq!(idx, ds.shuffled_indices(9), "determinism");
    }

    #[test]
    fn gather_extracts_rows() {
        let images = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f32);
        let ds = Dataset::new(images, vec![0, 1, 2, 3], 4);
        let (x, labels) = ds.gather(&[2, 0]);
        assert_eq!(labels, vec![2, 0]);
        assert_eq!(x.at(0, 0), 6.0);
        assert_eq!(x.at(1, 2), 2.0);
    }

    #[test]
    fn split_preserves_rows() {
        let ds = synthetic_mnist(30, 4);
        let first_row = ds.images().as_slice()[..784].to_vec();
        let (train, test) = ds.split_at(20);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(&train.images().as_slice()[..784], &first_row[..]);
    }

    #[test]
    fn idx_roundtrip() {
        // Build a tiny idx pair in memory.
        let mut img = vec![0u8, 0, 8, 3]; // magic 0x803
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&2u32.to_be_bytes());
        img.extend_from_slice(&[0, 255, 128, 64, 255, 0, 0, 32]);
        let m = parse_idx_images(&img).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 4));
        assert_eq!(m.at(0, 1), 1.0);
        assert!((m.at(0, 2) - 128.0 / 255.0).abs() < 1e-6);

        let mut lbl = vec![0u8, 0, 8, 1]; // magic 0x801
        lbl.extend_from_slice(&2u32.to_be_bytes());
        lbl.extend_from_slice(&[7, 3]);
        assert_eq!(parse_idx_labels(&lbl).unwrap(), vec![7, 3]);
    }

    #[test]
    fn idx_rejects_bad_input_with_typed_errors() {
        // Too short for even a header.
        assert_eq!(
            parse_idx_images(&[1, 2, 3]),
            Err(DataError::Truncated {
                kind: IdxKind::Images,
                expected: 16,
                got: 3
            })
        );
        // An image magic fed to the label parser.
        assert_eq!(
            parse_idx_labels(&[0, 0, 8, 3, 0, 0, 0, 1, 5]),
            Err(DataError::BadMagic {
                kind: IdxKind::Labels,
                expected: 0x0000_0801,
                got: 0x0000_0803,
            })
        );
        // A header promising 100 28×28 images with no pixel payload: the
        // error reports expected vs actual byte counts.
        let mut truncated = vec![0u8, 0, 8, 3];
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(&28u32.to_be_bytes());
        truncated.extend_from_slice(&28u32.to_be_bytes());
        assert_eq!(
            parse_idx_images(&truncated),
            Err(DataError::Truncated {
                kind: IdxKind::Images,
                expected: 16 + 100 * 28 * 28,
                got: 16,
            })
        );
    }

    #[test]
    fn truncated_fixture_on_disk_is_reported_with_its_length() {
        // Regression: a partially-downloaded MNIST file must surface as a
        // typed Truncated error (not a panic, not a silent short dataset).
        let dir = std::env::temp_dir().join(format!("apa-idx-truncated-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        // Valid 2-image / 2-label fixtures...
        let mut img = vec![0u8, 0, 8, 3];
        for dim in [2u32, 2, 2] {
            img.extend_from_slice(&dim.to_be_bytes());
        }
        img.extend_from_slice(&[0; 8]);
        let mut lbl = vec![0u8, 0, 8, 1];
        lbl.extend_from_slice(&2u32.to_be_bytes());
        lbl.extend_from_slice(&[0, 1]);
        fs::write(dir.join("train-images-idx3-ubyte"), &img).unwrap();
        fs::write(dir.join("train-labels-idx1-ubyte"), &lbl).unwrap();
        fs::write(dir.join("t10k-labels-idx1-ubyte"), &lbl).unwrap();
        // ...except the test images, cut off mid-payload.
        fs::write(dir.join("t10k-images-idx3-ubyte"), &img[..img.len() - 3]).unwrap();

        assert_eq!(
            try_load_mnist_idx(&dir).err(),
            Some(DataError::Truncated {
                kind: IdxKind::Images,
                expected: 16 + 8,
                got: img.len() - 3,
            })
        );
        assert!(
            load_mnist_idx(&dir).is_none(),
            "Option convenience stays lenient"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_mnist_idx_absent_names_the_missing_path() {
        let err = try_load_mnist_idx(Path::new("/nonexistent/dir"))
            .err()
            .expect("missing dir must error");
        match err {
            DataError::Io { ref path, .. } => {
                assert!(path.contains("train-images-idx3-ubyte"), "{err}")
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(load_mnist_idx(Path::new("/nonexistent/dir")).is_none());
    }

    #[test]
    fn mlp_can_learn_synthetic_digits() {
        // End-to-end sanity: a small MLP reaches decent accuracy fast.
        use crate::backend::classical;
        use crate::net::Mlp;
        let (train, test) = synthetic_mnist_split(600, 100, 5);
        let mut net = Mlp::new(&[784, 64, 10], vec![classical(1); 2], 11);
        for e in 0..8 {
            net.train_epoch(&train, 50, 0.1, e);
        }
        let acc = net.evaluate(&test, 100);
        assert!(acc > 0.8, "test accuracy {acc}");
    }
}
