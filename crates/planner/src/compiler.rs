//! The plan compiler: enumerate (catalog rule × recursion depth × CSE)
//! candidates, filter by the §2.3 error bound against the request's
//! target, rank by the analytic [`MachineModel`], optionally refine the
//! short-list by micro-measurement, and remember the winner in a memory
//! cache backed by the on-disk [`PlanStore`].
//!
//! A [`CompiledPlan`] is deliberately *flat*: it is exactly the set of
//! knobs the hand-tuned `ApaMatmul` builder exposes, so every compiled
//! plan reduces to one explicit-flag configuration
//! ([`CompiledPlan::to_matmul`]) and the explicit path stays available as
//! both escape hatch and bitwise equivalence baseline.

use crate::cost::MachineModel;
use crate::request::{DType, PlanRequest};
use crate::store::{Calibration, PlanStore};
use apa_core::{brent, catalog, error_model};
use apa_gemm::Mat;
use apa_matmul::{
    plan_additions, ApaMatmul, ClassicalMatmul, ExecPlan, FusionPolicy, GuardedApaMatmul, Strategy,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// The sentinel rule name for "don't approximate, call classical gemm".
pub const CLASSICAL_RULE: &str = "classical";

/// A validated, serializable execution recipe for one request: which
/// catalog rule (or [`CLASSICAL_RULE`]), how deep to recurse, which λ,
/// and the executor knobs. Plus the compiler's predictions, kept so a
/// store entry can be audited after the fact.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledPlan {
    /// Catalog rule name, or [`CLASSICAL_RULE`].
    pub rule: String,
    pub steps: u32,
    pub lambda: f64,
    pub strategy: Strategy,
    pub fusion: FusionPolicy,
    pub threads: usize,
    /// Whether the U/V/W addition-CSE rewrite is applied.
    pub cse: bool,
    /// The cost model's (or measurement's) wall-clock estimate for the
    /// request's full shape chain.
    pub predicted_seconds: f64,
    /// The §2.3 `error_bound` for the chosen rule at the chosen depth.
    pub predicted_error: f64,
    /// Linear-combination additions per recursion level before CSE.
    pub additions_before: u32,
    /// Additions after CSE (equal to `additions_before` when `cse` is
    /// off).
    pub additions_after: u32,
}

/// Why a [`CompiledPlan`] could not be turned into an executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan names a rule this build's catalog does not contain.
    UnknownRule { rule: String },
    /// The plan is classical; there is no [`ApaMatmul`] to build. Use
    /// [`CompiledPlan::build`] to get the [`PlanExec`] wrapper instead.
    ClassicalPlan,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownRule { rule } => write!(f, "unknown catalog rule {rule:?}"),
            PlanError::ClassicalPlan => {
                write!(f, "plan is classical; build() it instead of to_matmul()")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The executable a plan builds to: an approximating multiplier or the
/// classical baseline, behind one calling surface. The `ApaMatmul` is
/// boxed — it carries the full execution plan, hundreds of bytes next
/// to the `Copy` classical config.
#[derive(Debug)]
pub enum PlanExec {
    Apa(Box<ApaMatmul>),
    Classical(ClassicalMatmul),
}

impl PlanExec {
    pub fn multiply_into<T: apa_gemm::Scalar>(
        &self,
        a: apa_gemm::MatRef<'_, T>,
        b: apa_gemm::MatRef<'_, T>,
        c: apa_gemm::MatMut<'_, T>,
    ) {
        match self {
            PlanExec::Apa(mm) => mm.multiply_into(a, b, c),
            PlanExec::Classical(mm) => mm.multiply_into(a, b, c),
        }
    }

    pub fn multiply<T: apa_gemm::Scalar>(
        &self,
        a: apa_gemm::MatRef<'_, T>,
        b: apa_gemm::MatRef<'_, T>,
    ) -> Mat<T> {
        match self {
            PlanExec::Apa(mm) => mm.multiply(a, b),
            PlanExec::Classical(mm) => mm.multiply(a, b),
        }
    }

    /// Pre-build workspaces for the given shapes (no-op for classical).
    pub fn warm<T: apa_gemm::Scalar>(&self, shapes: &[(usize, usize, usize)]) {
        if let PlanExec::Apa(mm) = self {
            mm.warm::<T>(shapes);
        }
    }

    pub fn rule_name(&self) -> &str {
        match self {
            PlanExec::Apa(mm) => &mm.plan().name,
            PlanExec::Classical(_) => CLASSICAL_RULE,
        }
    }
}

/// Build an executor straight from a [`CompiledPlan`] — implemented for
/// [`ApaMatmul`] and [`GuardedApaMatmul`] so existing call sites can
/// adopt the compiler without changing their executor type.
pub trait FromPlan: Sized {
    fn from_plan(plan: &CompiledPlan) -> Result<Self, PlanError>;
}

impl FromPlan for ApaMatmul {
    fn from_plan(plan: &CompiledPlan) -> Result<Self, PlanError> {
        plan.to_matmul()
    }
}

impl FromPlan for GuardedApaMatmul {
    fn from_plan(plan: &CompiledPlan) -> Result<Self, PlanError> {
        Ok(GuardedApaMatmul::from_matmul(plan.to_matmul()?))
    }
}

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::Seq => 0,
        Strategy::Dfs => 1,
        Strategy::Bfs => 2,
        Strategy::Hybrid => 3,
    }
}

fn strategy_from(code: u8) -> Option<Strategy> {
    Some(match code {
        0 => Strategy::Seq,
        1 => Strategy::Dfs,
        2 => Strategy::Bfs,
        3 => Strategy::Hybrid,
        _ => return None,
    })
}

fn fusion_code(f: FusionPolicy) -> u8 {
    match f {
        FusionPolicy::Auto => 0,
        FusionPolicy::Always => 1,
        FusionPolicy::Never => 2,
    }
}

fn fusion_from(code: u8) -> Option<FusionPolicy> {
    Some(match code {
        0 => FusionPolicy::Auto,
        1 => FusionPolicy::Always,
        2 => FusionPolicy::Never,
        _ => return None,
    })
}

impl CompiledPlan {
    pub fn is_classical(&self) -> bool {
        self.rule == CLASSICAL_RULE
    }

    /// Reduce to the explicit hand-flagged [`ApaMatmul`] configuration —
    /// the escape-hatch/equivalence contract: a compiled plan is nothing
    /// the builder could not express.
    pub fn to_matmul(&self) -> Result<ApaMatmul, PlanError> {
        if self.is_classical() {
            return Err(PlanError::ClassicalPlan);
        }
        let alg = catalog::by_name(&self.rule).ok_or_else(|| PlanError::UnknownRule {
            rule: self.rule.clone(),
        })?;
        // λ is pinned *after* steps: the stored λ already accounts for
        // depth and dtype, and must survive the depth-dependent default.
        Ok(ApaMatmul::new(alg)
            .steps(self.steps)
            .lambda(self.lambda)
            .strategy(self.strategy)
            .threads(self.threads)
            .fusion(self.fusion)
            .cse(self.cse))
    }

    /// Build the executor, classical plans included.
    pub fn build(&self) -> Result<PlanExec, PlanError> {
        if self.is_classical() {
            Ok(PlanExec::Classical(
                ClassicalMatmul::new().threads(self.threads),
            ))
        } else {
            Ok(PlanExec::Apa(Box::new(self.to_matmul()?)))
        }
    }

    /// Stable binary encoding (bitwise round-trip; see the store docs).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut enc = crate::codec::Enc::new();
        enc.put_str(&self.rule);
        enc.put_u32(self.steps);
        enc.put_f64(self.lambda);
        enc.put_u8(strategy_code(self.strategy));
        enc.put_u8(fusion_code(self.fusion));
        enc.put_u64(self.threads as u64);
        enc.put_u8(self.cse as u8);
        enc.put_f64(self.predicted_seconds);
        enc.put_f64(self.predicted_error);
        enc.put_u32(self.additions_before);
        enc.put_u32(self.additions_after);
        enc.into_bytes()
    }

    /// Decode [`Self::encode`] output; `None` on any malformed input
    /// (short buffer, unknown enum code, trailing garbage).
    pub(crate) fn decode(bytes: &[u8]) -> Option<Self> {
        let mut dec = crate::codec::Dec::new(bytes);
        let plan = CompiledPlan {
            rule: dec.get_str().ok()?,
            steps: dec.get_u32().ok()?,
            lambda: dec.get_f64().ok()?,
            strategy: strategy_from(dec.get_u8().ok()?)?,
            fusion: fusion_from(dec.get_u8().ok()?)?,
            threads: dec.get_u64().ok()? as usize,
            cse: match dec.get_u8().ok()? {
                0 => false,
                1 => true,
                _ => return None,
            },
            predicted_seconds: dec.get_f64().ok()?,
            predicted_error: dec.get_f64().ok()?,
            additions_before: dec.get_u32().ok()?,
            additions_after: dec.get_u32().ok()?,
        };
        if dec.remaining() != 0 {
            return None;
        }
        Some(plan)
    }
}

struct CompilerState {
    mem: HashMap<Vec<u8>, CompiledPlan>,
    store: Option<PlanStore>,
    store_loaded: bool,
}

/// The compiler: a machine model, an optional persistent store, and a
/// process-lifetime memory cache. Compiles are deterministic for a given
/// (request, kernel tier) unless measured refinement is enabled.
pub struct PlanCompiler {
    model: MachineModel,
    store_dir: Option<PathBuf>,
    measured: bool,
    state: Mutex<CompilerState>,
}

impl PlanCompiler {
    /// Memory-cache-only compiler (nothing touches disk).
    pub fn new() -> Self {
        PlanCompiler {
            model: MachineModel::detect(),
            store_dir: None,
            measured: false,
            state: Mutex::new(CompilerState {
                mem: HashMap::new(),
                store: None,
                store_loaded: false,
            }),
        }
    }

    /// Compiler persisting to `dir/plans.bin`. The store is loaded
    /// lazily on the first compile; an invalid or foreign file is counted
    /// as a retune and replaced on the next save.
    pub fn with_store(dir: impl Into<PathBuf>) -> Self {
        let mut c = Self::new();
        c.store_dir = Some(dir.into());
        c
    }

    /// Rank with an explicit [`MachineModel`] instead of the detected
    /// one — what-if analysis and tier-sensitivity tests.
    pub fn with_model(model: MachineModel) -> Self {
        let mut c = Self::new();
        c.model = model;
        c
    }

    /// Enable micro-measurement refinement of the analytic short-list.
    /// Off by default: measurement trades determinism for fidelity, so it
    /// is opt-in (`APA_PLAN_TUNE=1` for the [`global`] compiler).
    pub fn measured(mut self, on: bool) -> Self {
        self.measured = on;
        self
    }

    /// Compile (or recall) the plan for `req`.
    pub fn compile(&self, req: &PlanRequest) -> CompiledPlan {
        let key = req.key_bytes();
        let mut state = self.state.lock().unwrap();

        if let Some(plan) = state.mem.get(&key) {
            crate::stats::note_hit();
            return plan.clone();
        }

        if !state.store_loaded {
            state.store_loaded = true;
            if let Some(dir) = &self.store_dir {
                state.store = Some(match PlanStore::load(dir) {
                    Ok(store) => store,
                    Err(_) => {
                        // Corrupt / truncated / foreign-hardware store:
                        // start empty and re-tune rather than trust it.
                        crate::stats::note_retune();
                        PlanStore::empty(dir)
                    }
                });
            }
        }

        // Measured mode probes the machine once per store: streaming
        // bandwidth plus the parallel-scaling curve, persisted in the v2
        // calibration block so later (analytic) processes benefit too.
        if (self.measured || measured_env())
            && state
                .store
                .as_ref()
                .is_some_and(|s| s.calibration().is_none())
        {
            let cal = measure_calibration();
            if let Some(store) = state.store.as_mut() {
                store.set_calibration(cal);
                let _ = store.save();
            }
        }
        let model = match state.store.as_ref().and_then(|s| s.calibration()) {
            Some(cal) => self
                .model
                .clone()
                .calibrated(cal.bandwidth_bytes_per_sec, &cal.parallel_points),
            None => self.model.clone(),
        };

        if let Some(plan) = state.store.as_ref().and_then(|s| s.get(&key)).cloned() {
            crate::stats::note_hit();
            state.mem.insert(key, plan.clone());
            return plan;
        }

        crate::stats::note_miss();
        let plan = self.search(req, &model);
        state.mem.insert(key.clone(), plan.clone());
        if let Some(store) = state.store.as_mut() {
            store.insert(key, plan.clone());
            // Persistence is best-effort: a read-only cache dir degrades
            // to per-process compilation, never to a failed multiply.
            let _ = store.save();
        }
        plan
    }

    /// Number of plans in the memory cache (diagnostics/tests).
    pub fn cached(&self) -> usize {
        self.state.lock().unwrap().mem.len()
    }

    /// Enumerate, filter, rank — see the module docs. Always returns a
    /// plan: classical is unconditionally a candidate and satisfies every
    /// error target at working precision.
    ///
    /// `model` is the effective machine model — the compiler's analytic
    /// model overlaid with any persisted calibration. With a measured
    /// scaling curve the thread budget is *enumerated* (powers of two up
    /// to the request's budget) per candidate instead of assumed: on a
    /// machine where 8 threads measure like 3, the byte traffic and
    /// load-imbalance penalties can make a smaller lane count win, and
    /// `CompiledPlan::threads` records the measured-best choice.
    /// Uncalibrated models keep the historical "use the full budget"
    /// behavior exactly (a linear curve always weakly prefers it).
    fn search(&self, req: &PlanRequest, model: &MachineModel) -> CompiledPlan {
        let d = req.dtype.mantissa_digits();
        let thread_options: Vec<usize> = if model.parallel_points.is_empty() {
            vec![req.threads]
        } else {
            let mut opts = Vec::new();
            let mut t = 1usize;
            while t < req.threads.max(1) {
                opts.push(t);
                t *= 2;
            }
            opts.push(req.threads.max(1));
            opts
        };
        // Ties resolve toward more threads, so a saturated (flat) scaling
        // curve still fills the requested budget rather than shrinking it.
        let best_over_threads = |cost: &dyn Fn(usize) -> f64| -> (usize, f64) {
            let mut best = (thread_options[0], cost(thread_options[0]));
            for &t in &thread_options[1..] {
                let s = cost(t);
                if s <= best.1 {
                    best = (t, s);
                }
            }
            best
        };

        let (cl_threads, cl_seconds) =
            best_over_threads(&|t| model.predict_classical_seconds(&req.shapes, t, req.dtype));
        let mut candidates = vec![CompiledPlan {
            rule: CLASSICAL_RULE.to_string(),
            steps: 0,
            lambda: 0.0,
            strategy: Strategy::Seq,
            fusion: FusionPolicy::Auto,
            threads: cl_threads,
            cse: false,
            predicted_seconds: cl_seconds,
            predicted_error: (2.0f64).powi(-(d as i32)),
            additions_before: 0,
            additions_after: 0,
        }];

        for alg in catalog::paper_lineup() {
            let sigma = match brent::validate(&alg) {
                Ok(report) => report.sigma.unwrap_or(0),
                Err(_) => continue,
            };
            let phi = alg.phi();
            for steps in [1u32, 2] {
                if !self.divides_all(&req.shapes, &alg, steps) {
                    // An indivisible chain degenerates to peel-heavy
                    // execution the flop/byte model can't credit — the
                    // analytic fallback would *under*-count it (classical
                    // flops but fewer modeled output writes) and beat
                    // classical on shapes the rule can't even divide.
                    // Don't offer the candidate; the explicit builder
                    // remains the escape hatch for deliberate peeling.
                    continue;
                }
                let err = error_model::error_bound(sigma, phi, d, steps);
                if err > req.target_error {
                    continue;
                }
                let lambda = error_model::optimal_lambda(sigma, phi, d, steps);
                for cse in [false, true] {
                    let mut plan = ExecPlan::compile(&alg, lambda);
                    let before = plan_additions(&plan) as u32;
                    let after = if cse {
                        apa_matmul::cse::apply(&mut plan);
                        plan_additions(&plan) as u32
                    } else {
                        before
                    };
                    let strategy = Strategy::Hybrid;
                    let fusion = FusionPolicy::Auto;
                    let (threads, mut seconds) = best_over_threads(&|t| {
                        model.predict_seconds(
                            &plan,
                            &req.shapes,
                            steps,
                            strategy,
                            t,
                            fusion,
                            req.dtype,
                        )
                    });
                    if cse {
                        // CSE trims combination additions, not products;
                        // credit it proportionally so ties break toward
                        // fewer additions.
                        let saved = (before - after) as f64;
                        seconds *= 1.0 - 0.01 * (saved / before.max(1) as f64);
                    }
                    candidates.push(CompiledPlan {
                        rule: alg.name.clone(),
                        steps,
                        lambda,
                        strategy,
                        fusion,
                        threads,
                        cse,
                        predicted_seconds: seconds,
                        predicted_error: err,
                        additions_before: before,
                        additions_after: after,
                    });
                }
            }
        }

        // Deterministic ranking: cost, then name, then depth, then CSE
        // (so equal-cost candidates resolve identically on every run —
        // the cold/warm determinism gate depends on this).
        candidates.sort_by(|a, b| {
            a.predicted_seconds
                .total_cmp(&b.predicted_seconds)
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.steps.cmp(&b.steps))
                .then_with(|| a.cse.cmp(&b.cse))
        });

        if self.measured || measured_env() {
            self.refine(&mut candidates, req);
        }
        candidates.remove(0)
    }

    fn divides_all(
        &self,
        shapes: &[(usize, usize, usize)],
        alg: &apa_core::BilinearAlgorithm,
        steps: u32,
    ) -> bool {
        let (dm, dk, dn) = (
            alg.dims.m.pow(steps),
            alg.dims.k.pow(steps),
            alg.dims.n.pow(steps),
        );
        shapes
            .iter()
            .all(|&(m, k, n)| m % dm == 0 && k % dk == 0 && n % dn == 0)
    }

    /// Micro-time the analytic top three on the request's first shape and
    /// re-rank by measured wall clock.
    fn refine(&self, candidates: &mut [CompiledPlan], req: &PlanRequest) {
        let top = candidates.len().min(3);
        let shape = req.shapes[0];
        let mut timed: Vec<(f64, CompiledPlan)> = candidates[..top]
            .iter()
            .map(|c| (measure_candidate(c, shape, req.dtype), c.clone()))
            .collect();
        timed.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (slot, (seconds, mut plan)) in candidates[..top].iter_mut().zip(timed) {
            plan.predicted_seconds = seconds;
            *slot = plan;
        }
    }
}

impl Default for PlanCompiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Probe this machine once: streaming bandwidth plus the parallel gemm
/// speedup curve at power-of-two lane counts up to the physical core
/// count. Only invoked under measured tuning (`APA_PLAN_TUNE=1` or
/// [`PlanCompiler::measured`]) — the probes cost real gemm time.
fn measure_calibration() -> Calibration {
    let cores = apa_gemm::topology().slots.len().max(1);
    let mut lane_counts = vec![1usize];
    let mut t = 2usize;
    while t <= cores {
        lane_counts.push(t);
        t *= 2;
    }
    if *lane_counts.last().unwrap() != cores {
        lane_counts.push(cores);
    }
    let n = 256;
    let base = apa_gemm::probe_parallel_gflops::<f32>(1, n, 2).max(1e-9);
    let mut points = vec![(1u32, 1.0f64)];
    for &lanes in &lane_counts[1..] {
        let gflops = apa_gemm::probe_parallel_gflops::<f32>(lanes, n, 2);
        points.push((lanes as u32, (gflops / base).max(0.01)));
    }
    Calibration {
        bandwidth_bytes_per_sec: apa_gemm::probe_bandwidth_bytes(),
        parallel_points: points,
    }
}

fn measured_env() -> bool {
    std::env::var("APA_PLAN_TUNE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn measure_candidate(plan: &CompiledPlan, shape: (usize, usize, usize), dtype: DType) -> f64 {
    fn time_one<T: apa_gemm::Scalar>(exec: &PlanExec, (m, k, n): (usize, usize, usize)) -> f64 {
        let a = Mat::<T>::from_fn(m, k, |i, j| {
            T::from_f64(((i * 31 + j * 7) % 13) as f64 * 0.05)
        });
        let b = Mat::<T>::from_fn(k, n, |i, j| {
            T::from_f64(((i * 17 + j * 3) % 11) as f64 * 0.07)
        });
        let mut c = Mat::<T>::zeros(m, n);
        exec.multiply_into(a.as_ref(), b.as_ref(), c.as_mut()); // warmup
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = std::time::Instant::now();
            exec.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }
    match plan.build() {
        Ok(exec) => match dtype {
            DType::F32 => time_one::<f32>(&exec, shape),
            DType::F64 => time_one::<f64>(&exec, shape),
        },
        Err(_) => f64::INFINITY,
    }
}

static GLOBAL: OnceLock<PlanCompiler> = OnceLock::new();

/// The process-wide compiler, persisting under [`crate::plan_dir`], with
/// measured refinement when `APA_PLAN_TUNE=1`.
pub fn global() -> &'static PlanCompiler {
    GLOBAL.get_or_init(|| PlanCompiler::with_store(crate::plan_dir()))
}

/// Compile `req` with the [`global`] compiler.
pub fn compile(req: &PlanRequest) -> CompiledPlan {
    global().compile(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanRequest;

    #[test]
    fn encode_decode_roundtrip_is_bitwise() {
        let plan = CompiledPlan {
            rule: "strassen".to_string(),
            steps: 2,
            lambda: 1.0 / 3.0,
            strategy: Strategy::Hybrid,
            fusion: FusionPolicy::Never,
            threads: 8,
            cse: true,
            predicted_seconds: 1.25e-3,
            predicted_error: 9.5e-5,
            additions_before: 24,
            additions_after: 18,
        };
        let back = CompiledPlan::decode(&plan.encode()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.lambda.to_bits(), plan.lambda.to_bits());
        assert_eq!(back.encode(), plan.encode());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let good = CompiledPlan {
            rule: "bini322".to_string(),
            steps: 1,
            lambda: 0.01,
            strategy: Strategy::Seq,
            fusion: FusionPolicy::Auto,
            threads: 1,
            cse: false,
            predicted_seconds: 0.0,
            predicted_error: 0.0,
            additions_before: 0,
            additions_after: 0,
        }
        .encode();
        assert!(
            CompiledPlan::decode(&good[..good.len() - 1]).is_none(),
            "truncated"
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(
            CompiledPlan::decode(&trailing).is_none(),
            "trailing garbage"
        );
        let mut bad_code = good.clone();
        // The strategy byte sits right after rule (4+7 bytes), steps (4)
        // and lambda (8).
        bad_code[4 + 7 + 4 + 8] = 99;
        assert!(
            CompiledPlan::decode(&bad_code).is_none(),
            "unknown strategy code"
        );
    }

    #[test]
    fn classical_plan_builds_but_has_no_matmul() {
        let plan = CompiledPlan {
            rule: CLASSICAL_RULE.to_string(),
            steps: 0,
            lambda: 0.0,
            strategy: Strategy::Seq,
            fusion: FusionPolicy::Auto,
            threads: 2,
            cse: false,
            predicted_seconds: 0.0,
            predicted_error: 0.0,
            additions_before: 0,
            additions_after: 0,
        };
        assert_eq!(plan.to_matmul().unwrap_err(), PlanError::ClassicalPlan);
        assert!(matches!(plan.build().unwrap(), PlanExec::Classical(_)));
    }

    #[test]
    fn unknown_rule_is_a_typed_error() {
        let plan = CompiledPlan {
            rule: "schönhage".to_string(),
            steps: 1,
            lambda: 0.0,
            strategy: Strategy::Seq,
            fusion: FusionPolicy::Auto,
            threads: 1,
            cse: false,
            predicted_seconds: 0.0,
            predicted_error: 0.0,
            additions_before: 0,
            additions_after: 0,
        };
        assert!(matches!(
            plan.to_matmul(),
            Err(PlanError::UnknownRule { .. })
        ));
    }

    #[test]
    fn compile_is_deterministic_and_cached() {
        let compiler = PlanCompiler::new();
        let req = PlanRequest::new(256, 256, 256).threads(4);
        let first = compiler.compile(&req);
        let second = compiler.compile(&req);
        assert_eq!(first, second);
        assert_eq!(compiler.cached(), 1);
        // A fresh compiler (cold cache) picks the identical plan.
        assert_eq!(PlanCompiler::new().compile(&req), first);
    }

    #[test]
    fn tight_error_target_forces_exact_rules() {
        // 1e-6 sits below every approximate rule's §2.3 bound at f32
        // (≈6e-5 for bini322) but above working precision 2^-23, so only
        // exact rules and classical survive the filter.
        let compiler = PlanCompiler::new();
        let req = PlanRequest::new(256, 256, 256).target_error(1e-6);
        let plan = compiler.compile(&req);
        assert!(
            plan.predicted_error <= 1e-6,
            "chose {} with error {}",
            plan.rule,
            plan.predicted_error
        );
        let exact = plan.is_classical()
            || catalog::by_name(&plan.rule)
                .map(|a| a.is_exact_rule())
                .unwrap_or(false);
        assert!(exact, "rule {} is not exact", plan.rule);
    }

    #[test]
    fn compute_bound_tier_picks_an_apa_rule_on_large_shapes() {
        // On a scalar machine model (4 GF/s/thread vs 16 GB/s) large
        // multiplies are compute-bound, so the §2.2 flop saving wins and
        // an approximate rule must be chosen. Pin the model rather than
        // detecting: whether *this* host's SIMD gemm out-runs APA at
        // n=1024 is a fact about the host, not about the compiler.
        let compiler = PlanCompiler::with_model(crate::cost::MachineModel::for_tier("scalar"));
        let req = PlanRequest::new(1024, 1024, 1024)
            .threads(8)
            .target_error(1e-2);
        let plan = compiler.compile(&req);
        assert!(!plan.is_classical(), "expected an APA rule, got classical");
        assert!(plan.predicted_error <= 1e-2);
        let exec = plan.build().unwrap();
        assert_eq!(exec.rule_name(), plan.rule);
    }

    #[test]
    fn small_shapes_fall_back_to_classical_on_fast_tiers() {
        // Below the crossover the byte traffic of an APA step outweighs
        // its flop saving on a machine whose vector gemm is fast relative
        // to memory — the compiler must know when *not* to approximate.
        let compiler = PlanCompiler::with_model(crate::cost::MachineModel::for_tier("avx512"));
        let plan = compiler.compile(&PlanRequest::new(64, 128, 128));
        assert!(
            plan.is_classical(),
            "expected classical below the crossover, got {}",
            plan.rule
        );
    }

    #[test]
    fn flat_measured_scaling_shrinks_the_thread_choice() {
        // A machine that measures *no* speedup past one lane: the
        // Hybrid load-imbalance penalty is never paid back, so the
        // enumerated thread budget collapses to 1 for APA rules.
        let model = crate::cost::MachineModel::for_tier("scalar").calibrated(16.0e9, &[(1, 1.0)]);
        let compiler = PlanCompiler::with_model(model);
        let req = PlanRequest::new(1024, 1024, 1024)
            .threads(8)
            .target_error(1e-2);
        let plan = compiler.compile(&req);
        assert!(!plan.is_classical());
        assert_eq!(
            plan.threads, 1,
            "flat scaling must not keep the full thread budget"
        );
    }

    #[test]
    fn linear_measured_scaling_keeps_the_full_budget() {
        // A perfectly-scaling calibration must reproduce the historical
        // uncalibrated choice: use every requested thread.
        let model = crate::cost::MachineModel::for_tier("scalar")
            .calibrated(16.0e9, &[(2, 2.0), (4, 4.0), (8, 8.0)]);
        let calibrated = PlanCompiler::with_model(model).compile(
            &PlanRequest::new(1024, 1024, 1024)
                .threads(8)
                .target_error(1e-2),
        );
        let linear = PlanCompiler::with_model(crate::cost::MachineModel::for_tier("scalar"))
            .compile(
                &PlanRequest::new(1024, 1024, 1024)
                    .threads(8)
                    .target_error(1e-2),
            );
        assert_eq!(calibrated.threads, 8);
        assert_eq!(calibrated.rule, linear.rule);
    }

    #[test]
    fn compiled_plan_executes_within_its_error_bound() {
        let compiler = PlanCompiler::new();
        let req = PlanRequest::new(128, 128, 128).target_error(1e-2);
        let plan = compiler.compile(&req);
        let exec = plan.build().unwrap();
        let a = Mat::<f32>::from_fn(128, 128, |i, j| ((i * 13 + j * 5) % 17) as f32 * 0.03);
        let b = Mat::<f32>::from_fn(128, 128, |i, j| ((i * 7 + j * 11) % 19) as f32 * 0.02);
        let got = exec.multiply(a.as_ref(), b.as_ref());
        let exact = ClassicalMatmul::new().multiply(a.as_ref(), b.as_ref());
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..128 {
            for j in 0..128 {
                let d = (got.at(i, j) - exact.at(i, j)) as f64;
                num += d * d;
                den += (exact.at(i, j) as f64).powi(2);
            }
        }
        let rel = (num / den).sqrt();
        assert!(
            rel < 1e-2,
            "relative error {rel} exceeds the request target"
        );
    }
}
