//! Reusable execution workspaces: every buffer a (possibly recursive,
//! possibly peeled) APA multiplication needs, allocated **once** per
//! `(chain shape, operand shape, strategy, threads, peel mode)` and reused
//! across calls.
//!
//! The paper's training workloads call the same multiplication shape
//! thousands of times (three matmuls per layer per step, fixed batch and
//! widths). Allocating the `r` product buffers `M_t`, the `S_t`/`T_t`
//! combination scratch and the padded operands on every call puts the
//! allocator — not the gemm — on the hot path. A [`Workspace`] hoists all
//! of it:
//!
//! * per level: the `r` product matrices (`r·bm·bn` elements) plus one
//!   *lane* per concurrently executing task, each lane holding the
//!   `S_t` (`bm·bk`) and `T_t` (`bk·bn`) combination buffers — lanes are
//!   only allocated when the plan actually materializes combinations;
//! * per lane: a child workspace for the next recursion level (recursive
//!   sub-products always execute sequentially, so children carry one lane);
//! * for [`PeelMode::Pad`]: the three padded operand buffers.
//!
//! Total footprint per level ≈ `r·bm·bn + lanes·(bm·bk + bk·bn)` elements;
//! see [`Workspace::footprint_bytes`]. Combined with the thread-local gemm
//! pack cache in `apa-gemm`, a warm workspace makes repeated
//! multiplications allocation-free (pinned by the `zero_alloc` integration
//! test using `apa_gemm::CountingAlloc`).

use crate::exec::divisible;
use crate::peel::PeelMode;
use crate::plan::{Combo, ExecPlan};
use crate::schedule::{effective_strategy, FusionPolicy, Strategy};
use apa_gemm::{Mat, Scalar};
use std::borrow::Borrow;

/// One recursion level of preallocated buffers.
pub(crate) struct LevelWs<T> {
    /// The product matrices `M_t`, each `bm×bn` — except epilogue-fused
    /// products, whose slot is an empty `0×0` placeholder (their
    /// contribution lands in `C` straight from the gemm epilogue).
    pub(crate) products: Vec<Mat<T>>,
    /// One lane per concurrently executing task at this level.
    pub(crate) lanes: Vec<LaneWs<T>>,
    /// The fused-execution schedule, fixed at build time.
    pub(crate) fusion: FusionSpec,
    /// CSE temporaries (see [`crate::cse`]): A-side shared combinations
    /// (`bm×bk` each), materialized once per call before the product loop.
    pub(crate) a_temps: Vec<Mat<T>>,
    /// B-side CSE temporaries (`bk×bn` each).
    pub(crate) b_temps: Vec<Mat<T>>,
    /// W-side CSE temporaries (`bm×bn` each), formed from the products
    /// before the output pass.
    pub(crate) w_temps: Vec<Mat<T>>,
}

/// Per-level fusion decisions, computed once when the buffer tree is
/// built so the hot path takes no decisions and performs no allocations.
///
/// The spec deliberately stores only *structural* placement — product →
/// (output block, init flag) — and never the plan's output weights: a
/// workspace may be shared by any plan with the same structure (same rule
/// recompiled at a different λ, or a structurally identical sibling rule),
/// and the executor always reads the weight `w` from the *caller's* plan.
pub(crate) struct FusionSpec {
    pub(crate) policy: FusionPolicy,
    /// Per product `t`: `Some((block, init))` when the product's single
    /// output contribution lands in `block` straight from the gemm
    /// epilogue; `init` marks the block's first writer in execution order
    /// (β = 0; later writers accumulate with β = 1). Empty when no product
    /// at this level epilogue-fuses.
    epilogue: Vec<Option<(usize, bool)>>,
    /// Per output block: every contribution was epilogue-fused, so
    /// `write_outputs` skips the block. Empty iff `epilogue` is empty.
    block_fused: Vec<bool>,
}

impl FusionSpec {
    pub(crate) fn materialized(policy: FusionPolicy) -> Self {
        FusionSpec {
            policy,
            epilogue: Vec::new(),
            block_fused: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn epilogue_of(&self, t: usize) -> Option<(usize, bool)> {
        self.epilogue.get(t).copied().flatten()
    }

    #[inline]
    pub(crate) fn is_block_fused(&self, block: usize) -> bool {
        self.block_fused.get(block).copied().unwrap_or(false)
    }

    /// How many products at this level epilogue-fuse.
    pub(crate) fn fused_products(&self) -> usize {
        self.epilogue.iter().flatten().count()
    }

    /// Any epilogue fusion in the product index range `[0, owned)`.
    pub(crate) fn any_fused_below(&self, owned: usize) -> bool {
        self.epilogue
            .iter()
            .take(owned)
            .any(|placement| placement.is_some())
    }
}

/// Scratch owned by one executor lane (a spawned task, or the single
/// sequential executor).
pub(crate) struct LaneWs<T> {
    /// `S_t` combination buffer (`bm×bk`; `0×0` when never materialized).
    pub(crate) s_buf: Mat<T>,
    /// `T_t` combination buffer (`bk×bn`; `0×0` when never materialized).
    pub(crate) t_buf: Mat<T>,
    /// Sub-workspace for the next recursion level (sequential).
    pub(crate) child: Option<Box<LevelWs<T>>>,
}

/// Padded-operand buffers for [`PeelMode::Pad`]. The zero borders are
/// written once at construction and never touched again: calls only
/// overwrite the live top-left regions.
pub(crate) struct PadBufs<T> {
    pub(crate) ap: Mat<T>,
    pub(crate) bp: Mat<T>,
    pub(crate) cp: Mat<T>,
}

/// Shape signature of one chain level, used to validate reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelKey {
    /// The rule's base dims `(m, k, n)`.
    pub base: (usize, usize, usize),
    pub rank: usize,
    /// Whether any A-side / B-side combination materializes at this level.
    pub need_s: bool,
    pub need_t: bool,
    /// CSE temp buffer counts `(a, b, w)`. Only the *counts* matter for
    /// sharing: the executor reads temp term lists from the caller's plan
    /// (like the output weights), so the buffers are shape-compatible
    /// whenever the counts match.
    pub temps: (usize, usize, usize),
    /// FNV-1a digest of the epilogue-fusion structure (0 when nothing
    /// fuses at this level). The product-buffer layout depends on which
    /// products fuse, so two plans may share a workspace only when they
    /// fuse the same products into the same blocks; the digest makes that
    /// check allocation-free (structurally different plans collide with
    /// probability ~2⁻⁶⁴).
    pub epilogue: u64,
}

/// Everything a [`Workspace`] was sized for. Two calls may share a
/// workspace iff their keys are equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsKey {
    pub levels: Vec<LevelKey>,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub strategy: Strategy,
    pub threads: usize,
    pub peel: PeelMode,
    pub fusion: FusionPolicy,
}

/// A preallocated arena for one multiplication configuration. Build with
/// [`Workspace::for_chain`] (or [`crate::ApaMatmul::make_workspace`]) and
/// pass to the `*_ws` execution entry points; results are bitwise
/// identical to the allocate-per-call paths.
pub struct Workspace<T: Scalar> {
    pub(crate) key: WsKey,
    pub(crate) root: LevelWs<T>,
    pub(crate) pad: Option<PadBufs<T>>,
    pub(crate) runs: u64,
}

/// Whether the executor can fold this combination into the gemm pack
/// sweep at a leaf level. Must stay in lockstep with
/// `exec::with_combo_terms`.
pub(crate) fn combo_pack_fusable(combo: &Combo, policy: FusionPolicy) -> bool {
    match policy {
        FusionPolicy::Never => false,
        FusionPolicy::Always => true,
        FusionPolicy::Auto => match combo {
            Combo::Single { .. } => true,
            Combo::Multi(v) => v.len() <= crate::exec::MAX_INLINE_TERMS,
        },
    }
}

fn combo_needs_buffer(combo: &Combo, recursive: bool, fusion: FusionPolicy) -> bool {
    match combo {
        // Mirrors the executor: a singleton is used in place unless the
        // product recurses and the coefficient cannot fold into gemm's α.
        Combo::Single { coeff, .. } => recursive && *coeff != 1.0,
        // Recursive products consume real matrices; leaf products only
        // materialize combinations the pack sweep cannot absorb.
        Combo::Multi(_) => recursive || !combo_pack_fusable(combo, fusion),
    }
}

fn level_key(
    plan: &ExecPlan,
    recursive: bool,
    fusion: FusionPolicy,
    strategy: Strategy,
    threads: usize,
) -> LevelKey {
    let mask = fused_block_mask(plan, strategy, threads, recursive, fusion);
    LevelKey {
        base: (plan.dims.m, plan.dims.k, plan.dims.n),
        rank: plan.rank,
        need_s: plan
            .a_combos
            .iter()
            .any(|c| combo_needs_buffer(c, recursive, fusion)),
        need_t: plan
            .b_combos
            .iter()
            .any(|c| combo_needs_buffer(c, recursive, fusion)),
        temps: (plan.a_temps.len(), plan.b_temps.len(), plan.w_temps.len()),
        epilogue: epilogue_digest(plan, mask),
    }
}

/// Fan-out of product `t`: how many `C` blocks it feeds. Allocation-free.
fn fanout_of(plan: &ExecPlan, t: usize) -> usize {
    plan.c_outputs
        .iter()
        .flat_map(|c| c.iter())
        .filter(|&&(tt, _)| tt == t)
        .count()
}

/// Bitmask of the output blocks whose contributions all write into `C`
/// straight from the gemm epilogue. A block fuses iff **every** product
/// feeding it has fan-out 1 (a shared product written through the epilogue
/// would replay its gemm flops once per block) and, under Hybrid, all of
/// the block's owned-phase writers live in one thread's contiguous chunk
/// `[i·q, (i+1)·q)` — the β = 1 read-modify-writes of a shared block would
/// otherwise race across lanes. Remainder-phase writers (`t ≥ p·q`) run
/// sequentially after the owned phase, so they always accumulate safely.
/// BFS never epilogue-fuses (its lanes share no ordering to anchor β = 0
/// on), recursion levels never fuse (their products feed the parent, not
/// `C`), and plans with more than 64 output blocks never fuse.
///
/// Allocation-free so [`Workspace::matches`] can recompute it per
/// candidate plan.
pub(crate) fn fused_block_mask(
    plan: &ExecPlan,
    strategy: Strategy,
    threads: usize,
    recursive: bool,
    policy: FusionPolicy,
) -> u64 {
    let r = plan.rank;
    let (eff, eff_threads) = effective_strategy(strategy, threads, r);
    if recursive
        || policy == FusionPolicy::Never
        || eff == Strategy::Bfs
        || plan.c_outputs.len() > 64
        // W-side CSE temps are shared partial sums over products — the
        // products they read must materialize, so the level cannot
        // epilogue-fuse. (A/B-side temps are formed *before* the product
        // loop and coexist with pack fusion.)
        || !plan.w_temps.is_empty()
    {
        return 0;
    }
    // Owned-phase geometry (Seq/Dfs run everything as one ordered chunk;
    // Hybrid guarantees q ≥ 1 — `effective_strategy` coerces it to Dfs
    // whenever threads > rank).
    let q = if eff == Strategy::Hybrid {
        r / eff_threads
    } else {
        r
    };
    let owned = if eff == Strategy::Hybrid {
        eff_threads * q
    } else {
        r
    };
    let mut mask = 0u64;
    'blocks: for (block, contrib) in plan.c_outputs.iter().enumerate() {
        if contrib.is_empty() {
            continue;
        }
        let mut chunk = None;
        for &(t, _) in contrib {
            if fanout_of(plan, t) != 1 {
                continue 'blocks;
            }
            if t < owned {
                let c = t / q;
                if *chunk.get_or_insert(c) != c {
                    continue 'blocks;
                }
            }
        }
        mask |= 1 << block;
    }
    mask
}

/// FNV-1a fold of the fused-block structure (which blocks fuse, fed by
/// which products). 0 is reserved for "nothing fuses".
fn epilogue_digest(plan: &ExecPlan, mask: u64) -> u64 {
    if mask == 0 {
        return 0;
    }
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let fold = |h: &mut u64, x: u64| {
        for byte in x.to_le_bytes() {
            *h = (*h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    };
    for (block, contrib) in plan.c_outputs.iter().enumerate() {
        if mask & (1 << block) == 0 {
            continue;
        }
        fold(&mut h, block as u64);
        for &(t, _) in contrib {
            fold(&mut h, t as u64);
        }
        fold(&mut h, u64::MAX); // block separator
    }
    h.max(1)
}

/// Expand [`fused_block_mask`] into the per-product placement table the
/// executor reads on the hot path. Returns empty vectors when nothing
/// fuses.
fn epilogue_schedule(
    plan: &ExecPlan,
    strategy: Strategy,
    threads: usize,
    recursive: bool,
    policy: FusionPolicy,
) -> (Vec<Option<(usize, bool)>>, Vec<bool>) {
    let mask = fused_block_mask(plan, strategy, threads, recursive, policy);
    if mask == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut epilogue = vec![None; plan.rank];
    let mut block_fused = vec![false; plan.c_outputs.len()];
    for (block, contrib) in plan.c_outputs.iter().enumerate() {
        if mask & (1 << block) == 0 {
            continue;
        }
        // The lowest-t writer always executes first (owned phases run in
        // t order within a chunk, the remainder phase runs after, also in
        // t order), so it takes β = 0 and later writers accumulate.
        let init_t = contrib.iter().map(|&(t, _)| t).min().expect("non-empty");
        for &(t, _) in contrib {
            epilogue[t] = Some((block, t == init_t));
        }
        block_fused[block] = true;
    }
    (epilogue, block_fused)
}

/// Elementwise product of the chain's base dims — the divisor arbitrary
/// shapes are peeled/padded against.
pub(crate) fn chain_divisor<P: Borrow<ExecPlan>>(chain: &[P]) -> (usize, usize, usize) {
    let (mut dm, mut dk, mut dn) = (1usize, 1usize, 1usize);
    for plan in chain {
        let d = plan.borrow().dims;
        dm *= d.m;
        dk *= d.k;
        dn *= d.n;
    }
    (dm, dk, dn)
}

impl<T: Scalar> LevelWs<T> {
    /// A level that executes as a plain gemm leaf (no buffers).
    pub(crate) fn leaf() -> Self {
        LevelWs {
            products: Vec::new(),
            lanes: Vec::new(),
            fusion: FusionSpec::materialized(FusionPolicy::Never),
            a_temps: Vec::new(),
            b_temps: Vec::new(),
            w_temps: Vec::new(),
        }
    }

    pub(crate) fn elems(&self) -> usize {
        let area = |ms: &[Mat<T>]| ms.iter().map(|p| p.rows() * p.cols()).sum::<usize>();
        let products = area(&self.products);
        let temps = area(&self.a_temps) + area(&self.b_temps) + area(&self.w_temps);
        let lanes: usize = self
            .lanes
            .iter()
            .map(|l| {
                l.s_buf.rows() * l.s_buf.cols()
                    + l.t_buf.rows() * l.t_buf.cols()
                    + l.child.as_ref().map_or(0, |c| c.elems())
            })
            .sum();
        products + temps + lanes
    }
}

/// Build the buffer tree for `chain` on an `m×k·k×n` product. Stops at the
/// first level whose dims don't divide (the executor gemms there).
pub(crate) fn build_level<T: Scalar, P: Borrow<ExecPlan>>(
    chain: &[P],
    m: usize,
    k: usize,
    n: usize,
    strategy: Strategy,
    threads: usize,
    fusion: FusionPolicy,
) -> LevelWs<T> {
    let Some(plan) = chain.first().map(Borrow::borrow) else {
        return LevelWs::leaf();
    };
    if !divisible(plan, m, k, n) {
        return LevelWs::leaf();
    }
    let d = plan.dims;
    let (bm, bk, bn) = (m / d.m, k / d.k, n / d.n);
    let r = plan.rank;
    let rest = &chain[1..];
    let recursive = !rest.is_empty();
    let key = level_key(plan, recursive, fusion, strategy, threads);
    let (eff, eff_threads) = effective_strategy(strategy, threads, r);
    let lane_count = match eff {
        Strategy::Seq | Strategy::Dfs => 1,
        Strategy::Bfs | Strategy::Hybrid => eff_threads,
    };
    let lanes = (0..lane_count)
        .map(|_| LaneWs {
            s_buf: if key.need_s {
                Mat::zeros(bm, bk)
            } else {
                Mat::zeros(0, 0)
            },
            t_buf: if key.need_t {
                Mat::zeros(bk, bn)
            } else {
                Mat::zeros(0, 0)
            },
            child: recursive
                .then(|| Box::new(build_level(rest, bm, bk, bn, Strategy::Seq, 1, fusion))),
        })
        .collect();
    let (epilogue, block_fused) = epilogue_schedule(plan, strategy, threads, recursive, fusion);
    let products = (0..r)
        .map(|t| {
            if epilogue.get(t).is_some_and(Option::is_some) {
                Mat::zeros(0, 0)
            } else {
                Mat::zeros(bm, bn)
            }
        })
        .collect();
    LevelWs {
        products,
        lanes,
        fusion: FusionSpec {
            policy: fusion,
            epilogue,
            block_fused,
        },
        a_temps: (0..key.temps.0).map(|_| Mat::zeros(bm, bk)).collect(),
        b_temps: (0..key.temps.1).map(|_| Mat::zeros(bk, bn)).collect(),
        w_temps: (0..key.temps.2).map(|_| Mat::zeros(bm, bn)).collect(),
    }
}

impl<T: Scalar> Workspace<T> {
    /// Workspace for a uniform `steps`-deep recursion of a single plan.
    #[allow(clippy::too_many_arguments)]
    pub fn for_plan(
        plan: &ExecPlan,
        m: usize,
        k: usize,
        n: usize,
        steps: u32,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
        fusion: FusionPolicy,
    ) -> Self {
        crate::exec::with_uniform_chain(plan, steps, |chain| {
            Self::for_chain(chain, m, k, n, strategy, threads, peel, fusion)
        })
    }

    /// Workspace for a non-stationary chain (one plan per level).
    #[allow(clippy::too_many_arguments)]
    pub fn for_chain<P: Borrow<ExecPlan>>(
        chain: &[P],
        m: usize,
        k: usize,
        n: usize,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
        fusion: FusionPolicy,
    ) -> Self {
        // Only the root level runs the requested schedule; recursion levels
        // always execute sequentially inside their lane.
        let mut levels = Vec::with_capacity(chain.len());
        for (i, plan) in chain.iter().enumerate() {
            let (s, t) = if i == 0 {
                (strategy, threads)
            } else {
                (Strategy::Seq, 1)
            };
            levels.push(level_key(plan.borrow(), i + 1 < chain.len(), fusion, s, t));
        }
        let key = WsKey {
            levels,
            m,
            k,
            n,
            strategy,
            threads,
            peel,
            fusion,
        };

        let (dm, dk, dn) = chain_divisor(chain);
        let (root, pad) = if m.is_multiple_of(dm) && k.is_multiple_of(dk) && n.is_multiple_of(dn) {
            (build_level(chain, m, k, n, strategy, threads, fusion), None)
        } else {
            match peel {
                PeelMode::Dynamic => {
                    let (mc, kc, nc) = (m / dm * dm, k / dk * dk, n / dn * dn);
                    let root = if mc == 0 || kc == 0 || nc == 0 {
                        LevelWs::leaf()
                    } else {
                        build_level(chain, mc, kc, nc, strategy, threads, fusion)
                    };
                    (root, None)
                }
                PeelMode::Pad => {
                    let (mp, kp, np) = (
                        m.div_ceil(dm) * dm,
                        k.div_ceil(dk) * dk,
                        n.div_ceil(dn) * dn,
                    );
                    let pad = PadBufs {
                        ap: Mat::zeros(mp, kp),
                        bp: Mat::zeros(kp, np),
                        cp: Mat::zeros(mp, np),
                    };
                    (
                        build_level(chain, mp, kp, np, strategy, threads, fusion),
                        Some(pad),
                    )
                }
            }
        };

        Workspace {
            key,
            root,
            pad,
            runs: 0,
        }
    }

    /// Whether this workspace was sized for exactly this call. The
    /// comparison is allocation-free (no key is built for the candidate).
    #[allow(clippy::too_many_arguments)]
    pub fn matches<P: Borrow<ExecPlan>>(
        &self,
        chain: &[P],
        m: usize,
        k: usize,
        n: usize,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
        fusion: FusionPolicy,
    ) -> bool {
        self.key.m == m
            && self.key.k == k
            && self.key.n == n
            && self.key.strategy == strategy
            && self.key.threads == threads
            && self.key.peel == peel
            && self.key.fusion == fusion
            && self.key.levels.len() == chain.len()
            && self
                .key
                .levels
                .iter()
                .zip(chain)
                .enumerate()
                .all(|(i, (lk, plan))| {
                    let (s, t) = if i == 0 {
                        (strategy, threads)
                    } else {
                        (Strategy::Seq, 1)
                    };
                    *lk == level_key(plan.borrow(), i + 1 < chain.len(), fusion, s, t)
                })
    }

    /// The configuration this workspace was built for.
    pub fn key(&self) -> &WsKey {
        &self.key
    }

    /// Completed runs through this workspace.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs beyond the first — i.e. how often the one-time allocation was
    /// amortized.
    pub fn reuses(&self) -> u64 {
        self.runs.saturating_sub(1)
    }

    pub(crate) fn note_run(&mut self) {
        self.runs += 1;
    }

    /// Bytes of matrix storage held (products + lane scratch across all
    /// levels, plus pad buffers). Per level this is
    /// `r·bm·bn + lanes·(bm·bk + bk·bn)` elements.
    pub fn footprint_bytes(&self) -> usize {
        let pad = self.pad.as_ref().map_or(0, |p| {
            p.ap.rows() * p.ap.cols() + p.bp.rows() * p.bp.cols() + p.cp.rows() * p.cp.cols()
        });
        (self.root.elems() + pad) * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::bilinear::Dims;
    use apa_core::catalog;

    #[test]
    fn strassen_workspace_shapes() {
        // FusionPolicy::Never pins the fully materialized reference layout.
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws = Workspace::<f64>::for_plan(
            &plan,
            64,
            64,
            64,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Never,
        );
        assert_eq!(ws.root.products.len(), 7);
        assert_eq!(
            (ws.root.products[0].rows(), ws.root.products[0].cols()),
            (32, 32)
        );
        assert_eq!(ws.root.lanes.len(), 1);
        // Strassen has multi-term combos on both sides.
        assert_eq!(
            (ws.root.lanes[0].s_buf.rows(), ws.root.lanes[0].s_buf.cols()),
            (32, 32)
        );
        assert!(ws.root.lanes[0].child.is_none());
        // 7 products + 2 combo buffers, all 32×32 f64.
        assert_eq!(ws.footprint_bytes(), 9 * 32 * 32 * 8);
    }

    #[test]
    fn auto_pack_fusion_drops_combo_buffers() {
        // Under Auto, leaf combinations fold into the gemm pack sweep, so
        // the S/T buffers vanish. Strassen epilogue-fuses nothing (every
        // block has a fan-out > 1 writer), so the products stay.
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws = Workspace::<f64>::for_plan(
            &plan,
            64,
            64,
            64,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        assert_eq!(ws.root.lanes[0].s_buf.rows(), 0);
        assert_eq!(ws.root.lanes[0].t_buf.rows(), 0);
        assert_eq!(ws.root.fusion.fused_products(), 0);
        assert_eq!(ws.footprint_bytes(), 7 * 32 * 32 * 8);
    }

    #[test]
    fn classical_plan_needs_no_combo_buffers() {
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(2, 2, 2)), 0.0);
        let ws = Workspace::<f32>::for_plan(
            &plan,
            8,
            8,
            8,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Never,
        );
        assert_eq!(ws.root.lanes[0].s_buf.rows(), 0);
        assert_eq!(ws.root.lanes[0].t_buf.rows(), 0);
        assert_eq!(ws.root.products.len(), 8);
    }

    #[test]
    fn classical_epilogue_fuses_every_block() {
        // ⟨2,2,2;8⟩: every product feeds exactly one block, so under Auto
        // every contribution lands in C from the gemm epilogue and the
        // workspace holds no matrix storage at all.
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(2, 2, 2)), 0.0);
        let ws = Workspace::<f32>::for_plan(
            &plan,
            8,
            8,
            8,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        assert_eq!(ws.root.fusion.fused_products(), 8);
        assert!(ws.root.products.iter().all(|p| p.rows() == 0));
        assert_eq!(ws.footprint_bytes(), 0);
        // Exactly one β = 0 initializer per output block.
        let inits = (0..8)
            .filter(|&t| matches!(ws.root.fusion.epilogue_of(t), Some((_, true))))
            .count();
        assert_eq!(inits, 4);
        for block in 0..4 {
            assert!(ws.root.fusion.is_block_fused(block));
        }
    }

    #[test]
    fn recursion_levels_never_epilogue_fuse() {
        // The root of a 2-step classical chain computes its products by
        // recursion (no single gemm to fuse into); the leaf child writes
        // the parent's product buffers and may fuse fully.
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(2, 2, 2)), 0.0);
        let ws = Workspace::<f32>::for_plan(
            &plan,
            16,
            16,
            16,
            2,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        assert_eq!(ws.root.fusion.fused_products(), 0);
        assert!(ws.root.products.iter().all(|p| p.rows() == 8));
        let child = ws.root.lanes[0].child.as_ref().expect("child level");
        assert_eq!(child.fusion.fused_products(), 8);
    }

    /// A hand-built plan whose only interesting content is the C-output
    /// structure (the combos are placeholders; these plans are sized, never
    /// executed).
    fn synthetic(rank: usize, c_outputs: Vec<Vec<(usize, f64)>>) -> ExecPlan {
        ExecPlan {
            dims: Dims::new(2, 1, 1),
            rank,
            lambda: 0.0,
            a_combos: (0..rank)
                .map(|_| Combo::Single {
                    block: 0,
                    coeff: 1.0,
                })
                .collect(),
            b_combos: (0..rank)
                .map(|_| Combo::Single {
                    block: 0,
                    coeff: 1.0,
                })
                .collect(),
            c_outputs,
            name: "synthetic".into(),
            a_temps: Vec::new(),
            b_temps: Vec::new(),
            w_temps: Vec::new(),
        }
    }

    #[test]
    fn hybrid_demotes_blocks_spanning_owned_chunks() {
        // r = 4, 2 threads → q = 2, chunks {0,1} and {2,3}. Both blocks
        // straddle the chunks, so Hybrid demotes them; Seq fuses both.
        let plan = synthetic(4, vec![vec![(0, 1.0), (2, 1.0)], vec![(1, 1.0), (3, 1.0)]]);
        let auto = FusionPolicy::Auto;
        assert_eq!(fused_block_mask(&plan, Strategy::Seq, 1, false, auto), 0b11);
        assert_eq!(fused_block_mask(&plan, Strategy::Dfs, 2, false, auto), 0b11);
        assert_eq!(fused_block_mask(&plan, Strategy::Hybrid, 2, false, auto), 0);
        // BFS, recursion levels and Never all disable epilogue fusion.
        assert_eq!(fused_block_mask(&plan, Strategy::Bfs, 2, false, auto), 0);
        assert_eq!(fused_block_mask(&plan, Strategy::Seq, 1, true, auto), 0);
        assert_eq!(
            fused_block_mask(&plan, Strategy::Seq, 1, false, FusionPolicy::Never),
            0
        );
    }

    #[test]
    fn hybrid_remainder_writers_accumulate_safely() {
        // r = 5, 2 threads → q = 2, owned = 4, remainder = {4}. Block 0's
        // writers are chunk 0 plus the remainder (runs after both chunks,
        // sequentially) → fused. Block 1 straddles chunks 0/1 → demoted.
        let plan = synthetic(5, vec![vec![(0, 1.0), (4, 1.0)], vec![(1, 1.0), (3, 1.0)]]);
        assert_eq!(
            fused_block_mask(&plan, Strategy::Hybrid, 2, false, FusionPolicy::Auto),
            0b01
        );
    }

    #[test]
    fn fanout_gt_one_blocks_never_fuse() {
        // t = 0 feeds both blocks: writing it through the epilogue would
        // run its gemm twice, so neither block fuses.
        let plan = synthetic(2, vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0)]]);
        assert_eq!(
            fused_block_mask(&plan, Strategy::Seq, 1, false, FusionPolicy::Auto),
            0
        );
    }

    #[test]
    fn epilogue_structure_gates_workspace_sharing() {
        // Same dims, rank and buffer needs — but the products land in
        // different blocks, so the placement table cannot be shared.
        let plan_a = synthetic(4, vec![vec![(0, 1.0), (1, 1.0)], vec![(2, 1.0), (3, 1.0)]]);
        let plan_b = synthetic(4, vec![vec![(0, 1.0), (2, 1.0)], vec![(1, 1.0), (3, 1.0)]]);
        let ws = Workspace::<f32>::for_chain(
            &[&plan_a],
            8,
            4,
            4,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        let ok =
            |p: &ExecPlan, f| ws.matches(&[p], 8, 4, 4, Strategy::Seq, 1, PeelMode::Dynamic, f);
        assert!(ok(&plan_a, FusionPolicy::Auto));
        assert!(!ok(&plan_b, FusionPolicy::Auto));
        // Under Never both plans are structure-compatible (nothing fuses),
        // but a Never workspace is a different key than an Auto one.
        assert!(!ok(&plan_a, FusionPolicy::Never));
    }

    #[test]
    fn recursive_workspace_carries_children() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws = Workspace::<f64>::for_plan(
            &plan,
            32,
            32,
            32,
            2,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Never,
        );
        let child = ws.root.lanes[0].child.as_ref().expect("child level");
        assert_eq!(child.products.len(), 7);
        assert_eq!((child.products[0].rows(), child.products[0].cols()), (8, 8));
        assert!(child.lanes[0].child.is_none());
    }

    #[test]
    fn parallel_strategies_get_one_lane_per_task() {
        let plan = ExecPlan::compile(&catalog::bini322(), 1e-4); // r = 10
        let mk = |strategy, threads| {
            Workspace::<f32>::for_plan(
                &plan,
                12,
                12,
                12,
                1,
                strategy,
                threads,
                PeelMode::Dynamic,
                FusionPolicy::Auto,
            )
        };
        assert_eq!(mk(Strategy::Seq, 4).root.lanes.len(), 1);
        assert_eq!(mk(Strategy::Dfs, 4).root.lanes.len(), 1);
        assert_eq!(mk(Strategy::Hybrid, 4).root.lanes.len(), 4);
        assert_eq!(mk(Strategy::Bfs, 4).root.lanes.len(), 4);
        // More threads than products: BFS caps lanes, Hybrid becomes DFS.
        assert_eq!(mk(Strategy::Bfs, 16).root.lanes.len(), 10);
        assert_eq!(mk(Strategy::Hybrid, 16).root.lanes.len(), 1);
        // One thread is sequential whatever was asked.
        assert_eq!(mk(Strategy::Hybrid, 1).root.lanes.len(), 1);
    }

    #[test]
    fn pad_mode_preallocates_padded_operands() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws = Workspace::<f64>::for_plan(
            &plan,
            9,
            9,
            9,
            1,
            Strategy::Seq,
            1,
            PeelMode::Pad,
            FusionPolicy::Auto,
        );
        let pad = ws.pad.as_ref().expect("pad buffers");
        assert_eq!((pad.ap.rows(), pad.ap.cols()), (10, 10));
        assert_eq!((pad.cp.rows(), pad.cp.cols()), (10, 10));
        assert_eq!(ws.root.products.len(), 7);
    }

    #[test]
    fn matches_validates_shape_strategy_and_plan_structure() {
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let winograd = ExecPlan::compile(&catalog::winograd(), 0.0);
        let ws = Workspace::<f64>::for_chain(
            &[&strassen],
            16,
            16,
            16,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        let ok = |chain: &[&ExecPlan], m, strategy, threads, peel, fusion| {
            ws.matches(chain, m, 16, 16, strategy, threads, peel, fusion)
        };
        let (dyn_, auto) = (PeelMode::Dynamic, FusionPolicy::Auto);
        assert!(ok(&[&strassen], 16, Strategy::Seq, 1, dyn_, auto));
        assert!(!ok(&[&strassen], 18, Strategy::Seq, 1, dyn_, auto));
        assert!(!ok(&[&strassen], 16, Strategy::Hybrid, 2, dyn_, auto));
        assert!(!ok(&[&strassen], 16, Strategy::Seq, 1, PeelMode::Pad, auto));
        assert!(!ok(
            &[&strassen],
            16,
            Strategy::Seq,
            1,
            dyn_,
            FusionPolicy::Never
        ));
        assert!(!ok(&[], 16, Strategy::Seq, 1, dyn_, auto));
        // Same base dims and rank (⟨2,2,2;7⟩), and neither rule epilogue-
        // fuses — structure still compatible, so a same-shape rule may
        // share the workspace.
        assert!(ok(&[&winograd], 16, Strategy::Seq, 1, dyn_, auto));
    }

    #[test]
    fn run_counters_track_reuse() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let mut ws = Workspace::<f64>::for_plan(
            &plan,
            8,
            8,
            8,
            1,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
            FusionPolicy::Auto,
        );
        assert_eq!((ws.runs(), ws.reuses()), (0, 0));
        ws.note_run();
        assert_eq!((ws.runs(), ws.reuses()), (1, 0));
        ws.note_run();
        assert_eq!((ws.runs(), ws.reuses()), (2, 1));
    }
}
