//! Convolution as matrix multiplication (im2col) — the standard lowering
//! the paper's §1 cites ([Chetlur et al., cuDNN]): "Training convolutional
//! and other types of layers can also be cast as matrix multiplication".
//!
//! `im2col` unrolls every receptive field of the input into a row of a
//! patch matrix; convolution with `C_out` filters is then one GEMM
//! `(N·H_out·W_out) × (C_in·KH·KW)` by `(C_in·KH·KW) × C_out`, which any
//! [`MatmulBackend`] — classical or APA — can execute. This makes the
//! VGG-19 *convolutional* layers reachable by the same APA operators as
//! the fully connected ones.

use crate::backend::Backend;
use apa_gemm::Mat;

/// Shape of a convolution input: batch of `n` CHW images.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvShape {
    pub n: usize,
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl ConvShape {
    pub fn elems(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    #[inline]
    fn index(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        ((n * self.c + c) * self.h + y) * self.w + x
    }
}

/// A 2-D convolution configuration (square stride/padding for simplicity).
#[derive(Clone, Copy, Debug)]
pub struct Conv2dConfig {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
}

impl Conv2dConfig {
    /// Output spatial size for an `h×w` input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Patch width of the im2col matrix: `C_in · KH · KW`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unroll input patches: returns an `(N·OH·OW) × (C·K·K)` matrix whose row
/// `((n·OH + oy)·OW + ox)` is the receptive field of output `(n, oy, ox)`,
/// zero-padded outside the image.
pub fn im2col(input: &[f32], shape: ConvShape, cfg: &Conv2dConfig) -> Mat<f32> {
    assert_eq!(shape.c, cfg.in_channels, "channel mismatch");
    assert_eq!(input.len(), shape.elems(), "input buffer size mismatch");
    let (oh, ow) = cfg.out_size(shape.h, shape.w);
    let patch = cfg.patch_len();
    let mut out = Mat::zeros(shape.n * oh * ow, patch);

    for n in 0..shape.n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (n * oh + oy) * ow + ox;
                let row = &mut out.as_mut_slice()[row_idx * patch..(row_idx + 1) * patch];
                let mut p = 0;
                for c in 0..shape.c {
                    for ky in 0..cfg.kernel {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        for kx in 0..cfg.kernel {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            row[p] = if iy >= 0
                                && (iy as usize) < shape.h
                                && ix >= 0
                                && (ix as usize) < shape.w
                            {
                                input[shape.index(n, c, iy as usize, ix as usize)]
                            } else {
                                0.0
                            };
                            p += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Scatter-accumulate the inverse of [`im2col`]: fold patch-matrix
/// gradients back onto the input gradient (`col2im`).
pub fn col2im(patches: &Mat<f32>, shape: ConvShape, cfg: &Conv2dConfig) -> Vec<f32> {
    let (oh, ow) = cfg.out_size(shape.h, shape.w);
    let patch = cfg.patch_len();
    assert_eq!(patches.rows(), shape.n * oh * ow);
    assert_eq!(patches.cols(), patch);
    let mut out = vec![0.0f32; shape.elems()];
    for n in 0..shape.n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (n * oh + oy) * ow + ox;
                let row = &patches.as_slice()[row_idx * patch..(row_idx + 1) * patch];
                let mut p = 0;
                for c in 0..shape.c {
                    for ky in 0..cfg.kernel {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        for kx in 0..cfg.kernel {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if iy >= 0
                                && (iy as usize) < shape.h
                                && ix >= 0
                                && (ix as usize) < shape.w
                            {
                                out[shape.index(n, c, iy as usize, ix as usize)] += row[p];
                            }
                            p += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

/// A convolution layer evaluated through im2col + a pluggable matmul
/// backend; supports forward, backward (col2im) and SGD — so the §1
/// lowering covers *training* convolutional layers with APA kernels.
pub struct Conv2d {
    pub cfg: Conv2dConfig,
    /// `(C_in·K·K) × C_out` filter matrix (one filter per column).
    pub filters: Mat<f32>,
    pub bias: Vec<f32>,
    backend: Backend,
    // Training caches (populated by `forward_train`).
    cached_patches: Option<Mat<f32>>,
    cached_in_shape: Option<ConvShape>,
    pub grad_filters: Option<Mat<f32>>,
    pub grad_bias: Option<Vec<f32>>,
}

impl Conv2d {
    /// Deterministic He-style initialization.
    pub fn new(cfg: Conv2dConfig, backend: Backend, seed: u64) -> Self {
        let rows = cfg.patch_len();
        let scale = (2.0 / rows as f64).sqrt();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xC0417);
        let filters = Mat::from_fn(rows, cfg.out_channels, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) * scale) as f32
        });
        Self {
            bias: vec![0.0; cfg.out_channels],
            filters,
            cfg,
            backend,
            cached_patches: None,
            cached_in_shape: None,
            grad_filters: None,
            grad_bias: None,
        }
    }

    /// Training forward: caches the im2col patches for [`Self::backward`].
    pub fn forward_train(&mut self, input: &[f32], shape: ConvShape) -> (Vec<f32>, ConvShape) {
        let patches = im2col(input, shape, &self.cfg);
        let result = self.forward_from_patches(&patches, shape);
        self.cached_patches = Some(patches);
        self.cached_in_shape = Some(shape);
        result
    }

    /// Backward: given `dOut` in CHW layout, store filter/bias gradients
    /// and return `dInput` (CHW). All matmuls run through the backend.
    pub fn backward(&mut self, grad_out: &[f32], out_shape: ConvShape) -> Vec<f32> {
        let patches = self
            .cached_patches
            .as_ref()
            .expect("backward() requires a prior forward_train()");
        let in_shape = self.cached_in_shape.unwrap();
        let (oh, ow) = (out_shape.h, out_shape.w);
        assert_eq!(out_shape.c, self.cfg.out_channels);
        assert_eq!(grad_out.len(), out_shape.elems());

        // CHW → (N·OH·OW) × C_out row-major gradient matrix.
        let rows = out_shape.n * oh * ow;
        let mut dout = Mat::zeros(rows, self.cfg.out_channels);
        for n in 0..out_shape.n {
            for c in 0..self.cfg.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let row = (n * oh + oy) * ow + ox;
                        dout.set(row, c, grad_out[out_shape.index(n, c, oy, ox)]);
                    }
                }
            }
        }

        // dFilters = patchesᵀ · dOut; dBias = column sums of dOut.
        let dfilters = self.backend.matmul_tn(patches.as_ref(), dout.as_ref());
        let mut dbias = vec![0.0f32; self.cfg.out_channels];
        for r in 0..rows {
            for (c, db) in dbias.iter_mut().enumerate() {
                *db += dout.at(r, c);
            }
        }
        // dPatches = dOut · filtersᵀ, folded back with col2im.
        let dpatches = self.backend.matmul_nt(dout.as_ref(), self.filters.as_ref());
        let dinput = col2im(&dpatches, in_shape, &self.cfg);

        self.grad_filters = Some(dfilters);
        self.grad_bias = Some(dbias);
        dinput
    }

    /// SGD step on filters and bias.
    pub fn apply_sgd(&mut self, lr: f32) {
        if let Some(df) = self.grad_filters.take() {
            for (w, &g) in self.filters.as_mut_slice().iter_mut().zip(df.as_slice()) {
                *w -= lr * g;
            }
        }
        if let Some(db) = self.grad_bias.take() {
            for (b, &g) in self.bias.iter_mut().zip(&db) {
                *b -= lr * g;
            }
        }
    }

    /// Forward: CHW batch in, CHW batch out (`C_out × OH × OW` per image).
    pub fn forward(&self, input: &[f32], shape: ConvShape) -> (Vec<f32>, ConvShape) {
        let patches = im2col(input, shape, &self.cfg);
        self.forward_from_patches(&patches, shape)
    }

    fn forward_from_patches(&self, patches: &Mat<f32>, shape: ConvShape) -> (Vec<f32>, ConvShape) {
        let (oh, ow) = self.cfg.out_size(shape.h, shape.w);
        // (N·OH·OW) × C_out, rows in (n, oy, ox) order.
        let out_mat = self.backend.matmul(patches.as_ref(), self.filters.as_ref());
        let out_shape = ConvShape {
            n: shape.n,
            c: self.cfg.out_channels,
            h: oh,
            w: ow,
        };
        // Repack rows (n, oy, ox) × c → CHW with bias.
        let mut out = vec![0.0f32; out_shape.elems()];
        for n in 0..shape.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (n * oh + oy) * ow + ox;
                    for c in 0..self.cfg.out_channels {
                        out[out_shape.index(n, c, oy, ox)] = out_mat.at(row, c) + self.bias[c];
                    }
                }
            }
        }
        (out, out_shape)
    }
}

/// Direct (nested-loop) convolution — the oracle the im2col path is tested
/// against.
pub fn conv2d_direct(
    input: &[f32],
    shape: ConvShape,
    cfg: &Conv2dConfig,
    filters: &Mat<f32>,
    bias: &[f32],
) -> (Vec<f32>, ConvShape) {
    let (oh, ow) = cfg.out_size(shape.h, shape.w);
    let out_shape = ConvShape {
        n: shape.n,
        c: cfg.out_channels,
        h: oh,
        w: ow,
    };
    let mut out = vec![0.0f32; out_shape.elems()];
    for n in 0..shape.n {
        for co in 0..cfg.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[co];
                    let mut p = 0;
                    for ci in 0..shape.c {
                        for ky in 0..cfg.kernel {
                            let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                            for kx in 0..cfg.kernel {
                                let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                                if iy >= 0
                                    && (iy as usize) < shape.h
                                    && ix >= 0
                                    && (ix as usize) < shape.w
                                {
                                    acc += input[shape.index(n, ci, iy as usize, ix as usize)]
                                        * filters.at(p, co);
                                }
                                p += 1;
                            }
                        }
                    }
                    out[out_shape.index(n, co, oy, ox)] = acc;
                }
            }
        }
    }
    (out, out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{apa, classical};
    use apa_core::catalog;

    fn input(shape: ConvShape, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..shape.elems())
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
            })
            .collect()
    }

    #[test]
    fn out_size_formulas() {
        let cfg = Conv2dConfig {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(cfg.out_size(28, 28), (28, 28)); // same-padding
        let cfg2 = Conv2dConfig {
            stride: 2,
            padding: 0,
            ..cfg
        };
        assert_eq!(cfg2.out_size(28, 28), (13, 13));
        assert_eq!(cfg.patch_len(), 27);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1, no padding: patches are just pixels.
        let shape = ConvShape {
            n: 1,
            c: 2,
            h: 3,
            w: 3,
        };
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let x = input(shape, 1);
        let p = im2col(&x, shape, &cfg);
        assert_eq!((p.rows(), p.cols()), (9, 2));
        assert_eq!(p.at(0, 0), x[shape.index(0, 0, 0, 0)]);
        assert_eq!(p.at(4, 1), x[shape.index(0, 1, 1, 1)]);
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let shape = ConvShape {
            n: 1,
            c: 1,
            h: 2,
            w: 2,
        };
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let p = im2col(&x, shape, &cfg);
        // Output (0,0): receptive field top-left — 5 pad zeros.
        let row0 = &p.as_slice()[0..9];
        assert_eq!(row0, &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn conv_via_matmul_matches_direct() {
        let shape = ConvShape {
            n: 2,
            c: 3,
            h: 8,
            w: 8,
        };
        let cfg = Conv2dConfig {
            in_channels: 3,
            out_channels: 5,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let layer = Conv2d::new(cfg, classical(1), 7);
        let x = input(shape, 2);
        let (got, got_shape) = layer.forward(&x, shape);
        let (expect, expect_shape) = conv2d_direct(&x, shape, &cfg, &layer.filters, &layer.bias);
        assert_eq!(got_shape, expect_shape);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-4, "{g} vs {e}");
        }
    }

    #[test]
    fn strided_conv_matches_direct() {
        let shape = ConvShape {
            n: 1,
            c: 2,
            h: 9,
            w: 7,
        };
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 0,
        };
        let layer = Conv2d::new(cfg, classical(1), 9);
        let x = input(shape, 3);
        let (got, gs) = layer.forward(&x, shape);
        let (expect, _) = conv2d_direct(&x, shape, &cfg, &layer.filters, &layer.bias);
        assert_eq!((gs.h, gs.w), (4, 3));
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_inverts_im2col_counts() {
        // For an all-ones patch matrix, col2im produces, at each input
        // pixel, the number of receptive fields covering it.
        let shape = ConvShape {
            n: 1,
            c: 1,
            h: 3,
            w: 3,
        };
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (oh, ow) = cfg.out_size(3, 3);
        let ones = Mat::from_fn(oh * ow, cfg.patch_len(), |_, _| 1.0);
        let folded = col2im(&ones, shape, &cfg);
        // Center pixel is covered by all 9 fields; corners by 4.
        assert_eq!(folded[4], 9.0);
        assert_eq!(folded[0], 4.0);
        assert_eq!(folded[2], 4.0);
        assert_eq!(folded[1], 6.0);
    }

    #[test]
    fn conv_filter_gradient_matches_finite_difference() {
        let shape = ConvShape {
            n: 2,
            c: 2,
            h: 5,
            w: 5,
        };
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut layer = Conv2d::new(cfg, classical(1), 21);
        let x = input(shape, 5);
        // Loss = sum of outputs → dOut = ones.
        let (out, out_shape) = layer.forward_train(&x, shape);
        let dout = vec![1.0f32; out.len()];
        let _ = layer.backward(&dout, out_shape);
        let analytic = layer.grad_filters.clone().unwrap();

        let eps = 1e-2f32;
        for (fi, fj) in [(0, 0), (5, 1), (17, 2)] {
            let orig = layer.filters.at(fi, fj);
            layer.filters.set(fi, fj, orig + eps);
            let (lp, _) = layer.forward(&x, shape);
            layer.filters.set(fi, fj, orig - eps);
            let (lm, _) = layer.forward(&x, shape);
            layer.filters.set(fi, fj, orig);
            let numeric = (lp.iter().sum::<f32>() - lm.iter().sum::<f32>()) / (2.0 * eps);
            let a = analytic.at(fi, fj);
            assert!(
                (a - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dF[{fi}][{fj}]: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let shape = ConvShape {
            n: 1,
            c: 1,
            h: 4,
            w: 4,
        };
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let mut layer = Conv2d::new(cfg, classical(1), 23);
        let mut x = input(shape, 6);
        let (_, out_shape) = layer.forward_train(&x, shape);
        let dout = vec![1.0f32; out_shape.elems()];
        let dinput = layer.backward(&dout, out_shape);

        let eps = 1e-2f32;
        for idx in [0usize, 5, 10, 15] {
            let orig = x[idx];
            x[idx] = orig + eps;
            let (lp, _) = layer.forward(&x, shape);
            x[idx] = orig - eps;
            let (lm, _) = layer.forward(&x, shape);
            x[idx] = orig;
            let numeric = (lp.iter().sum::<f32>() - lm.iter().sum::<f32>()) / (2.0 * eps);
            assert!(
                (dinput[idx] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dX[{idx}]: analytic {}, numeric {numeric}",
                dinput[idx]
            );
        }
    }

    #[test]
    fn conv_sgd_reduces_reconstruction_loss() {
        // Tiny regression: learn filters that reproduce a target response.
        let shape = ConvShape {
            n: 1,
            c: 1,
            h: 6,
            w: 6,
        };
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let target_layer = Conv2d::new(cfg, classical(1), 31);
        let mut learner = Conv2d::new(cfg, classical(1), 32);
        let x = input(shape, 7);
        let (target, out_shape) = target_layer.forward(&x, shape);

        let loss_of = |layer: &Conv2d| -> f32 {
            let (y, _) = layer.forward(&x, shape);
            y.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let initial = loss_of(&learner);
        for _ in 0..50 {
            let (y, _) = learner.forward_train(&x, shape);
            let dout: Vec<f32> = y.iter().zip(&target).map(|(a, b)| 2.0 * (a - b)).collect();
            let _ = learner.backward(&dout, out_shape);
            learner.apply_sgd(0.01);
        }
        let final_loss = loss_of(&learner);
        assert!(
            final_loss < initial * 0.1,
            "conv SGD failed to fit: {initial} → {final_loss}"
        );
    }

    #[test]
    fn apa_backend_convolves_accurately() {
        // The paper's §1 claim in action: an APA kernel inside im2col conv.
        let shape = ConvShape {
            n: 4,
            c: 8,
            h: 12,
            w: 12,
        };
        let cfg = Conv2dConfig {
            in_channels: 8,
            out_channels: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let apa_layer = Conv2d::new(cfg, apa(catalog::bini322(), 1), 11);
        let x = input(shape, 4);
        let (got, _) = apa_layer.forward(&x, shape);
        let (expect, _) = conv2d_direct(&x, shape, &cfg, &apa_layer.filters, &apa_layer.bias);
        let num: f64 = got
            .iter()
            .zip(&expect)
            .map(|(g, e)| ((g - e) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = expect
            .iter()
            .map(|e| (*e as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let rel = num / den.max(1e-30);
        assert!(rel < 5e-3, "APA conv rel error {rel}");
    }
}
