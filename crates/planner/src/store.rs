//! The on-disk plan store: a versioned, CRC-checked flat file of
//! `(request key → compiled plan)` records, keyed as a whole by a
//! hardware fingerprint (CPU dispatch tier + cache hierarchy).
//!
//! ## File format (`plans.bin`)
//!
//! ```text
//! magic "APLN" | version u32 | fingerprint str
//! calibration: has u8 | [bandwidth f64 | count u32 | (threads u32, speedup f64)*]
//! count u32
//! per record: key bytes (len-prefixed) | plan bytes (len-prefixed)
//! trailer: CRC32 of everything above
//! ```
//!
//! Version 2 added the machine-calibration block (measured memory
//! bandwidth and parallel-scaling points, probed once under measured
//! tuning). Version-1 files fail [`PlanStoreError::BadVersion`] and take
//! the normal "start empty and re-tune" path.
//!
//! All integers little-endian; strings and byte blobs are u32
//! length-prefixed; the CRC is the IEEE polynomial (same as the
//! checkpoint format). Every failure is a typed [`PlanStoreError`]; the
//! compiler treats any load failure as "start empty and re-tune" — a
//! corrupted, truncated or foreign store can produce a slow first
//! compile, never a wrong or stale plan. In particular a store copied
//! between machines fails the fingerprint check
//! ([`PlanStoreError::FingerprintMismatch`]) and is ignored wholesale:
//! measured timings from different silicon would otherwise *lie*.

use crate::codec::{crc32, Dec, Enc};
use crate::compiler::CompiledPlan;
use apa_gemm::{selected_tier, CacheHierarchy};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"APLN";
const VERSION: u32 = 2;
const FILE_NAME: &str = "plans.bin";

/// Why a plan store could not be read or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStoreError {
    /// Filesystem failure (path and OS message).
    Io { path: String, msg: String },
    /// The file does not start with the plan-store magic.
    BadMagic,
    /// The file's format version is not understood.
    BadVersion { got: u32 },
    /// The file ended before a declared structure was complete.
    Truncated,
    /// The trailer CRC failed, or a record failed to decode.
    Corrupt,
    /// The store was written on different hardware (kernel tier or cache
    /// config changed); its measurements don't transfer.
    FingerprintMismatch { stored: String, current: String },
}

impl std::fmt::Display for PlanStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanStoreError::Io { path, msg } => write!(f, "plan store I/O at {path}: {msg}"),
            PlanStoreError::BadMagic => write!(f, "not a plan store (bad magic)"),
            PlanStoreError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported plan store version {got} (expected {VERSION})"
                )
            }
            PlanStoreError::Truncated => write!(f, "plan store file is truncated"),
            PlanStoreError::Corrupt => write!(f, "plan store failed its checksum"),
            PlanStoreError::FingerprintMismatch { stored, current } => write!(
                f,
                "plan store was tuned on different hardware ({stored}, this machine is {current})"
            ),
        }
    }
}

impl std::error::Error for PlanStoreError {}

/// Machine calibration measured once (opt-in, under measured tuning) and
/// persisted alongside the plans: the probed memory bandwidth and the
/// parallel-scaling curve that replace the cost model's flat-bandwidth /
/// linear-scaling defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct Calibration {
    /// Sustained streaming bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// `(threads, speedup-vs-1-thread)` points, sorted by thread count.
    pub parallel_points: Vec<(u32, f64)>,
}

/// The loaded store: an in-memory map plus the path and fingerprint it
/// will be saved back with.
#[derive(Debug)]
pub struct PlanStore {
    path: PathBuf,
    fingerprint: String,
    calibration: Option<Calibration>,
    entries: HashMap<Vec<u8>, CompiledPlan>,
    dirty: bool,
}

/// The fingerprint of the machine this process runs on: SIMD dispatch
/// tier plus cache hierarchy plus store version.
pub fn current_fingerprint() -> String {
    let c = CacheHierarchy::detect();
    format!(
        "v{VERSION}-{}-{}-{}-{}",
        selected_tier().name(),
        c.l1d,
        c.l2,
        c.l3
    )
}

impl PlanStore {
    /// Load the store under `dir` (file `plans.bin`), validating magic,
    /// version, CRC and hardware fingerprint. A missing file is an empty
    /// store, not an error.
    pub fn load(dir: &Path) -> Result<Self, PlanStoreError> {
        Self::load_with(dir, &current_fingerprint())
    }

    /// A fresh empty store rooted at `dir` with the current fingerprint —
    /// the recovery path when [`Self::load`] reports an invalid or
    /// foreign file (the next [`Self::save`] overwrites it atomically).
    pub fn empty(dir: &Path) -> Self {
        PlanStore {
            path: dir.join(FILE_NAME),
            fingerprint: current_fingerprint(),
            calibration: None,
            entries: HashMap::new(),
            dirty: false,
        }
    }

    /// [`Self::load`] against an explicit fingerprint (the public seam
    /// the tier-mismatch tests use; production callers use [`Self::load`]).
    pub fn load_with(dir: &Path, fingerprint: &str) -> Result<Self, PlanStoreError> {
        let path = dir.join(FILE_NAME);
        let empty = || PlanStore {
            path: path.clone(),
            fingerprint: fingerprint.to_string(),
            calibration: None,
            entries: HashMap::new(),
            dirty: false,
        };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(empty()),
            Err(e) => {
                return Err(PlanStoreError::Io {
                    path: path.display().to_string(),
                    msg: e.to_string(),
                })
            }
        };
        let (calibration, entries) = Self::parse(&bytes, fingerprint)?;
        Ok(PlanStore {
            path,
            fingerprint: fingerprint.to_string(),
            calibration,
            entries,
            dirty: false,
        })
    }

    #[allow(clippy::type_complexity)]
    fn parse(
        bytes: &[u8],
        fingerprint: &str,
    ) -> Result<(Option<Calibration>, HashMap<Vec<u8>, CompiledPlan>), PlanStoreError> {
        if bytes.len() < MAGIC.len() {
            return Err(PlanStoreError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(PlanStoreError::BadMagic);
        }
        // The trailer CRC covers everything before it — verify first so a
        // torn write or bit flip is reported as corruption, not as a
        // bogus decoded value.
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(PlanStoreError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(PlanStoreError::Corrupt);
        }

        let mut dec = Dec::new(&body[MAGIC.len()..]);
        let version = dec.get_u32().map_err(|_| PlanStoreError::Truncated)?;
        if version != VERSION {
            return Err(PlanStoreError::BadVersion { got: version });
        }
        let stored_fp = dec.get_str().map_err(|_| PlanStoreError::Truncated)?;
        if stored_fp != fingerprint {
            return Err(PlanStoreError::FingerprintMismatch {
                stored: stored_fp,
                current: fingerprint.to_string(),
            });
        }
        let calibration = match dec.get_u8().map_err(|_| PlanStoreError::Truncated)? {
            0 => None,
            1 => {
                let bandwidth = dec.get_f64().map_err(|_| PlanStoreError::Truncated)?;
                if !(bandwidth.is_finite() && bandwidth > 0.0) {
                    return Err(PlanStoreError::Corrupt);
                }
                let n = dec.get_u32().map_err(|_| PlanStoreError::Truncated)?;
                let mut points = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let threads = dec.get_u32().map_err(|_| PlanStoreError::Truncated)?;
                    let speedup = dec.get_f64().map_err(|_| PlanStoreError::Truncated)?;
                    if threads == 0 || !(speedup.is_finite() && speedup > 0.0) {
                        return Err(PlanStoreError::Corrupt);
                    }
                    points.push((threads, speedup));
                }
                if !points.is_sorted_by_key(|&(t, _)| t) {
                    return Err(PlanStoreError::Corrupt);
                }
                Some(Calibration {
                    bandwidth_bytes_per_sec: bandwidth,
                    parallel_points: points,
                })
            }
            _ => return Err(PlanStoreError::Corrupt),
        };
        let count = dec.get_u32().map_err(|_| PlanStoreError::Truncated)?;
        let mut entries = HashMap::with_capacity(count as usize);
        for _ in 0..count {
            let key = dec.get_bytes().map_err(|_| PlanStoreError::Truncated)?;
            let plan_bytes = dec.get_bytes().map_err(|_| PlanStoreError::Truncated)?;
            let plan = CompiledPlan::decode(&plan_bytes).ok_or(PlanStoreError::Corrupt)?;
            entries.insert(key, plan);
        }
        if dec.remaining() != 0 {
            return Err(PlanStoreError::Corrupt);
        }
        Ok((calibration, entries))
    }

    /// The persisted machine calibration, if one has been measured.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Record a measured calibration; persisted on the next [`Self::save`].
    pub fn set_calibration(&mut self, cal: Calibration) {
        self.calibration = Some(cal);
        self.dirty = true;
    }

    pub fn get(&self, key: &[u8]) -> Option<&CompiledPlan> {
        self.entries.get(key)
    }

    pub fn insert(&mut self, key: Vec<u8>, plan: CompiledPlan) {
        self.entries.insert(key, plan);
        self.dirty = true;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether [`Self::insert`] has been called since load/save.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u32(VERSION);
        enc.put_str(&self.fingerprint);
        match &self.calibration {
            None => enc.put_u8(0),
            Some(cal) => {
                enc.put_u8(1);
                enc.put_f64(cal.bandwidth_bytes_per_sec);
                enc.put_u32(cal.parallel_points.len() as u32);
                for &(threads, speedup) in &cal.parallel_points {
                    enc.put_u32(threads);
                    enc.put_f64(speedup);
                }
            }
        }
        enc.put_u32(self.entries.len() as u32);
        // Deterministic record order: sort by key so the same entry set
        // always produces the identical file (round-trip tests compare
        // bytes).
        let mut keys: Vec<&Vec<u8>> = self.entries.keys().collect();
        keys.sort();
        for key in keys {
            enc.put_bytes(key);
            enc.put_bytes(&self.entries[key].encode());
        }
        let mut out = MAGIC.to_vec();
        out.extend_from_slice(&enc.into_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Atomically persist (write temp file, rename over the target). The
    /// parent directory is created on demand.
    pub fn save(&mut self) -> Result<(), PlanStoreError> {
        let io_err = |e: std::io::Error| PlanStoreError::Io {
            path: self.path.display().to_string(),
            msg: e.to_string(),
        };
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.encode()).map_err(io_err)?;
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        self.dirty = false;
        Ok(())
    }
}
