//! The compiler's equivalence contract (ISSUE 9 satellite):
//!
//! * a [`CompiledPlan`] is *nothing the hand-flagged builder could not
//!   express* — building through `to_matmul()`/`build()` must be bitwise
//!   identical to spelling the same knobs out on `ApaMatmul` directly,
//!   across catalog rules × shapes × thread counts;
//! * the addition-CSE rewrite is pure reassociation — CSE-on output must
//!   stay within the PR-5 fusion-equivalence tolerance of CSE-off (both
//!   share the identical approximation error; only summation order of
//!   the linear combinations differs).

use apa_core::catalog;
use apa_matmul::{ApaMatmul, ClassicalMatmul, FusionPolicy, Strategy};
use apa_planner::{CompiledPlan, PlanCompiler, PlanExec, PlanRequest};
use proptest::prelude::*;

fn rand_mat<T: apa_gemm::Scalar>(rows: usize, cols: usize, seed: u64) -> apa_gemm::Mat<T> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    apa_gemm::Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        T::from_f64(((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0)
    })
}

fn assert_bitwise(
    got: &apa_gemm::Mat<f32>,
    want: &apa_gemm::Mat<f32>,
    what: &str,
) -> Result<(), TestCaseError> {
    for i in 0..got.rows() {
        for j in 0..got.cols() {
            prop_assert_eq!(
                got.at(i, j).to_bits(),
                want.at(i, j).to_bits(),
                "{} diverged at ({},{})",
                what,
                i,
                j
            );
        }
    }
    Ok(())
}

const STRATEGIES: [Strategy; 3] = [Strategy::Seq, Strategy::Hybrid, Strategy::Bfs];
const FUSIONS: [FusionPolicy; 2] = [FusionPolicy::Auto, FusionPolicy::Never];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hand-constructed plans over the full knob space reduce to the
    /// identical hand-flagged configuration, bit for bit.
    #[test]
    fn compiled_plan_matches_hand_flags_bitwise(
        alg_idx in 0usize..6,
        strat_idx in 0usize..3,
        fusion_idx in 0usize..2,
        threads in 1usize..=4,
        cse_bit in 0u8..2,
        fm in 1usize..=3,
        fk in 1usize..=3,
        fn_ in 1usize..=3,
        seed in 1u64..u64::MAX,
    ) {
        let lineup = catalog::paper_lineup();
        let alg = lineup[alg_idx % lineup.len()].clone();
        let strategy = STRATEGIES[strat_idx];
        let fusion = FUSIONS[fusion_idx];
        let cse = cse_bit == 1;
        // One recursion step on shapes the rule divides exactly.
        let (m, k, n) = (alg.dims.m * 2 * fm, alg.dims.k * 2 * fk, alg.dims.n * 2 * fn_);

        let hand = ApaMatmul::new(alg.clone())
            .steps(1)
            .strategy(strategy)
            .threads(threads)
            .fusion(fusion)
            .cse(cse);
        let lambda = hand.current_lambda();

        let plan = CompiledPlan {
            rule: alg.name.clone(),
            steps: 1,
            lambda,
            strategy,
            fusion,
            threads,
            cse,
            predicted_seconds: 0.0,
            predicted_error: 0.0,
            additions_before: 0,
            additions_after: 0,
        };
        let via_plan = plan.to_matmul().unwrap();

        let a = rand_mat::<f32>(m, k, seed);
        let b = rand_mat::<f32>(k, n, seed ^ 0xABCD);
        assert_bitwise(
            &via_plan.multiply(a.as_ref(), b.as_ref()),
            &hand.multiply(a.as_ref(), b.as_ref()),
            &format!("{} s1 t{threads} {strategy:?} {fusion:?} cse={cse}", alg.name),
        )?;
    }

    /// The *compiler's own* output — whatever rule it picks for a random
    /// request — stays bitwise faithful to the escape-hatch path built
    /// from the plan's public fields.
    #[test]
    fn compiler_choice_matches_escape_hatch(
        m in 16usize..=96,
        k in 16usize..=96,
        n in 16usize..=96,
        threads in 1usize..=4,
        seed in 1u64..u64::MAX,
    ) {
        let req = PlanRequest::new(m, k, n).threads(threads);
        let plan = PlanCompiler::new().compile(&req);
        let exec = plan.build().unwrap();

        let a = rand_mat::<f32>(m, k, seed);
        let b = rand_mat::<f32>(k, n, seed ^ 0x5EED);
        let got = exec.multiply(a.as_ref(), b.as_ref());

        let want = if plan.is_classical() {
            prop_assert!(matches!(exec, PlanExec::Classical(_)));
            ClassicalMatmul::new()
                .threads(plan.threads)
                .multiply(a.as_ref(), b.as_ref())
        } else {
            let alg = catalog::by_name(&plan.rule).unwrap();
            ApaMatmul::new(alg)
                .steps(plan.steps)
                .lambda(plan.lambda)
                .strategy(plan.strategy)
                .threads(plan.threads)
                .fusion(plan.fusion)
                .cse(plan.cse)
                .multiply(a.as_ref(), b.as_ref())
        };
        assert_bitwise(&got, &want, &format!("compiled {} for {m}x{k}x{n}", plan.rule))?;
    }

    /// CSE-on vs CSE-off: same λ, same rule, same inputs — the rewrite
    /// only reassociates combination additions, so its error against the
    /// exact product stays within a small factor of the unrewritten
    /// plan's (the PR-5 fusion-equivalence tolerance shape: relative
    /// budget plus an absolute floor).
    #[test]
    fn cse_stays_within_fusion_equivalence_tolerance(
        alg_idx in 0usize..6,
        strat_idx in 0usize..3,
        fm in 1usize..=2,
        seed in 1u64..u64::MAX,
    ) {
        let lineup = catalog::paper_lineup();
        let alg = lineup[alg_idx % lineup.len()].clone();
        let strategy = STRATEGIES[strat_idx];
        let (m, k, n) = (alg.dims.m * 2 * fm, alg.dims.k * 2 * fm, alg.dims.n * 2 * fm);

        let a = rand_mat::<f64>(m, k, seed);
        let b = rand_mat::<f64>(k, n, seed ^ 0xC5E);
        let exact = ClassicalMatmul::new().multiply(a.as_ref(), b.as_ref());

        let off = ApaMatmul::new(alg.clone()).strategy(strategy).cse(false);
        let on = off.clone().cse(true);

        let err = |got: &apa_gemm::Mat<f64>| -> f64 {
            let mut worst = 0.0f64;
            for i in 0..m {
                for j in 0..n {
                    worst = worst.max((got.at(i, j) - exact.at(i, j)).abs());
                }
            }
            worst
        };
        let err_off = err(&off.multiply(a.as_ref(), b.as_ref()));
        let err_on = err(&on.multiply(a.as_ref(), b.as_ref()));
        prop_assert!(
            err_on <= err_off.max(1e-13) * 4.0 + 1e-13,
            "{}: cse error {err_on:e} vs baseline {err_off:e}",
            alg.name
        );
    }
}
