//! Algorithm auto-selection: micro-time the catalog at the caller's shape
//! and thread count and return the fastest configured multiplier.
//!
//! The paper's Fig. 3/6 message is that the best algorithm depends on the
//! dimension, the thread count and whether the sub-multiplication count
//! divides the threads; an end user should not have to read the figures —
//! this module reruns the relevant race at their actual operating point.
//!
//! Probing at a scaled-down shape is only honest if the probe keeps the
//! real shape's *divisibility class*: a ⟨3,2,2⟩ rule pads `n = 1000` but
//! splits `n = 996` cleanly, and a probe that silently rounds both to 512
//! measures a different regime than the one the caller will run. Each
//! candidate is therefore probed at the largest `d ≤ probe_n` congruent to
//! `n` modulo its split period, scored against a classical baseline at the
//! *same* `d`, and the winner is re-validated once at the real shape.

use crate::apamm::{ApaMatmul, ClassicalMatmul};
use crate::schedule::Strategy;
use apa_core::{catalog, BilinearAlgorithm};
use apa_gemm::Mat;
use std::time::Instant;

/// One candidate's measurement.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Algorithm name, or "classical".
    pub name: String,
    /// Best-of-two seconds at this candidate's probe shape. Candidates may
    /// probe at different dimensions, so compare `relative`, not seconds.
    pub seconds: f64,
    /// Relative to the classical baseline at the same probe shape
    /// (< 1.0 is faster).
    pub relative: f64,
}

/// Result of an autotuning race.
#[derive(Debug)]
pub struct TuneOutcome {
    /// The winner, configured and ready to use; `None` when classical won
    /// (either outright, or after the full-shape re-validation).
    pub best: Option<ApaMatmul>,
    pub best_name: String,
    /// All measurements, fastest first by `relative`.
    pub candidates: Vec<Candidate>,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// Probe dimension for one candidate: the largest `d ≤ min(n, probe_n)`
/// with `d ≡ n (mod period)`, where `period` is the candidate's split
/// period (lcm of its `⟨m̂, k̂, n̂⟩` dims). Keeping the residue keeps the
/// padding overhead and sub-multiplication geometry of the real shape —
/// the very things the module doc says decide the Fig. 3/6 winner. Falls
/// back to the plain cap when the class has no representative in range.
fn probe_dim(n: usize, probe_n: usize, period: usize) -> usize {
    let cap = n.min(probe_n);
    if n <= probe_n || period == 0 {
        return cap;
    }
    let rem = n % period;
    if rem > cap {
        return cap;
    }
    let d = cap - ((cap - rem) % period);
    if d == 0 {
        cap
    } else {
        d
    }
}

fn probe_mats(d: usize) -> (Mat<f32>, Mat<f32>) {
    let a = Mat::<f32>::from_fn(d, d, |i, j| ((i * 7 + j) % 13) as f32 * 0.077 - 0.5);
    let b = Mat::<f32>::from_fn(d, d, |i, j| ((i + j * 3) % 11) as f32 * 0.09 - 0.45);
    (a, b)
}

/// Best of two timed runs after one warmup.
fn time2(f: &mut dyn FnMut()) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    f();
    let first = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    f();
    first.min(t1.elapsed().as_secs_f64())
}

/// Race the paper lineup (plus classical) at shape `n×n×n` with the given
/// thread count; `probe_n` bounds the tuning cost.
pub fn autotune(n: usize, threads: usize, probe_n: usize) -> TuneOutcome {
    autotune_with(catalog::paper_lineup(), n, threads, probe_n)
}

/// [`autotune`] over an explicit candidate list.
pub fn autotune_with(
    algorithms: Vec<BilinearAlgorithm>,
    n: usize,
    threads: usize,
    probe_n: usize,
) -> TuneOutcome {
    let classical = ClassicalMatmul::new().threads(threads);

    // Classical baseline per distinct probe dimension, memoized: seconds
    // at two different dimensions are not comparable, so every candidate
    // is scored against classical at its *own* probe shape.
    let mut baselines: Vec<(usize, f64)> = Vec::new();
    let mut classical_at = |d: usize| -> f64 {
        if let Some(&(_, t)) = baselines.iter().find(|&&(bd, _)| bd == d) {
            return t;
        }
        let (a, b) = probe_mats(d);
        let mut c = Mat::<f32>::zeros(d, d);
        let t = time2(&mut || {
            classical.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        });
        baselines.push((d, t));
        t
    };

    let d_ref = n.min(probe_n);
    let mut candidates = vec![Candidate {
        name: "classical".into(),
        seconds: classical_at(d_ref),
        relative: 1.0,
    }];

    // (relative speed, probe dim, configured multiplier) of the leader.
    let mut leader: Option<(f64, usize, ApaMatmul)> = None;
    for alg in algorithms {
        let name = alg.name.clone();
        let period = lcm(lcm(alg.dims.m, alg.dims.k), alg.dims.n);
        let d = probe_dim(n, probe_n, period);
        let mm = ApaMatmul::new(alg)
            .strategy(Strategy::Hybrid)
            .threads(threads);
        let (a, b) = probe_mats(d);
        let mut c = Mat::<f32>::zeros(d, d);
        let t = time2(&mut || {
            mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        });
        let relative = t / classical_at(d);
        candidates.push(Candidate {
            name,
            seconds: t,
            relative,
        });
        if relative < 1.0
            && leader
                .as_ref()
                .map(|(r, _, _)| relative < *r)
                .unwrap_or(true)
        {
            leader = Some((relative, d, mm));
        }
    }
    candidates.sort_by(|x, y| x.relative.total_cmp(&y.relative));

    // Re-validate the probe winner once at the real shape. The probe kept
    // the divisibility class, but cache behaviour does not always
    // extrapolate; one head-to-head pair of full-size multiplies is cheap
    // insurance against shipping a probe-only winner.
    let mut best = leader.map(|(_, d, mm)| (d, mm));
    if let Some((d, mm)) = &best {
        if *d < n {
            let (a, b) = probe_mats(n);
            let mut c = Mat::<f32>::zeros(n, n);
            let t0 = Instant::now();
            mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
            let t_apa = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            classical.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
            let t_classical = t1.elapsed().as_secs_f64();
            if t_apa >= t_classical {
                best = None;
            }
        }
    }

    let best_name = match &best {
        Some(_) => candidates[0].name.clone(),
        None => "classical".into(),
    };
    TuneOutcome {
        best: best.map(|(_, mm)| mm),
        best_name,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_gemm::matmul_naive;

    #[test]
    fn race_produces_ordered_candidates() {
        let outcome = autotune_with(vec![catalog::strassen(), catalog::bini322()], 256, 1, 128);
        assert_eq!(outcome.candidates.len(), 3);
        for w in outcome.candidates.windows(2) {
            assert!(w[0].relative <= w[1].relative, "not sorted by relative");
        }
        // classical has relative exactly 1.0 by definition.
        let classical = outcome
            .candidates
            .iter()
            .find(|c| c.name == "classical")
            .unwrap();
        assert_eq!(classical.relative, 1.0);
        match &outcome.best {
            // A surviving winner is the relative-fastest candidate.
            Some(_) => assert_eq!(outcome.best_name, outcome.candidates[0].name),
            // Classical won, either at the probe or at the full-shape check.
            None => assert_eq!(outcome.best_name, "classical"),
        }
    }

    #[test]
    fn winner_multiplies_correctly_when_apa_wins() {
        let outcome = autotune_with(vec![catalog::fast444()], 512, 1, 96);
        if let Some(mm) = outcome.best {
            let a = Mat::<f32>::from_fn(40, 40, |i, j| (i + j) as f32 * 0.01);
            let b = Mat::<f32>::from_fn(40, 40, |i, j| (i as f32 - j as f32) * 0.01);
            let got = mm.multiply(a.as_ref(), b.as_ref());
            let expect = matmul_naive(a.as_ref(), b.as_ref());
            assert!(got.rel_frobenius_error(&expect) < 1e-3);
        }
    }

    #[test]
    fn probe_dim_preserves_divisibility_class() {
        // Real n within budget: probe at the exact shape.
        assert_eq!(probe_dim(100, 512, 2), 100);
        // Scaled down, the probe keeps n's residue mod the split period.
        assert_eq!(probe_dim(4096, 512, 2), 512); // 4096 ≡ 0 ≡ 512 (mod 2)
        assert_eq!(probe_dim(4097, 512, 2), 511); // 4097 ≡ 1 ≡ 511 (mod 2)
        assert_eq!(probe_dim(1000, 512, 6), 508); // 1000 ≡ 4 ≡ 508 (mod 6)
        assert_eq!(probe_dim(996, 512, 6), 510); // 996 ≡ 0 ≡ 510 (mod 6)
                                                 // Degenerate budgets fall back to the plain cap.
        assert_eq!(probe_dim(4096, 3, 6), 3);
        assert_eq!(probe_dim(4096, 512, 0), 512);
    }
}
