//! A counting global allocator for zero-allocation invariant tests.
//!
//! The workspace-reuse contract of the APA engine is "no steady-state heap
//! traffic": once a [`crate::Scratch`]/workspace is warm, repeated
//! multiplications must not allocate. That invariant is easy to break
//! silently (a stray `Vec` in a hot loop), so tests pin it with a global
//! allocator that counts every allocation:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: apa_gemm::CountingAlloc = apa_gemm::CountingAlloc;
//!
//! let before = apa_gemm::allocation_counters();
//! hot_path();
//! let after = apa_gemm::allocation_counters();
//! assert_eq!(after.calls - before.calls, 0);
//! ```
//!
//! The counters are process-global atomics; when `CountingAlloc` is not
//! installed as the global allocator they simply stay at zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Pass-through [`System`] allocator that counts allocation calls/bytes.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; only side effect is two
// relaxed atomic increments, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Cumulative allocation totals since process start (zero unless
/// [`CountingAlloc`] is installed as the `#[global_allocator]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocationCounters {
    /// Number of `alloc`/`alloc_zeroed`/`realloc` calls.
    pub calls: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

impl AllocationCounters {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: AllocationCounters) -> AllocationCounters {
        AllocationCounters {
            calls: self.calls - earlier.calls,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Snapshot the global allocation counters.
pub fn allocation_counters() -> AllocationCounters {
    AllocationCounters {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_subtract() {
        let a = AllocationCounters {
            calls: 10,
            bytes: 640,
        };
        let b = AllocationCounters {
            calls: 4,
            bytes: 128,
        };
        assert_eq!(
            a.since(b),
            AllocationCounters {
                calls: 6,
                bytes: 512
            }
        );
    }
}
