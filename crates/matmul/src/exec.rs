//! The APA execution engine: runs a compiled [`ExecPlan`] on real matrices.
//!
//! One recursive step (the paper's regime):
//!
//! 1. the operands are partitioned into the rule's `m×k` / `k×n` grids of
//!    zero-copy block views;
//! 2. for each multiplication `t`, the operand combinations `S_t`/`T_t` are
//!    formed with write-once [`combine`] kernels — unless the combination
//!    is a singleton, in which case the block view is used directly and the
//!    scalar folds into the gemm α;
//! 3. `M_t = S_t · T_t` runs on the classical [`apa_gemm`] leaf (or
//!    recursively on this engine for multi-step execution);
//! 4. each output block of `Ĉ` is produced in a single write-once pass over
//!    its contributing products.
//!
//! Parallelism follows [`Strategy`] after
//! [`effective_strategy`](crate::schedule::effective_strategy) coercion:
//! DFS (all-thread gemm per product), BFS (contiguous chunks of products
//! per thread), or the paper's Hybrid (q products per thread on
//! single-threaded gemm, then the ℓ remainder products on all threads).
//!
//! # Fused execution
//!
//! Under [`FusionPolicy::Auto`]/[`FusionPolicy::Always`] the framework's
//! additions fold into the gemm leaves instead of materializing:
//!
//! * **Pack-time operand combination** — steps 2–3 merge: the term lists
//!   `Σᵢ uᵢ·A_i` / `Σᵢ vᵢ·B_i` go straight to
//!   [`gemm_combined`], whose packers form the combination while packing
//!   panels. The packers mirror the `combine` kernels' FMA chains exactly,
//!   so this is **bitwise identical** to materializing `S_t`/`T_t` first —
//!   and each operand element is read once instead of written to and
//!   re-read from a scratch buffer.
//! * **Epilogue W-accumulation** — step 4 merges into step 3 for every
//!   output block whose products all have fan-out 1 (and, under Hybrid,
//!   whose owned-phase writers share one thread's chunk): the product is
//!   written as `C_blk ← w·α·(S_t·T_t) + β·C_blk` from the register tile,
//!   eliminating the `M_t` buffer and a full write+read of it. This
//!   *reorders* the final accumulation — `w·(α·acc)` instead of
//!   `(w·α)·acc`, and a running gemm-epilogue sum instead of `combine`'s
//!   single FMA chain — so fused results match the materialized path to
//!   rounding, not bitwise: each fused output element differs by at most
//!   `(n_w + 1)·ε·Σ|w_t·M_t|` where `n_w` is the block's writer count
//!   (≤ 2 ulp of the accumulated magnitude for every catalog rule, which
//!   is far below the APA rules' own `O(λ)` approximation error).
//!
//! [`FusionPolicy::Never`] runs the fully materialized path above,
//! unchanged — the bitwise sentinel the property tests compare against.
//!
//! Every buffer the engine touches lives in a [`LevelWs`] tree: the
//! public entry points here build a transient one per call, while the
//! `*_ws` entry points in [`crate::peel`] (and [`crate::ApaMatmul`]'s
//! internal cache) reuse a warm [`crate::Workspace`] so the steady state
//! performs **zero heap allocations** — both paths execute the identical
//! code and produce bitwise-identical results.

use crate::plan::{Combo, ExecPlan};
use crate::schedule::{effective_strategy, FusionPolicy, Strategy};
use crate::workspace::{build_level, FusionSpec, LaneWs, LevelWs};
use apa_gemm::{combine_par, gemm, gemm_combined, pool, Mat, MatMut, MatRef, Par, Scalar};
use std::borrow::Borrow;

/// Recursion chains up to this depth are staged on the stack; deeper
/// chains (never seen in practice — step counts are 1–3) fall back to a
/// heap `Vec`.
pub(crate) const MAX_INLINE_STEPS: usize = 16;

/// Combination/output term lists up to this arity are staged on the
/// stack. The largest catalog rule (`fast444`, rank 49) has combos of at
/// most ~16 terms; the fallback `Vec` keeps arbitrary plans correct.
pub(crate) const MAX_INLINE_TERMS: usize = 24;

/// Run `f` on the uniform chain `[plan; steps]` without allocating for
/// typical step counts.
pub(crate) fn with_uniform_chain<R>(
    plan: &ExecPlan,
    steps: u32,
    f: impl FnOnce(&[&ExecPlan]) -> R,
) -> R {
    let steps = steps as usize;
    if steps <= MAX_INLINE_STEPS {
        let buf = [plan; MAX_INLINE_STEPS];
        f(&buf[..steps])
    } else {
        let chain: Vec<&ExecPlan> = (0..steps).map(|_| plan).collect();
        f(&chain)
    }
}

/// `C ← Â·B̂` by the compiled plan. Dimensions must be divisible by the
/// rule's base dims (use [`crate::peel`] for arbitrary shapes).
#[allow(clippy::too_many_arguments)]
pub fn fast_matmul_into<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
    fusion: FusionPolicy,
) {
    with_uniform_chain(plan, steps, |chain| {
        fast_matmul_chain_into(chain, a, b, c, strategy, threads, fusion)
    })
}

/// Non-stationary execution (the paper's §6 extension): apply a *chain* of
/// possibly different rules, one per recursion level — `chain[0]` splits
/// the top level, `chain[1]` each sub-product, and so on. An empty chain
/// (or an indivisible level) falls back to classical gemm. Uniform
/// recursion is the special case `chain = [plan; steps]`, which is exactly
/// what [`fast_matmul_into`] builds.
///
/// Accepts both `&[ExecPlan]` and `&[&ExecPlan]` chains. This entry point
/// allocates a fresh buffer tree per call; pair it with a
/// [`crate::Workspace`] via [`crate::fast_matmul_chain_any_into_ws`] for
/// allocation-free reuse.
pub fn fast_matmul_chain_into<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    chain: &[P],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
    fusion: FusionPolicy,
) {
    let mut level = build_level(
        chain,
        a.rows(),
        a.cols(),
        b.cols(),
        strategy,
        threads,
        fusion,
    );
    run_level(chain, a, b, c, strategy, threads, &mut level);
}

/// Execute `chain` against a buffer tree sized by
/// [`build_level`](crate::workspace) for the same `(chain, shape,
/// strategy, threads)`.
pub(crate) fn run_level<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    chain: &[P],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
    level: &mut LevelWs<T>,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "inner dimensions must match");
    assert_eq!((m, n), (c.rows(), c.cols()), "C shape mismatch");

    match chain.first().map(Borrow::borrow) {
        Some(plan) if divisible(plan, m, k, n) => {
            one_step(plan, &chain[1..], a, b, c, strategy, threads, level)
        }
        _ => {
            // Leaf: classical gemm at the caller's parallelism.
            let (strategy, threads) = effective_strategy(strategy, threads, usize::MAX);
            gemm(T::ONE, a, b, T::ZERO, c, leaf_par(strategy, threads));
        }
    }
}

pub(crate) fn divisible(plan: &ExecPlan, m: usize, k: usize, n: usize) -> bool {
    let d = plan.dims;
    m.is_multiple_of(d.m)
        && k.is_multiple_of(d.k)
        && n.is_multiple_of(d.n)
        && m >= d.m
        && k >= d.k
        && n >= d.n
}

fn leaf_par(strategy: Strategy, threads: usize) -> Par {
    match strategy {
        Strategy::Seq => Par::Seq,
        _ => Par::Threads(threads),
    }
}

/// Zero-copy accessor for the `gr×gc` block grid of an operand, indexed
/// row-major like the plan's combo block indices. Replaces the old
/// `Vec<MatRef>` grids so the hot path builds no per-call lists.
///
/// Indices at or beyond the grid size (`gr·gc`) resolve to the level's
/// CSE temp buffers (see [`crate::cse`]): virtual block `gr·gc + i` is
/// `temps[i]`, matching the plan's temp index space.
#[derive(Clone, Copy)]
struct Blocks<'a, T> {
    mat: MatRef<'a, T>,
    grid_cols: usize,
    rows: usize,
    cols: usize,
    /// First virtual temp index (= `gr·gc`).
    base: usize,
    temps: &'a [Mat<T>],
}

impl<'a, T: Scalar> Blocks<'a, T> {
    fn new(mat: MatRef<'a, T>, gr: usize, gc: usize, temps: &'a [Mat<T>]) -> Self {
        debug_assert_eq!(mat.rows() % gr, 0);
        debug_assert_eq!(mat.cols() % gc, 0);
        Blocks {
            mat,
            grid_cols: gc,
            rows: mat.rows() / gr,
            cols: mat.cols() / gc,
            base: gr * gc,
            temps,
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> MatRef<'a, T> {
        if idx >= self.base {
            return self.temps[idx - self.base].as_ref();
        }
        let (i, j) = (idx / self.grid_cols, idx % self.grid_cols);
        self.mat
            .subview(i * self.rows, j * self.cols, self.rows, self.cols)
    }
}

/// Stage `Σ coeff·lookup(idx)` into `dst` with the same write-once
/// `combine` kernels as [`form_combo`], resolving indices through a
/// caller-supplied lookup (grid blocks + temps, or products + W-temps).
fn combine_indexed<'p, T: Scalar + 'p>(
    dst: MatMut<'_, T>,
    terms: &[(usize, f64)],
    lookup: impl Fn(usize) -> MatRef<'p, T>,
    par: Par,
) {
    if !terms.is_empty() && terms.len() <= MAX_INLINE_TERMS {
        // Stack-staged term list; slots past terms.len() are never read.
        let mut staged = [(T::ZERO, lookup(terms[0].0)); MAX_INLINE_TERMS];
        for (slot, &(idx, coeff)) in staged.iter_mut().zip(terms) {
            *slot = (T::from_f64(coeff), lookup(idx));
        }
        combine_par(dst, false, &staged[..terms.len()], par);
    } else {
        let staged: Vec<(T, MatRef<'_, T>)> = terms
            .iter()
            .map(|&(idx, coeff)| (T::from_f64(coeff), lookup(idx)))
            .collect();
        combine_par(dst, false, &staged, par);
    }
}

/// Materialize one operand side's CSE temps in definition order (temp `i`
/// may reference temps `< i`, so the buffer slice splits incrementally).
fn materialize_operand_temps<T: Scalar>(
    spec: &[Vec<(usize, f64)>],
    mat: MatRef<'_, T>,
    gr: usize,
    gc: usize,
    bufs: &mut [Mat<T>],
    par: Par,
) {
    debug_assert_eq!(spec.len(), bufs.len(), "workspace temp count mismatch");
    for (i, terms) in spec.iter().enumerate() {
        let (done, rest) = bufs.split_at_mut(i);
        let blocks = Blocks::new(mat, gr, gc, done);
        combine_indexed(rest[0].as_mut(), terms, |idx| blocks.get(idx), par);
    }
}

/// Where a product's result lands.
enum Target<'w, 'c, T: Scalar> {
    /// Materialize `M_t = α·S_t·T_t` into the workspace product buffer.
    Buf(&'w mut Mat<T>),
    /// Epilogue-fused: `C_blk ← w·α·(S_t·T_t) + β·C_blk` straight from the
    /// gemm register tile. The bool marks the block's first writer in
    /// execution order (β = 0; later writers accumulate with β = 1).
    Block(MatMut<'c, T>, f64, bool),
}

/// The output coefficient of fused product `t` in `block`, read from the
/// caller's plan (the workspace schedule stores only structure so that
/// structurally identical plans with different coefficients can share it).
fn output_weight(plan: &ExecPlan, block: usize, t: usize) -> f64 {
    plan.c_outputs[block]
        .iter()
        .find(|&&(tt, _)| tt == t)
        .map(|&(_, w)| w)
        .expect("fused product contributes to its block")
}

#[allow(clippy::too_many_arguments)]
fn one_step<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    plan: &ExecPlan,
    rest: &[P],
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
    strategy: Strategy,
    threads: usize,
    level: &mut LevelWs<T>,
) {
    let d = plan.dims;
    let r = plan.rank;
    let (strategy, threads) = effective_strategy(strategy, threads, r);

    let LevelWs {
        products,
        lanes,
        fusion,
        a_temps,
        b_temps,
        w_temps,
    } = level;
    let fusion = &*fusion;
    let policy = fusion.policy;
    debug_assert_eq!(products.len(), r, "workspace product count mismatch");

    // CSE temps for the operand sides materialize once, before the
    // product loop (and before any lane spawns — the temp buffers are
    // read-shared by every lane afterwards).
    if !plan.a_temps.is_empty() || !plan.b_temps.is_empty() {
        let par = leaf_par(strategy, threads);
        materialize_operand_temps(&plan.a_temps, a, d.m, d.k, a_temps, par);
        materialize_operand_temps(&plan.b_temps, b, d.k, d.n, b_temps, par);
    }
    let a_blocks = Blocks::new(a, d.m, d.k, &*a_temps);
    let b_blocks = Blocks::new(b, d.k, d.n, &*b_temps);
    debug_assert!(!lanes.is_empty(), "workspace has no lanes");
    let (bm, bn) = (c.rows() / d.m, c.cols() / d.n);
    let mut c = c;

    match strategy {
        Strategy::Seq | Strategy::Dfs => {
            let par = leaf_par(strategy, threads);
            let lane = &mut lanes[0];
            for (t, m_out) in products.iter_mut().enumerate() {
                let target = match fusion.epilogue_of(t) {
                    Some((block, init)) => {
                        let (bi, bj) = (block / d.n, block % d.n);
                        let dst = c.rb().into_subview(bi * bm, bj * bn, bm, bn);
                        Target::Block(dst, output_weight(plan, block, t), init)
                    }
                    None => Target::Buf(m_out),
                };
                compute_product(plan, rest, t, a_blocks, b_blocks, target, par, lane, policy);
            }
        }
        Strategy::Bfs => {
            // Contiguous chunks (instead of the round-robin lists of
            // `bfs_schedule`) carry the same work distribution with no
            // per-call list allocation; threads is already capped at r.
            // BFS never epilogue-fuses (see `fused_block_mask`), so every
            // product materializes.
            debug_assert_eq!(fusion.fused_products(), 0);
            let chunk = r.div_ceil(threads);
            pool(threads).scope(|s| {
                for (ci, (chunk_prods, lane)) in
                    products.chunks_mut(chunk).zip(lanes.iter_mut()).enumerate()
                {
                    s.spawn(move |_| {
                        for (j, m_out) in chunk_prods.iter_mut().enumerate() {
                            let t = ci * chunk + j;
                            compute_product(
                                plan,
                                rest,
                                t,
                                a_blocks,
                                b_blocks,
                                Target::Buf(m_out),
                                Par::Seq,
                                lane,
                                policy,
                            );
                        }
                    });
                }
            });
        }
        Strategy::Hybrid => {
            // r = p·q + ℓ with q ≥ 1 (q = 0 was coerced to Dfs): each
            // thread owns a contiguous run of q products, then the ℓ
            // remainder products run one at a time on all threads.
            let q = r / threads;
            let owned = threads * q;
            let (own_slice, rem_slice) = products.split_at_mut(owned);
            if fusion.any_fused_below(owned) {
                // Hand each lane the C blocks its chunk epilogue-fuses
                // into. A fused block's owned-phase writers all live in
                // one chunk (the schedule demotes blocks that straddle),
                // so the block views distribute race-free. The grid
                // allocation is amortized against the spawn boxing the
                // parallel path already pays.
                let mut grid: Vec<Option<MatMut<'_, T>>> =
                    c.rb().into_grid(d.m, d.n).into_iter().map(Some).collect();
                pool(threads).scope(|s| {
                    for (i, (chunk_prods, lane)) in
                        own_slice.chunks_mut(q).zip(lanes.iter_mut()).enumerate()
                    {
                        let mut owned_blocks: Vec<(usize, MatMut<'_, T>)> = Vec::new();
                        for j in 0..chunk_prods.len() {
                            if let Some((block, _)) = fusion.epilogue_of(i * q + j) {
                                if let Some(view) = grid[block].take() {
                                    owned_blocks.push((block, view));
                                }
                            }
                        }
                        s.spawn(move |_| {
                            for (j, m_out) in chunk_prods.iter_mut().enumerate() {
                                let t = i * q + j;
                                let target = match fusion.epilogue_of(t) {
                                    Some((block, init)) => {
                                        let dst = owned_blocks
                                            .iter_mut()
                                            .find(|(b, _)| *b == block)
                                            .expect("chunk owns its fused blocks")
                                            .1
                                            .rb();
                                        Target::Block(dst, output_weight(plan, block, t), init)
                                    }
                                    None => Target::Buf(m_out),
                                };
                                compute_product(
                                    plan,
                                    rest,
                                    t,
                                    a_blocks,
                                    b_blocks,
                                    target,
                                    Par::Seq,
                                    lane,
                                    policy,
                                );
                            }
                        });
                    }
                });
            } else {
                pool(threads).scope(|s| {
                    for (i, (chunk_prods, lane)) in
                        own_slice.chunks_mut(q).zip(lanes.iter_mut()).enumerate()
                    {
                        s.spawn(move |_| {
                            for (j, m_out) in chunk_prods.iter_mut().enumerate() {
                                compute_product(
                                    plan,
                                    rest,
                                    i * q + j,
                                    a_blocks,
                                    b_blocks,
                                    Target::Buf(m_out),
                                    Par::Seq,
                                    lane,
                                    policy,
                                );
                            }
                        });
                    }
                });
            }
            // The spawned tasks are done; lane 0 and the C grid borrows
            // are free again. Remainder writers run sequentially (in t
            // order, after every owned chunk), so fused accumulation into
            // a shared block stays ordered.
            let par = Par::Threads(threads);
            let lane = &mut lanes[0];
            for (j, m_out) in rem_slice.iter_mut().enumerate() {
                let t = owned + j;
                let target = match fusion.epilogue_of(t) {
                    Some((block, init)) => {
                        let (bi, bj) = (block / d.n, block % d.n);
                        let dst = c.rb().into_subview(bi * bm, bj * bn, bm, bn);
                        Target::Block(dst, output_weight(plan, block, t), init)
                    }
                    None => Target::Buf(m_out),
                };
                compute_product(plan, rest, t, a_blocks, b_blocks, target, par, lane, policy);
            }
        }
    }

    // W-side CSE temps are shared partial sums over the products; they
    // materialize (in definition order — temp i may read temps < i)
    // before the output pass resolves them like virtual products.
    if !plan.w_temps.is_empty() {
        debug_assert_eq!(
            w_temps.len(),
            plan.w_temps.len(),
            "workspace W-temp count mismatch"
        );
        let par = leaf_par(strategy, threads);
        for (i, terms) in plan.w_temps.iter().enumerate() {
            let (done, rest) = w_temps.split_at_mut(i);
            combine_indexed(
                rest[0].as_mut(),
                terms,
                |t| {
                    if t < r {
                        products[t].as_ref()
                    } else {
                        done[t - r].as_ref()
                    }
                },
                par,
            );
        }
    }

    write_outputs(plan, c, products, w_temps, strategy, threads, fusion);
}

/// Compute product `t` into its target: form `S_t`/`T_t` (in the lane's
/// buffers, or as pack-time term lists) and run the gemm.
#[allow(clippy::too_many_arguments)]
fn compute_product<T: Scalar, P: Borrow<ExecPlan> + Sync>(
    plan: &ExecPlan,
    rest: &[P],
    t: usize,
    a_blocks: Blocks<'_, T>,
    b_blocks: Blocks<'_, T>,
    target: Target<'_, '_, T>,
    par: Par,
    lane: &mut LaneWs<T>,
    policy: FusionPolicy,
) {
    let recursive = !rest.is_empty();
    let LaneWs {
        s_buf,
        t_buf,
        child,
    } = lane;

    if recursive || policy == FusionPolicy::Never {
        // Materialized path: combinations form in the lane buffers, the
        // product lands in M_t. Under `Never` this is the engine's
        // pre-fusion reference, bit for bit.
        let Target::Buf(m_out) = target else {
            unreachable!("recursive and Never-policy products never epilogue-fuse")
        };
        let (s_view, alpha_a) = match &plan.a_combos[t] {
            Combo::Single { block, coeff } if !recursive || *coeff == 1.0 => {
                (a_blocks.get(*block), *coeff)
            }
            combo => {
                debug_assert_eq!(
                    (s_buf.rows(), s_buf.cols()),
                    (a_blocks.rows, a_blocks.cols),
                    "workspace S-buffer shape mismatch"
                );
                form_combo(s_buf.as_mut(), combo, a_blocks, par);
                (s_buf.as_ref(), 1.0)
            }
        };
        let (t_view, alpha_b) = match &plan.b_combos[t] {
            Combo::Single { block, coeff } if !recursive || *coeff == 1.0 => {
                (b_blocks.get(*block), *coeff)
            }
            combo => {
                debug_assert_eq!(
                    (t_buf.rows(), t_buf.cols()),
                    (b_blocks.rows, b_blocks.cols),
                    "workspace T-buffer shape mismatch"
                );
                form_combo(t_buf.as_mut(), combo, b_blocks, par);
                (t_buf.as_ref(), 1.0)
            }
        };

        if recursive {
            debug_assert!(
                (alpha_a - 1.0).abs() < f64::EPSILON && (alpha_b - 1.0).abs() < f64::EPSILON
            );
            let child = child
                .as_deref_mut()
                .expect("recursive level carries a child workspace");
            run_level(
                rest,
                s_view,
                t_view,
                m_out.as_mut(),
                Strategy::Seq,
                1,
                child,
            );
        } else {
            let alpha = T::from_f64(alpha_a * alpha_b);
            gemm(alpha, s_view, t_view, T::ZERO, m_out.as_mut(), par);
        }
        return;
    }

    // Fused leaf: the operand combinations form during the gemm pack
    // sweep (`pack_*_combined` mirrors the `combine` kernels FMA for FMA,
    // so this is bitwise identical to materializing first), and the
    // product lands in its target straight from the register tile.
    let (dst, w, init) = match target {
        Target::Buf(m_out) => {
            debug_assert_eq!(
                (m_out.rows(), m_out.cols()),
                (a_blocks.rows, b_blocks.cols),
                "workspace product-buffer shape mismatch"
            );
            (m_out.as_mut(), 1.0, true)
        }
        Target::Block(dst, w, init) => (dst, w, init),
    };
    let beta = if init { T::ZERO } else { T::ONE };
    with_combo_terms(
        &plan.a_combos[t],
        a_blocks,
        s_buf,
        policy,
        par,
        |a_terms, alpha_a| {
            with_combo_terms(
                &plan.b_combos[t],
                b_blocks,
                t_buf,
                policy,
                par,
                |b_terms, alpha_b| {
                    let alpha = T::from_f64(w * alpha_a * alpha_b);
                    gemm_combined(alpha, a_terms, b_terms, beta, dst, par);
                },
            );
        },
    );
}

/// Hand `f` the pack-time term list for `combo`, plus the scalar that
/// folds into gemm's α. Singletons pass their block view directly with
/// the coefficient folded into α (`1.0·x` in the pack is exact, so the
/// fold matches the materialized path bit for bit). Term lists wider than
/// the inline stage heap-stage under `Always` and materialize into the
/// lane buffer under `Auto` — in lockstep with
/// [`crate::workspace`]'s `combo_pack_fusable`.
fn with_combo_terms<T: Scalar, R>(
    combo: &Combo,
    blocks: Blocks<'_, T>,
    buf: &mut Mat<T>,
    policy: FusionPolicy,
    par: Par,
    f: impl FnOnce(&[(T, MatRef<'_, T>)], f64) -> R,
) -> R {
    match combo {
        Combo::Single { block, coeff } => f(&[(T::ONE, blocks.get(*block))], *coeff),
        Combo::Multi(v) if v.len() <= MAX_INLINE_TERMS => {
            // Stack-staged term list; slots past v.len() are never read.
            let mut terms = [(T::ZERO, blocks.mat); MAX_INLINE_TERMS];
            for (slot, &(b, coeff)) in terms.iter_mut().zip(v) {
                *slot = (T::from_f64(coeff), blocks.get(b));
            }
            f(&terms[..v.len()], 1.0)
        }
        Combo::Multi(v) if policy == FusionPolicy::Always => {
            let terms: Vec<(T, MatRef<'_, T>)> = v
                .iter()
                .map(|&(b, coeff)| (T::from_f64(coeff), blocks.get(b)))
                .collect();
            f(&terms, 1.0)
        }
        combo => {
            // Auto keeps the zero-alloc steady state: a term list too wide
            // for the inline stage materializes into the lane buffer.
            debug_assert_eq!(
                (buf.rows(), buf.cols()),
                (blocks.rows, blocks.cols),
                "workspace combination-buffer shape mismatch"
            );
            form_combo(buf.as_mut(), combo, blocks, par);
            f(&[(T::ONE, buf.as_ref())], 1.0)
        }
    }
}

fn form_combo<T: Scalar>(dst: MatMut<'_, T>, combo: &Combo, blocks: Blocks<'_, T>, par: Par) {
    match combo {
        Combo::Single { block, coeff } => {
            combine_par(
                dst,
                false,
                &[(T::from_f64(*coeff), blocks.get(*block))],
                par,
            );
        }
        Combo::Multi(v) => combine_indexed(dst, v, |b| blocks.get(b), par),
    }
}

fn write_outputs<T: Scalar>(
    plan: &ExecPlan,
    c: MatMut<'_, T>,
    products: &[Mat<T>],
    w_temps: &[Mat<T>],
    strategy: Strategy,
    threads: usize,
    fusion: &FusionSpec,
) {
    let d = plan.dims;
    let r = plan.rank;
    let (bm, bn) = (c.rows() / d.m, c.cols() / d.n);
    let par = leaf_par(strategy, threads);
    let mut c = c;
    for block in 0..d.m * d.n {
        if fusion.is_block_fused(block) {
            continue; // already landed in C from the gemm epilogue
        }
        let (bi, bj) = (block / d.n, block % d.n);
        let dst = c.rb().into_subview(bi * bm, bj * bn, bm, bn);
        let contrib = &plan.c_outputs[block];
        debug_assert!(
            !contrib.is_empty(),
            "output block {block} receives no products"
        );
        combine_indexed(
            dst,
            contrib,
            |t| {
                if t < r {
                    products[t].as_ref()
                } else {
                    w_temps[t - r].as_ref()
                }
            },
            par,
        );
    }
}

/// Convenience: allocate and return `Ĉ = Â·B̂`.
pub fn fast_matmul<T: Scalar>(
    plan: &ExecPlan,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    steps: u32,
    strategy: Strategy,
    threads: usize,
    fusion: FusionPolicy,
) -> Mat<T> {
    let mut c = Mat::zeros(a.rows(), b.cols());
    fast_matmul_into(plan, a, b, c.as_mut(), steps, strategy, threads, fusion);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;
    use apa_gemm::matmul_naive;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Mat<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check_fusion(
        alg_name: &str,
        lambda: f64,
        mult: usize,
        tol: f64,
        strategy: Strategy,
        threads: usize,
        fusion: FusionPolicy,
    ) {
        let alg = catalog::by_name(alg_name).unwrap();
        let d = alg.dims;
        let (m, k, n) = (d.m * mult, d.k * mult, d.n * mult);
        let a = rand_mat(m, k, 1);
        let b = rand_mat(k, n, 2);
        let plan = ExecPlan::compile(&alg, lambda);
        let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, strategy, threads, fusion);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        assert!(
            err < tol,
            "{alg_name} ({strategy:?}, t={threads}, {fusion:?}): rel err {err} > {tol}"
        );
    }

    fn check(
        alg_name: &str,
        lambda: f64,
        mult: usize,
        tol: f64,
        strategy: Strategy,
        threads: usize,
    ) {
        for fusion in [FusionPolicy::Auto, FusionPolicy::Never] {
            check_fusion(alg_name, lambda, mult, tol, strategy, threads, fusion);
        }
    }

    #[test]
    fn strassen_exact_sequential() {
        check("strassen", 0.0, 16, 1e-12, Strategy::Seq, 1);
    }

    #[test]
    fn bini_apa_sequential() {
        // f64: optimal λ ≈ 2^-26; error ~2^-26 ≈ 1.5e-8.
        check("bini322", 2.0_f64.powi(-26), 10, 1e-6, Strategy::Seq, 1);
    }

    #[test]
    fn every_paper_algorithm_multiplies_correctly() {
        for alg in catalog::paper_lineup() {
            let lambda = if alg.is_exact_rule() {
                0.0
            } else {
                2.0_f64.powi(-26)
            };
            check(&alg.name, lambda, 4, 1e-5, Strategy::Seq, 1);
        }
    }

    #[test]
    fn strategies_agree() {
        for strategy in [Strategy::Dfs, Strategy::Bfs, Strategy::Hybrid] {
            check("bini322", 2.0_f64.powi(-26), 8, 1e-6, strategy, 3);
            check("fast444", 0.0, 8, 1e-12, strategy, 4);
        }
    }

    #[test]
    fn hybrid_with_exact_division_of_threads() {
        // fast442 has 28 products; with 4 threads q = 7, ℓ = 0.
        check("fast442", 0.0, 8, 1e-12, Strategy::Hybrid, 4);
        // With 3 threads ℓ = 1: exercises the all-thread remainder phase.
        check("fast442", 0.0, 8, 1e-12, Strategy::Hybrid, 3);
    }

    #[test]
    fn more_threads_than_products_runs_every_strategy() {
        // bini322 has 10 products; 16 threads exercises the BFS lane cap
        // and the Hybrid→DFS coercion end to end.
        for strategy in [Strategy::Bfs, Strategy::Hybrid, Strategy::Dfs] {
            check("bini322", 2.0_f64.powi(-26), 4, 1e-6, strategy, 16);
        }
    }

    #[test]
    fn two_recursive_steps() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let a = rand_mat(32, 32, 7);
        let b = rand_mat(32, 32, 8);
        let got = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            2,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn two_steps_apa_rule() {
        let alg = catalog::bini322();
        // 2 steps need divisibility by 3², 2², 2².
        let plan = ExecPlan::compile(&alg, 2.0_f64.powi(-18));
        let a = rand_mat(27, 12, 9);
        let b = rand_mat(12, 12, 10);
        let got = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            2,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        // two steps double φ's effect; stay lenient.
        assert!(got.rel_frobenius_error(&expect) < 1e-3);
    }

    #[test]
    fn indivisible_dims_fall_back_to_gemm() {
        let alg = catalog::strassen();
        let plan = ExecPlan::compile(&alg, 0.0);
        let a = rand_mat(7, 9, 11);
        let b = rand_mat(9, 5, 12);
        let got = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            1,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn zero_steps_is_plain_gemm() {
        let alg = catalog::bini322();
        let plan = ExecPlan::compile(&alg, 0.5); // huge λ — must not matter
        let a = rand_mat(6, 4, 13);
        let b = rand_mat(4, 4, 14);
        let got = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            0,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn nonstationary_chain_of_two_rules() {
        // Level 0 splits with Bini <3,2,2>, level 1 with Strassen <2,2,2>:
        // needs dims divisible by (6, 4, 4).
        let bini = ExecPlan::compile(&catalog::bini322(), 2.0_f64.powi(-20));
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = rand_mat(30, 20, 50);
        let b = rand_mat(20, 20, 51);
        let mut c = Mat::zeros(30, 20);
        fast_matmul_chain_into(
            &[&bini, &strassen],
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-4);
    }

    #[test]
    fn chain_accepts_owned_plans() {
        // The Borrow-generic chain API takes &[ExecPlan] directly — this is
        // what lets ApaChain avoid rebuilding a Vec<&ExecPlan> per call.
        let chain = [
            ExecPlan::compile(&catalog::strassen(), 0.0),
            ExecPlan::compile(&catalog::strassen(), 0.0),
        ];
        let a = rand_mat(16, 16, 60);
        let b = rand_mat(16, 16, 61);
        let mut c = Mat::zeros(16, 16);
        fast_matmul_chain_into(
            &chain,
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn chain_order_matters_for_divisibility() {
        // 8×8×8 divides Strassen twice but Bini not even once; the chain
        // must gracefully degrade to gemm at the Bini level.
        let bini = ExecPlan::compile(&catalog::bini322(), 2.0_f64.powi(-20));
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let a = rand_mat(8, 8, 52);
        let b = rand_mat(8, 8, 53);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for chain in [vec![&strassen, &bini], vec![&bini, &strassen]] {
            let mut c = Mat::zeros(8, 8);
            fast_matmul_chain_into(
                &chain,
                a.as_ref(),
                b.as_ref(),
                c.as_mut(),
                Strategy::Seq,
                1,
                FusionPolicy::Auto,
            );
            assert!(c.rel_frobenius_error(&expect) < 1e-4);
        }
    }

    #[test]
    fn empty_chain_is_gemm() {
        let a = rand_mat(9, 7, 54);
        let b = rand_mat(7, 5, 55);
        let mut c = Mat::zeros(9, 5);
        fast_matmul_chain_into::<f64, &ExecPlan>(
            &[],
            a.as_ref(),
            b.as_ref(),
            c.as_mut(),
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn f32_single_precision_path() {
        let alg = catalog::bini322();
        let lambda = 2.0_f64.powf(-11.5); // optimal for d = 23
        let plan = ExecPlan::compile(&alg, lambda);
        let a = Mat::<f32>::from_fn(30, 20, |i, j| ((i * 31 + j * 17) % 13) as f32 * 0.1 - 0.6);
        let b = Mat::<f32>::from_fn(20, 20, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.1 - 0.5);
        let got = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            1,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        // paper Table 1: ⟨3,2,2⟩ error ≈ 3.5e-4 at single precision.
        assert!(err < 5e-3, "err {err}");
    }

    fn assert_bitwise(got: &Mat<f64>, reference: &Mat<f64>, what: &str) {
        assert_eq!(
            (got.rows(), got.cols()),
            (reference.rows(), reference.cols())
        );
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                assert!(
                    got.at(i, j).to_bits() == reference.at(i, j).to_bits(),
                    "{what}: ({i},{j}) {} != {}",
                    got.at(i, j),
                    reference.at(i, j)
                );
            }
        }
    }

    #[test]
    fn fused_matches_materialized_across_catalog() {
        // Pack-time fusion alone is bitwise identical to the materialized
        // path; epilogue fusion reorders the C accumulation, so rules with
        // fused blocks match within the documented rounding bound instead.
        for alg in catalog::paper_lineup() {
            let lambda = if alg.is_exact_rule() {
                0.0
            } else {
                2.0_f64.powi(-26)
            };
            let plan = ExecPlan::compile(&alg, lambda);
            let d = alg.dims;
            let (m, k, n) = (d.m * 4, d.k * 4, d.n * 4);
            let a = rand_mat(m, k, 21);
            let b = rand_mat(k, n, 22);
            let run =
                |fusion| fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, Strategy::Seq, 1, fusion);
            let auto = run(FusionPolicy::Auto);
            let always = run(FusionPolicy::Always);
            let never = run(FusionPolicy::Never);
            // Auto and Always agree bitwise for every catalog rule (no
            // combo exceeds the inline term stage).
            assert_bitwise(&auto, &always, &alg.name);
            let mask = crate::workspace::fused_block_mask(
                &plan,
                Strategy::Seq,
                1,
                false,
                FusionPolicy::Auto,
            );
            if mask == 0 {
                assert_bitwise(&auto, &never, &alg.name);
            } else {
                let err = auto.rel_frobenius_error(&never);
                assert!(err < 1e-14, "{}: epilogue reorder err {err}", alg.name);
            }
        }
    }

    #[test]
    fn epilogue_fusion_agrees_across_strategies() {
        use apa_core::bilinear::Dims;
        // ⟨2,2,2;8⟩ classical epilogue-fuses every block under Seq/Dfs —
        // and under Hybrid exactly where the chunk rule allows.
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(2, 2, 2)), 0.0);
        let a = rand_mat(32, 32, 31);
        let b = rand_mat(32, 32, 32);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for (strategy, threads) in [
            (Strategy::Seq, 1),
            (Strategy::Dfs, 2),
            (Strategy::Hybrid, 2),
            (Strategy::Hybrid, 3),
            (Strategy::Hybrid, 4),
            (Strategy::Bfs, 3),
        ] {
            for fusion in [FusionPolicy::Auto, FusionPolicy::Never] {
                let got = fast_matmul(&plan, a.as_ref(), b.as_ref(), 1, strategy, threads, fusion);
                let err = got.rel_frobenius_error(&expect);
                assert!(
                    err < 1e-13,
                    "classical ({strategy:?}, t={threads}, {fusion:?}): {err}"
                );
            }
        }
    }

    #[test]
    fn hybrid_fused_run_matches_sequential() {
        use apa_core::bilinear::Dims;
        // The owned-phase grid distribution and the sequential path must
        // produce identical fused placements; 3×3 classical (r = 27) with
        // 3 threads gives q = 9 with several fused blocks per chunk.
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(3, 3, 3)), 0.0);
        let a = rand_mat(27, 27, 41);
        let b = rand_mat(27, 27, 42);
        let seq = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            1,
            Strategy::Seq,
            1,
            FusionPolicy::Auto,
        );
        let hybrid = fast_matmul(
            &plan,
            a.as_ref(),
            b.as_ref(),
            1,
            Strategy::Hybrid,
            3,
            FusionPolicy::Auto,
        );
        let mask =
            |s, t| crate::workspace::fused_block_mask(&plan, s, t, false, FusionPolicy::Auto);
        if mask(Strategy::Hybrid, 3) == mask(Strategy::Seq, 1) {
            // Same fused placements → same t-ordered accumulation per
            // block, whichever lane ran it.
            assert_bitwise(&hybrid, &seq, "hybrid fused vs seq fused");
        } else {
            // The chunk rule demoted some blocks to the materialized
            // combine; those reassociate the final sum.
            let err = hybrid.rel_frobenius_error(&seq);
            assert!(err < 1e-14, "hybrid vs seq err {err}");
        }
    }
}
