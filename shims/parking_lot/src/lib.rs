//! Offline shim for `parking_lot`: a `Mutex` (and `RwLock`) backed by
//! `std::sync`, with parking_lot's panic-free, guard-returning API.
//! Poisoning is deliberately ignored — parking_lot has no poisoning.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        static M: Mutex<i32> = Mutex::new(0);
        *M.lock() += 5;
        assert_eq!(*M.lock(), 5);
        assert!(M.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }
}
