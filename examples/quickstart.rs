//! Quickstart: multiply two matrices with an APA algorithm, measure the
//! speed and the approximation error against classical gemm.
//!
//! Run with: `cargo run --release --example quickstart`

use apa_repro::prelude::*;
use std::time::Instant;

fn random(n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn main() {
    let n = 2048;
    println!("APA quickstart: {n}x{n} single-precision matrix multiplication\n");
    // What is this machine actually running? Kernel dispatch tier, gemm
    // cache blocking and the planner cache state in one merged report.
    println!("{}\n", apa_repro::diagnostics());
    let a = random(n, 1);
    let b = random(n, 2);

    // 1. Classical baseline (the MKL-role blocked gemm).
    let classical = ClassicalMatmul::new();
    let t0 = Instant::now();
    let c_ref = classical.multiply(a.as_ref(), b.as_ref());
    let t_classical = t0.elapsed().as_secs_f64();
    println!("classical gemm:        {t_classical:.3}s");

    // 2. A few catalog algorithms: exact fast and APA.
    for name in ["strassen", "bini322", "fast444"] {
        let alg = catalog::by_name(name).expect("catalog name");
        println!(
            "\n{} — dims {}, rank {}, ideal speedup {:.0}%",
            alg.name,
            alg.dims,
            alg.rank(),
            alg.ideal_speedup() * 100.0
        );
        let mm = ApaMatmul::new(alg); // λ defaults to the theoretical optimum
        let t0 = Instant::now();
        let c = mm.multiply(a.as_ref(), b.as_ref());
        let t = t0.elapsed().as_secs_f64();
        let err = c.rel_frobenius_error(&c_ref);
        println!(
            "  time {t:.3}s ({:+.1}% vs classical), rel error {err:.2e}, lambda {}",
            (t_classical / t - 1.0) * 100.0,
            if mm.current_lambda() == 0.0 {
                "n/a (exact)".to_string()
            } else {
                format!("2^{:.1}", mm.current_lambda().log2())
            }
        );
    }

    // 3. Or skip the hand-picking: the plan compiler weighs the whole
    // catalog against this machine's cost model and error targets, then
    // micro-times the analytic short-list (measured refinement).
    let plan = PlanCompiler::new()
        .measured(true)
        .compile(&PlanRequest::new(n, n, n));
    println!(
        "\nplan compiler would run: {}{} (steps {}, predicted {:.3}s, error bound {:.1e})",
        plan.rule,
        if plan.cse { "+cse" } else { "" },
        plan.steps,
        plan.predicted_seconds,
        plan.predicted_error
    );

    println!(
        "\nAPA algorithms trade a ~sqrt(machine-precision) error for fewer\n\
         multiplications; the error is harmless for NN training (paper §4.2\n\
         and `cargo run --release -p apa-bench --bin fig5`)."
    );
}
