//! Offline shim for `rayon`: a fixed-size worker pool with rayon's
//! `ThreadPool::scope`/`Scope::spawn` API (the only rayon surface this
//! workspace uses).
//!
//! Semantics:
//! * `scope(op)` runs `op` on the **calling** thread; tasks it spawns run
//!   on the pool's workers. `scope` returns only after every spawned task
//!   (including nested spawns) has finished — this barrier is what makes
//!   the lifetime erasure in `Scope::spawn` sound.
//! * A panic inside a task is caught on the worker, and re-raised from
//!   `scope` on the caller after all tasks drain.
//! * `install(f)` runs `f` inline on the caller. Nothing here relies on
//!   rayon's pool-context propagation, so this is behaviorally adequate.
//! * Do **not** open a nested `scope` from inside a spawned task: the
//!   worker would block waiting for sub-tasks that need a worker slot.
//!   (Real rayon work-steals its way out of this; this shim does not.
//!   The workspace's kernels only ever spawn leaf jobs.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl Default for ThreadPoolBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self {
            num_threads: 0,
            thread_name: None,
        }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn thread_name<F: FnMut(usize) -> String + 'static>(mut self, f: F) -> Self {
        self.thread_name = Some(Box::new(f));
        self
    }

    pub fn build(mut self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for i in 0..threads {
            let rx = Arc::clone(&receiver);
            let name = match &mut self.thread_name {
                Some(f) => f(i),
                None => format!("shim-rayon-{i}"),
            };
            std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(rx))
                .map_err(|e| ThreadPoolBuildError(e.to_string()))?;
        }
        Ok(ThreadPool { sender, threads })
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only while dequeuing, never while running the job.
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // pool dropped
        }
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

pub struct ThreadPool {
    sender: Sender<Job>,
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` inline on the calling thread (see module docs).
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        f()
    }

    /// Run `op` with a scope whose spawned tasks execute on this pool.
    /// Returns after `op` *and every spawned task* completes.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let state = Arc::new(ScopeState {
            sender: self.sender.clone(),
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let scope = Scope {
            state: Arc::clone(&state),
            _marker: std::marker::PhantomData,
        };
        let result = op(&scope);
        state.wait_all();
        if state.panicked.load(Ordering::Acquire) {
            panic!("a task spawned in a rayon-shim scope panicked");
        }
        result
    }
}

struct ScopeState {
    sender: Sender<Job>,
    pending: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn add_task(&self) {
        let mut guard = match self.pending.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *guard += 1;
    }

    fn finish_task(&self) {
        let mut guard = match self.pending.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *guard -= 1;
        if *guard == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut guard = match self.pending.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        while *guard > 0 {
            guard = match self.all_done.wait(guard) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.add_task();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                state: Arc::clone(&state),
                _marker: std::marker::PhantomData,
            };
            if catch_unwind(AssertUnwindSafe(|| f(&nested))).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            state.finish_task();
        });
        // SAFETY: `scope` blocks (wait_all) until this job has run to
        // completion before any `'scope` borrow can expire, so extending
        // the closure's lifetime to 'static never lets it observe a
        // dangling reference. This is the standard scoped-pool erasure
        // (same argument as rayon's own scope implementation).
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.state
            .sender
            .send(job)
            .expect("worker threads outlive the pool handle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let p = pool(4);
        let mut data = vec![0usize; 64];
        p.scope(|s| {
            for (i, chunk) in data.chunks_mut(8).enumerate() {
                s.spawn(move |_| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 8 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scope_blocks_until_done() {
        let p = pool(2);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn nested_spawn_from_task() {
        let p = pool(3);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(10, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 11);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn task_panic_propagates() {
        let p = pool(2);
        p.scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn install_returns_value() {
        let p = pool(2);
        assert_eq!(p.install(|| (0..100).sum::<usize>()), 4950);
        assert_eq!(p.current_num_threads(), 2);
    }
}
