//! Property-based tests (proptest) on the core invariants:
//! Laurent algebra, view/splitting laws, GEMM linearity, APA error bounds
//! and transformation correctness on randomized inputs.

use apa_repro::core::{brent, catalog, transform, Dims, Laurent};
use apa_repro::gemm::{combine, gemm_st, matmul, matmul_naive, Mat};
use apa_repro::matmul::{ApaMatmul, Strategy as ExecStrategy};
use proptest::prelude::*;

fn laurent_strategy() -> impl Strategy<Value = Laurent> {
    proptest::collection::vec((-3i32..=3, -4.0f64..4.0), 0..5).prop_map(Laurent::from_terms)
}

fn mat_strategy(max: usize) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- Laurent algebra ----------------

    #[test]
    fn laurent_add_commutes(a in laurent_strategy(), b in laurent_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn laurent_mul_matches_eval(a in laurent_strategy(), b in laurent_strategy()) {
        let x = 0.73_f64;
        let lhs = a.mul(&b).eval(x);
        let rhs = a.eval(x) * b.eval(x);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn laurent_sub_self_is_zero(a in laurent_strategy()) {
        prop_assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn laurent_display_parse_roundtrip(a in laurent_strategy()) {
        if a.is_zero() { return Ok(()); }
        let s = a.to_string();
        let b = Laurent::parse(&s).map_err(|e| TestCaseError::fail(format!("{e}: {s}")))?;
        let diff = a.sub(&b);
        prop_assert!(diff.max_abs_coeff() < 1e-9, "{} != {}", a, b);
    }

    // ---------------- GEMM ----------------

    #[test]
    fn gemm_matches_naive((m, k, av) in mat_strategy(24), n in 1usize..24) {
        let a = Mat::from_vec(m, k, av);
        let b = Mat::from_fn(k, n, |i, j| ((i * 31 + j * 7) % 11) as f32 * 0.2 - 1.0);
        let got = matmul(a.as_ref(), b.as_ref());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        prop_assert!(got.rel_frobenius_error(&expect) < 1e-4);
    }

    #[test]
    fn gemm_is_linear_in_alpha((m, k, av) in mat_strategy(16), alpha in -3.0f32..3.0) {
        let a = Mat::from_vec(m, k, av);
        let b = Mat::from_fn(k, 8, |i, j| (i + j) as f32 * 0.1);
        let mut c1 = Mat::zeros(m, 8);
        let mut c2 = Mat::zeros(m, 8);
        gemm_st(alpha, a.as_ref(), b.as_ref(), 0.0, c1.as_mut());
        gemm_st(1.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        for i in 0..m {
            for j in 0..8 {
                let expect = alpha * c2.at(i, j);
                prop_assert!((c1.at(i, j) - expect).abs() < 1e-3 * (1.0 + expect.abs()));
            }
        }
    }

    #[test]
    fn combine_is_additive((m, k, av) in mat_strategy(20), c1 in -2.0f32..2.0, c2 in -2.0f32..2.0) {
        let x = Mat::from_vec(m, k, av);
        let y = Mat::from_fn(m, k, |i, j| (i as f32 - j as f32) * 0.3);
        let mut combined = Mat::zeros(m, k);
        combine(combined.as_mut(), false, &[(c1, x.as_ref()), (c2, y.as_ref())]);
        for i in 0..m {
            for j in 0..k {
                let expect = c1 * x.at(i, j) + c2 * y.at(i, j);
                prop_assert!((combined.at(i, j) - expect).abs() < 1e-4);
            }
        }
    }

    // ---------------- APA execution ----------------

    #[test]
    fn apa_multiply_close_to_naive_any_shape(
        m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
        };
        let a = Mat::from_fn(m, k, |_, _| next());
        let b = Mat::from_fn(k, n, |_, _| next());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let mm = ApaMatmul::new(catalog::bini322()).strategy(ExecStrategy::Seq);
        let got = mm.multiply(a.as_ref(), b.as_ref());
        prop_assert!(got.rel_frobenius_error(&expect) < 1e-2);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_allocate_per_call(
        m in 1usize..36, k in 1usize..36, n in 1usize..36,
        seed in 0u64..1000, strat in 0usize..4, threads in 1usize..4
    ) {
        let strategy = [ExecStrategy::Seq, ExecStrategy::Dfs, ExecStrategy::Bfs, ExecStrategy::Hybrid][strat];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
        };
        let a = Mat::from_fn(m, k, |_, _| next());
        let b = Mat::from_fn(k, n, |_, _| next());
        let mm = ApaMatmul::new(catalog::bini322()).strategy(strategy).threads(threads);
        let mut fresh = Mat::zeros(m, n);
        mm.multiply_into_uncached(a.as_ref(), b.as_ref(), fresh.as_mut());
        let mut cached = Mat::zeros(m, n);
        // Twice through the cached path: the second call runs on a warm
        // (reused) workspace and must still match bit for bit.
        for round in 0..2 {
            mm.multiply_into(a.as_ref(), b.as_ref(), cached.as_mut());
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(
                        cached.at(i, j).to_bits(), fresh.at(i, j).to_bits(),
                        "round {} at ({}, {}) under {:?}", round, i, j, strategy
                    );
                }
            }
        }
    }

    // ---------------- Transformations ----------------

    #[test]
    fn rotation_preserves_validity_and_rank(m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let alg = catalog::classical(Dims::new(m, k, n));
        let rot = transform::rotate(&alg);
        prop_assert_eq!(rot.dims, Dims::new(k, n, m));
        prop_assert_eq!(rot.rank(), alg.rank());
        prop_assert!(brent::validate(&rot).unwrap().exact);
    }

    #[test]
    fn direct_sums_add_ranks(m1 in 1usize..3, m2 in 1usize..3, k in 1usize..3, n in 1usize..3) {
        let p = catalog::classical(Dims::new(m1, k, n));
        let q = catalog::classical(Dims::new(m2, k, n));
        let s = transform::direct_sum_m(&p, &q);
        prop_assert_eq!(s.rank(), p.rank() + q.rank());
        prop_assert_eq!(s.dims, Dims::new(m1 + m2, k, n));
        prop_assert!(brent::validate(&s).unwrap().exact);
    }

    #[test]
    fn tensor_multiplies_ranks(m in 1usize..3, k in 1usize..3, n in 1usize..3) {
        let p = catalog::strassen();
        let q = catalog::classical(Dims::new(m, k, n));
        let t = transform::tensor(&p, &q);
        prop_assert_eq!(t.rank(), 7 * m * k * n);
        prop_assert_eq!(t.dims, Dims::new(2 * m, 2 * k, 2 * n));
        prop_assert!(brent::validate(&t).unwrap().exact);
    }

    // ---------------- Data pipeline ----------------

    #[test]
    fn dataset_gather_is_faithful(n in 2usize..40, seed in 0u64..100) {
        use apa_repro::nn::synthetic_mnist;
        let ds = synthetic_mnist(n, seed);
        let idx = ds.shuffled_indices(seed + 1);
        let (x, labels) = ds.gather(&idx);
        prop_assert_eq!(x.rows(), n);
        for (row, &orig) in idx.iter().enumerate() {
            prop_assert_eq!(labels[row], ds.labels()[orig]);
            let got = &x.as_slice()[row * 784..row * 784 + 8];
            let want = &ds.images().as_slice()[orig * 784..orig * 784 + 8];
            prop_assert_eq!(got, want);
        }
    }
}
