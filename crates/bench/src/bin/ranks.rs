//! Rank inventory: paper (Smirnov) ranks vs the hand-picked catalog
//! constructions vs the automatic derivation search (`apa-core::derive`).
//!
//! Quantifies exactly how much of the paper's ideal speedup the
//! reproduction can honestly claim at each base shape without the
//! unpublished tensors — and shows the DP search matching or beating every
//! hand construction.
//!
//! Usage: `cargo run --release -p apa-bench --bin ranks`

use apa_bench::{banner, print_csv, print_table};
use apa_core::{catalog, derive::DeriveTable, Dims};

fn main() {
    banner(
        "Rank inventory: paper vs hand catalog vs derivation search",
        &["ideal speedup = mkn/rank − 1 (paper §2.4)"],
    );

    let table = DeriveTable::build(Dims::new(7, 7, 7));
    // (dims, paper rank, catalog name)
    let rows_spec: Vec<((usize, usize, usize), usize, &str)> = vec![
        ((3, 2, 2), 10, "bini322"),
        ((4, 2, 2), 13, "apa422"),
        ((3, 3, 2), 14, "apa332"),
        ((5, 2, 2), 16, "apa522"),
        ((3, 3, 3), 20, "apa333"),
        ((7, 2, 2), 22, "apa722"),
        ((4, 4, 2), 24, "fast442"),
        ((4, 3, 3), 27, "apa433"),
        ((5, 5, 2), 37, "apa552"),
        ((4, 4, 4), 46, "fast444"),
        ((5, 5, 5), 90, "fast555"),
    ];

    let speedup = |d: Dims, r: usize| (d.classical_rank() as f64 / r as f64 - 1.0) * 100.0;
    let mut rows = Vec::new();
    for ((m, k, n), paper, name) in rows_spec {
        let d = Dims::new(m, k, n);
        let manual = catalog::by_name(name).map(|a| a.rank()).unwrap_or(0);
        let auto = table.best_rank(d).unwrap();
        rows.push(vec![
            format!("<{m},{k},{n}>"),
            paper.to_string(),
            format!("{:.0}%", speedup(d, paper)),
            manual.to_string(),
            auto.to_string(),
            format!("{:.0}%", speedup(d, auto)),
            table.explain(d).unwrap(),
        ]);
    }

    print_table(
        &[
            "dims",
            "paper",
            "paper-speedup",
            "catalog",
            "derived",
            "derived-speedup",
            "derivation",
        ],
        &rows,
    );
    println!();
    print_csv(
        &[
            "dims",
            "paper",
            "paper_speedup",
            "catalog",
            "derived",
            "derived_speedup",
            "derivation",
        ],
        &rows,
    );
    println!();
    println!("the 'derived' column is what this reproduction can prove correct from the");
    println!("two published seed rules; the gap to 'paper' is exactly the value of");
    println!("Smirnov's numerically discovered (unpublished) coefficient tensors.");
}
