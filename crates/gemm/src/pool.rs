//! Shared rayon thread pools, one per requested width.
//!
//! The paper's experiments pin thread counts (1, 6, 12); the APA hybrid
//! strategy additionally needs "p workers each running sequential gemm"
//! and "all p workers inside one gemm" *on the same pool*. Pools are
//! created lazily and cached for the life of the process.

use parking_lot::Mutex;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use std::sync::Arc;

static POOLS: Mutex<Option<HashMap<usize, Arc<ThreadPool>>>> = Mutex::new(None);

/// A cached pool with exactly `threads` workers (≥ 1).
pub fn pool(threads: usize) -> Arc<ThreadPool> {
    let threads = threads.max(1);
    let mut guard = POOLS.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(threads)
        .or_insert_with(|| {
            Arc::new(
                ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .thread_name(move |i| format!("apa-gemm-{threads}-{i}"))
                    .build()
                    .expect("rayon pool construction cannot fail with valid size"),
            )
        })
        .clone()
}

/// Degree of parallelism for a kernel invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Par {
    /// Run on the calling thread.
    Seq,
    /// Run on the cached pool with this many workers.
    Threads(usize),
}

impl Par {
    /// Worker count (1 for `Seq`).
    pub fn threads(self) -> usize {
        match self {
            Par::Seq => 1,
            Par::Threads(t) => t.max(1),
        }
    }

    /// Normalize: `Threads(0|1)` behaves as `Seq`.
    pub fn normalize(self) -> Par {
        match self {
            Par::Threads(t) if t <= 1 => Par::Seq,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_cached_and_sized() {
        let p1 = pool(3);
        let p2 = pool(3);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.current_num_threads(), 3);
        assert_eq!(pool(0).current_num_threads(), 1);
    }

    #[test]
    fn par_normalization() {
        assert_eq!(Par::Threads(1).normalize(), Par::Seq);
        assert_eq!(Par::Threads(0).normalize(), Par::Seq);
        assert_eq!(Par::Threads(4).normalize(), Par::Threads(4));
        assert_eq!(Par::Seq.threads(), 1);
        assert_eq!(Par::Threads(6).threads(), 6);
    }

    #[test]
    fn pool_executes_work() {
        let p = pool(2);
        let sum: usize = p.install(|| (0..100).sum());
        assert_eq!(sum, 4950);
    }
}
