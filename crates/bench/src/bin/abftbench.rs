//! ABFT overhead + efficacy harness (ISSUE 8 acceptance evidence).
//!
//! Part 1 — overhead: guarded APA multiplies on ParaDnn-style training
//! shapes `(batch x width) · (width x width)`, ABFT off vs on (the
//! default), interleaved reps, best wall-clock per call per mode. The acceptance gate is <= 5%
//! overhead at width 1024: the checksum work is O(mk + kn + mn) against
//! the O(mkn) multiply, so it must vanish at training widths. The
//! fault-free on-mode pass doubles as the false-positive gate — a single
//! detection at catalog λ fails the run.
//!
//! Part 2 — efficacy (`--features fault-inject` only): a deterministic
//! storm of single-bit exponent flips across packed A, packed B and
//! finished C tiles, one per guarded call, counting per-call detection
//! and in-place repair. The gate is 100% of both.
//!
//! Emits `BENCH_8.json`; `scripts/bench.sh` asserts the criteria block.
//!
//! Usage: `cargo run --release -p apa-bench [--features fault-inject]
//!         --bin abftbench -- [--widths 512,1024] [--batch 64]
//!         [--reps 9] [--trials 60] [--out BENCH_8.json]`

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_gemm::Mat;
use apa_matmul::{AbftMode, ApaMatmul, GuardedApaMatmul, PeelMode, SentinelConfig, Strategy};
use serde_json::json;
use std::time::Instant;

fn probe_rect(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn guard(abft: AbftMode) -> GuardedApaMatmul {
    GuardedApaMatmul::from_matmul(
        ApaMatmul::new(catalog::bini322())
            .steps(1)
            .strategy(Strategy::Hybrid)
            .threads(1)
            .peel_mode(PeelMode::Dynamic),
    )
    .sentinel(SentinelConfig {
        abft,
        ..SentinelConfig::default()
    })
}

struct OverheadRow {
    width: usize,
    batch: usize,
    seconds_off: f64,
    seconds_on: f64,
    overhead_pct: f64,
}

/// Per-call seconds of `batch x width · width x width` through warmed
/// guards, ABFT off vs on. The two modes run *interleaved* (off, on, off,
/// on, …) and each lane takes its minimum: background load on a shared
/// machine drifts over seconds, so sequential off-then-on medians can
/// attribute a load spike to whichever mode ran during it, while paired
/// minima compare both modes under the same best-case conditions.
fn measure_overhead(batch: usize, width: usize, reps: usize) -> OverheadRow {
    let g_off = guard(AbftMode::Off);
    let g_on = guard(AbftMode::default());
    let a = probe_rect(batch, width, 7);
    let b = probe_rect(width, width, 8);
    let mut c = Mat::<f32>::zeros(batch, width);
    g_off.warm::<f32>(&[(batch, width, width)]);
    g_on.warm::<f32>(&[(batch, width, width)]);
    let (mut lane_off, mut lane_on) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        g_off.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        lane_off.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        g_on.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        lane_on.push(t0.elapsed().as_secs_f64());
    }
    let h_off = g_off.health();
    let h_on = g_on.health();
    assert_eq!(h_off.abft_checks, 0, "Off mode must not check");
    assert!(h_on.abft_checks > 0, "On mode never checked");
    assert_eq!(
        h_on.abft_detected, 0,
        "false positive on a fault-free run at catalog lambda: {h_on:?}"
    );
    let best = |lane: &[f64]| lane.iter().copied().fold(f64::INFINITY, f64::min);
    let (seconds_off, seconds_on) = (best(&lane_off), best(&lane_on));
    OverheadRow {
        width,
        batch,
        seconds_off,
        seconds_on,
        overhead_pct: (seconds_on / seconds_off - 1.0) * 100.0,
    }
}

/// One armed exponent flip per guarded call, targets in rotation;
/// returns (trials, detected_trials, repaired_trials).
#[cfg(feature = "fault-inject")]
fn flip_drill(trials: u64) -> (u64, u64, u64) {
    use apa_matmul::fault::{self, Fault, FaultKind, FlipTarget};
    let g = guard(AbftMode::default());
    let (m, k, n) = (96usize, 64usize, 80usize);
    let a = probe_rect(m, k, 17);
    let b = probe_rect(k, n, 18);
    let mut c = Mat::<f32>::zeros(m, n);
    g.warm::<f32>(&[(m, k, n)]);
    let targets = [FlipTarget::PackA, FlipTarget::PackB, FlipTarget::Output];
    let (mut detected, mut repaired) = (0u64, 0u64);
    for t in 0..trials {
        let before = g.health();
        fault::install(&[Fault {
            at_call: before.calls,
            kind: FaultKind::BitFlip {
                target: targets[(t % 3) as usize],
                index: (t % 23) as usize,
                bit: 30,
            },
        }]);
        g.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        let after = g.health();
        if after.abft_detected > before.abft_detected {
            detected += 1;
        }
        if after.abft_detected > before.abft_detected
            && after.abft_repaired - before.abft_repaired
                == after.abft_detected - before.abft_detected
        {
            repaired += 1;
        }
    }
    fault::clear();
    (trials, detected, repaired)
}

fn main() {
    let args = Args::parse();
    let widths: Vec<usize> = args
        .get_str("widths")
        .unwrap_or("512,1024")
        .split(',')
        .map(|w| w.trim().parse().expect("bad --widths"))
        .collect();
    let batch = args.get("batch", 64usize);
    let reps = args.get("reps", 9usize).max(3);
    let trials = args.get("trials", 60u64).max(1);
    let out_path = args.get_str("out").unwrap_or("BENCH_8.json").to_string();

    banner(
        "ABFT checksum tier: wall-clock overhead + detection/repair rates",
        &[
            &format!(
                "guarded bini322 x1 step, Hybrid, 1 thread, ParaDnn shapes {batch} x w · w x w"
            ),
            &format!("widths {widths:?}, {reps} interleaved reps (best), ABFT off vs on"),
            &format!(
                "fault injection: {}",
                if cfg!(feature = "fault-inject") {
                    "exponent-bit flip storm (one flip per call)"
                } else {
                    "off (build with --features fault-inject for efficacy rates)"
                }
            ),
        ],
    );

    let rows: Vec<OverheadRow> = widths
        .iter()
        .map(|&w| measure_overhead(batch, w, reps))
        .collect();

    let header = ["width", "batch", "off_ms", "on_ms", "overhead_%"];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.width.to_string(),
                r.batch.to_string(),
                format!("{:.3}", r.seconds_off * 1e3),
                format!("{:.3}", r.seconds_on * 1e3),
                format!("{:+.2}", r.overhead_pct),
            ]
        })
        .collect();
    print_table(&header, &cells);
    println!();
    print_csv(&header, &cells);

    // The gate rides on the largest measured width (1024 by default).
    let gate_row = rows.iter().max_by_key(|r| r.width).expect("widths empty");
    let overhead_pass = gate_row.overhead_pct <= 5.0;

    #[cfg(feature = "fault-inject")]
    let efficacy = {
        let (t, d, r) = flip_drill(trials);
        println!(
            "\nflip drill: {t} armed exponent flips -> {d} detected, {r} fully repaired in place"
        );
        json!({
            "trials": t,
            "detected_trials": d,
            "repaired_trials": r,
            "detection_rate": (d as f64 / t as f64),
            "repair_rate": (r as f64 / t as f64),
            "all_flips_detected_and_repaired": (d == t && r == t),
        })
    };
    #[cfg(not(feature = "fault-inject"))]
    let efficacy = {
        let _ = trials;
        serde_json::Value::Null
    };

    let doc = json!({
        "bench": "abftbench",
        "config": {
            "rule": "bini322",
            "steps": 1,
            "threads": 1,
            "batch": batch,
            "widths": widths,
            "reps": reps,
            "fault_inject": (cfg!(feature = "fault-inject")),
        },
        "overhead": (rows.iter().map(|r| json!({
            "width": (r.width),
            "batch": (r.batch),
            "seconds_off": (r.seconds_off),
            "seconds_on": (r.seconds_on),
            "overhead_pct": (r.overhead_pct),
        })).collect::<Vec<_>>()),
        "efficacy": efficacy,
        "criteria": {
            "overhead_gate_pct": 5.0,
            "gate_width": (gate_row.width),
            "overhead_pct_at_gate_width": (gate_row.overhead_pct),
            "overhead_pass": overhead_pass,
            "fault_free_false_positives": 0,
        },
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize BENCH_8");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_8.json");
    println!("\nwrote {out_path}");
    println!(
        "overhead at width {}: {:+.2}% (gate: <= 5%)",
        gate_row.width, gate_row.overhead_pct
    );
    assert!(
        overhead_pass,
        "ABFT overhead gate failed: {:.2}% > 5%",
        gate_row.overhead_pct
    );
}
