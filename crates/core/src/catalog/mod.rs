//! The algorithm catalog: every bilinear rule used by the reproduction.
//!
//! Contents mirror the paper's Table 1. The two rules with fully published
//! coefficients — Strassen ⟨2,2,2;7⟩ and Bini ⟨3,2,2;10⟩ (printed in the
//! paper §2.2) — are transcribed verbatim; every other Table-1 shape is
//! *derived* from them with the provably-correct transformations in
//! [`crate::transform`] (see DESIGN.md §5 for the rank comparison against
//! Smirnov's unpublished tensors). All entries validate against the Brent
//! equations in this crate's test suite.

mod bini;
mod classical;
mod derived;
mod strassen;

pub use bini::bini322;
pub use classical::classical;
pub use derived::*;
pub use strassen::{strassen, winograd};

use crate::bilinear::BilinearAlgorithm;

/// Every named algorithm in the catalog, in the display order used by the
/// Table-1 harness (classical first, then by ascending rank).
pub fn all() -> Vec<BilinearAlgorithm> {
    vec![
        strassen(),
        winograd(),
        bini322(),
        apa422(),
        fast422(),
        apa332(),
        apa522(),
        apa333(),
        apa722(),
        fast442(),
        apa433(),
        apa552(),
        fast444(),
        fast555(),
        bini_cube(),
    ]
}

/// The algorithms benchmarked throughout the paper's figures: everything in
/// [`all`] except the ⟨12,12,12⟩ Bini cube (too large a base for the
/// paper's single-recursion regime) and the duplicate exact ⟨4,2,2⟩.
pub fn paper_lineup() -> Vec<BilinearAlgorithm> {
    all()
        .into_iter()
        .filter(|a| a.name != "binicube" && a.name != "fast422" && a.name != "winograd")
        .collect()
}

/// Look an algorithm up by its stable name.
pub fn by_name(name: &str) -> Option<BilinearAlgorithm> {
    all().into_iter().find(|a| a.name == name)
}

/// Names of all catalog entries.
pub fn names() -> Vec<String> {
    all().into_iter().map(|a| a.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brent::validate;

    #[test]
    fn every_catalog_entry_validates() {
        for alg in all() {
            let report = validate(&alg)
                .unwrap_or_else(|e| panic!("{} failed Brent validation: {e}", alg.name));
            if alg.is_exact_rule() {
                assert!(report.exact, "{} claims exact but has residual", alg.name);
            } else {
                assert_eq!(
                    report.sigma,
                    Some(1),
                    "{} should be a σ=1 APA rule",
                    alg.name
                );
            }
        }
    }

    #[test]
    fn every_catalog_entry_is_fast() {
        for alg in all() {
            assert!(
                alg.rank() < alg.dims.classical_rank(),
                "{} has rank {} >= classical {}",
                alg.name,
                alg.rank(),
                alg.dims.classical_rank()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn by_name_finds_everything() {
        for name in names() {
            assert!(by_name(&name).is_some(), "missing {name}");
        }
        assert!(by_name("no-such-algorithm").is_none());
    }

    #[test]
    fn paper_lineup_excludes_non_paper_entries() {
        let lineup = paper_lineup();
        assert!(lineup.iter().all(|a| a.name != "binicube"));
        assert!(lineup.len() >= 10);
    }

    #[test]
    fn numeric_consistency_across_catalog() {
        for alg in all() {
            let err = crate::brent::numeric_consistency(&alg, 42);
            let bound = if alg.is_exact_rule() { 1e-10 } else { 1e-2 };
            assert!(
                err < bound,
                "{}: numeric residual {err} exceeds {bound}",
                alg.name
            );
        }
    }
}
