//! The fully connected block of VGG-19 (§5, Fig. 7).
//!
//! VGG-19's classifier head is three dense layers: 25088 → 4096 → 4096 →
//! 1000. The paper times forward+backward over *only these layers* (the
//! convolutional front-end merely supplies the 25088-vector of flattened
//! features, which we synthesize), comparing the ⟨4,4,2⟩ APA operator
//! against classical gemm across batch sizes.
//!
//! A `scale` divisor shrinks all three widths proportionally so the
//! experiment also runs quickly on small machines; `scale = 1` is the
//! paper's geometry.

use crate::backend::Backend;
use crate::layer::{Activation, Dense};
use crate::loss::softmax_cross_entropy;
use apa_gemm::Mat;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Paper widths of the VGG-19 classifier head.
pub const VGG_FC_WIDTHS: [usize; 4] = [25088, 4096, 4096, 1000];

/// The three-layer VGG-19 classifier head with a single backend on all
/// layers (the paper swaps the whole head between ⟨4,4,2⟩ and classical).
pub struct Vgg19Fc {
    pub fc: [Dense; 3],
    widths: [usize; 4],
    scale: usize,
}

impl Vgg19Fc {
    /// Build the head at `1/scale` of the paper's widths.
    pub fn new(backend: Backend, scale: usize, seed: u64) -> Self {
        assert!(scale >= 1);
        let widths = [
            VGG_FC_WIDTHS[0] / scale,
            VGG_FC_WIDTHS[1] / scale,
            VGG_FC_WIDTHS[2] / scale,
            VGG_FC_WIDTHS[3] / scale,
        ];
        let fc = [
            Dense::new(
                widths[0],
                widths[1],
                Activation::Relu,
                backend.clone(),
                seed,
            ),
            Dense::new(
                widths[1],
                widths[2],
                Activation::Relu,
                backend.clone(),
                seed + 1,
            ),
            Dense::new(
                widths[2],
                widths[3],
                Activation::Identity,
                backend,
                seed + 2,
            ),
        ];
        Self { fc, widths, scale }
    }

    pub fn widths(&self) -> [usize; 4] {
        self.widths
    }

    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Synthetic flattened conv features for a batch (stands in for the
    /// convolutional front-end's output).
    pub fn synthetic_features(&self, batch: usize, seed: u64) -> Mat<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Mat::from_fn(batch, self.widths[0], |_, _| rng.gen_range(0.0..1.0))
    }

    /// Synthetic 1000-way (scaled) labels.
    pub fn synthetic_labels(&self, batch: usize, seed: u64) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let classes = self.widths[3].min(256);
        (0..batch)
            .map(|_| rng.gen_range(0..classes) as u8)
            .collect()
    }

    /// One training step (forward + loss + backward + SGD) over the head;
    /// returns wall-clock seconds — the paper's per-batch metric.
    pub fn train_batch_timed(&mut self, x: &Mat<f32>, labels: &[u8], lr: f32) -> f64 {
        let t0 = Instant::now();
        let a1 = self.fc[0].forward(x);
        let a2 = self.fc[1].forward(&a1);
        let logits = self.fc[2].forward(&a2);
        let (_, grad) = softmax_cross_entropy(&logits, labels);
        let g2 = self.fc[2].backward(&grad);
        let g1 = self.fc[1].backward(&g2);
        let _ = self.fc[0].backward(&g1);
        for l in &mut self.fc {
            l.apply_sgd(lr);
        }
        t0.elapsed().as_secs_f64()
    }

    /// Inference-only forward (for correctness tests).
    pub fn predict(&self, x: &Mat<f32>) -> Mat<f32> {
        let a1 = self.fc[0].forward_inference(x);
        let a2 = self.fc[1].forward_inference(&a1);
        self.fc[2].forward_inference(&a2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{apa, classical};
    use apa_core::catalog;

    #[test]
    fn scaled_widths() {
        let v = Vgg19Fc::new(classical(1), 16, 3);
        assert_eq!(v.widths(), [1568, 256, 256, 62]);
        assert_eq!(v.scale(), 16);
    }

    #[test]
    fn forward_shapes_through_head() {
        let v = Vgg19Fc::new(classical(1), 32, 5);
        let x = v.synthetic_features(8, 1);
        let y = v.predict(&x);
        assert_eq!((y.rows(), y.cols()), (8, v.widths()[3]));
    }

    #[test]
    fn training_step_runs_and_times() {
        let mut v = Vgg19Fc::new(classical(1), 32, 7);
        let x = v.synthetic_features(16, 2);
        let labels = v.synthetic_labels(16, 3);
        let secs = v.train_batch_timed(&x, &labels, 0.01);
        assert!(secs > 0.0);
    }

    #[test]
    fn apa_head_stays_close_to_classical() {
        // Same seed → same initial weights; one forward pass must agree to
        // within APA error.
        let x_seed = 11;
        let vc = Vgg19Fc::new(classical(1), 32, 13);
        let va = Vgg19Fc::new(apa(catalog::fast442(), 1), 32, 13);
        let x = vc.synthetic_features(8, x_seed);
        let yc = vc.predict(&x);
        let ya = va.predict(&x);
        let err = ya.rel_frobenius_error(&yc);
        assert!(err < 1e-3, "APA head diverges: {err}");
    }
}
