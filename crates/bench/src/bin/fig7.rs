//! Figure 7 — per-batch training time of VGG-19's fully connected layers:
//! ⟨4,4,2⟩ vs classical, across batch sizes.
//!
//! Paper protocol (§5): the 25088-4096-4096-1000 classifier head, forward
//! and backward per batch, APA ⟨4,4,2⟩ on all three layers. The paper
//! reports up to 15% sequential and 10% six-thread speedup.
//!
//! `--scale s` divides all widths by `s` (default 4) so the default run
//! fits a small machine; `--full` sets scale 1 (paper geometry).
//!
//! Usage: `cargo run --release -p apa-bench --bin fig7
//!           [--threads p] [--scale s] [--full] [--batches k]`

use apa_bench::{banner, print_csv, print_table, Args};
use apa_core::catalog;
use apa_nn::{apa, classical, Backend, Vgg19Fc};

fn time_head(backend: Backend, scale: usize, batch: usize, reps: usize) -> f64 {
    let mut head = Vgg19Fc::new(backend, scale, 0x7799);
    let x = head.synthetic_features(batch, 1);
    let labels = head.synthetic_labels(batch, 2);
    head.train_batch_timed(&x, &labels, 0.01); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(head.train_batch_timed(&x, &labels, 0.01));
    }
    best
}

fn main() {
    let args = Args::parse();
    let threads = args.get("threads", 1usize);
    let scale = if args.flag("full") {
        1
    } else {
        args.get("scale", 4usize)
    };
    let reps = args.get("batches", 2usize);
    let batches: Vec<usize> = if args.flag("full") {
        vec![512, 1024, 2048, 4096]
    } else {
        vec![256, 512, 1024, 2048]
    };

    banner(
        &format!("Figure 7: VGG-19 FC per-batch training time, {threads} thread(s)"),
        &[
            &format!(
                "head widths {:?} (scale 1/{scale} of the paper's 25088-4096-4096-1000)",
                Vgg19Fc::new(classical(1), scale, 0).widths()
            ),
            &format!("batch sizes {batches:?}; min of {reps} timed batches"),
        ],
    );

    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(batches.iter().map(|b| format!("batch={b}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut base_row = vec!["classical(s/batch)".to_string()];
    let mut base_times = Vec::new();
    for &b in &batches {
        let t = time_head(classical(threads), scale, b, reps);
        base_times.push(t);
        base_row.push(format!("{t:.3}s"));
        eprintln!("  classical batch={b}: {t:.3}s");
    }

    let mut fast442_row = vec!["fast442(rel)".to_string()];
    for (i, &b) in batches.iter().enumerate() {
        let t = time_head(apa(catalog::fast442(), threads), scale, b, reps);
        fast442_row.push(format!("{:.3}", t / base_times[i]));
        eprintln!("  fast442 batch={b}: {t:.3}s");
    }

    // Bonus series: the sequentially strongest algorithm in our catalog.
    let mut fast444_row = vec!["fast444(rel)".to_string()];
    for (i, &b) in batches.iter().enumerate() {
        let t = time_head(apa(catalog::fast444(), threads), scale, b, reps);
        fast444_row.push(format!("{:.3}", t / base_times[i]));
    }

    let rows = vec![base_row, fast442_row, fast444_row];
    print_table(&header_refs, &rows);
    println!();
    print_csv(&header_refs, &rows);
    println!();
    println!("expected shape (paper): <4,4,2> below 1.0 at every batch size, improving");
    println!("with batch; paper reports ~0.85 sequential and ~0.90 at 6 threads.");
}
