//! The classical (cubic) rule generator: rank `m·k·n` for any base dims.

use crate::bilinear::{BilinearAlgorithm, Dims};
use crate::coeffs::CoeffMatrix;
use crate::laurent::Laurent;

/// The classical algorithm for arbitrary base dims: one multiplication per
/// `(i, a, j)` triple, `C[i][j] += A[i][a] · B[a][j]`.
pub fn classical(dims: Dims) -> BilinearAlgorithm {
    let Dims { m, k, n } = dims;
    let r = m * k * n;
    let mut u = CoeffMatrix::zeros(m * k, r);
    let mut v = CoeffMatrix::zeros(k * n, r);
    let mut w = CoeffMatrix::zeros(m * n, r);
    let mut t = 0;
    for i in 0..m {
        for a in 0..k {
            for j in 0..n {
                u.set(dims.a_index(i, a), t, Laurent::one());
                v.set(dims.b_index(a, j), t, Laurent::one());
                w.set(dims.c_index(i, j), t, Laurent::one());
                t += 1;
            }
        }
    }
    BilinearAlgorithm::new(format!("classical{m}{k}{n}"), dims, u, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brent::validate;

    #[test]
    fn classical_has_full_rank_and_validates() {
        for (m, k, n) in [(1, 1, 1), (2, 2, 2), (3, 2, 4), (1, 5, 2)] {
            let alg = classical(Dims::new(m, k, n));
            assert_eq!(alg.rank(), m * k * n);
            assert!(alg.is_exact_rule());
            assert_eq!(alg.phi(), 0);
            assert_eq!(alg.ideal_speedup(), 0.0);
            assert!(validate(&alg).unwrap().exact);
        }
    }

    #[test]
    fn classical_matches_triple_loop() {
        let alg = classical(Dims::new(2, 3, 2));
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5, -1.0, 2.0, 0.0, 1.0, 3.0];
        let c = alg.apply_base(&a, &b, 0.25);
        // reference
        let mut expect = [0.0; 4];
        for i in 0..2 {
            for t in 0..3 {
                for j in 0..2 {
                    expect[i * 2 + j] += a[i * 3 + t] * b[t * 2 + j];
                }
            }
        }
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
