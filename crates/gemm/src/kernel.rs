//! Runtime CPU-feature dispatch for the register microkernel.
//!
//! The crate ships three kernel tiers:
//!
//! * **Scalar** — the portable `mul_add` lattice in [`crate::microkernel`].
//!   Always correct on every target (`mul_add` is IEEE-754 fused whether it
//!   lowers to an FMA instruction or a libm call), used as the fallback and
//!   as the reference side of the dispatch-matrix test suite.
//! * **Avx2** — explicit `std::arch` AVX2+FMA register tiles
//!   (f32 6×16, f64 6×8: twelve YMM accumulators per tile).
//! * **Avx512** — explicit AVX-512F register tiles
//!   (f32 14×32, f64 14×16: twenty-eight ZMM accumulators per tile).
//!
//! The tier is picked **once per process** with `is_x86_feature_detected!`
//! and cached in a [`OnceLock`]; binaries no longer need
//! `-C target-cpu=native` to get vector code, and the same binary runs
//! correctly (scalar tier) on hardware without AVX.
//!
//! Every tier computes each `C(i,j)` as the *same* chain of fused
//! multiply-adds in the same k order — a rank-1 update per packed k step,
//! one private accumulator per element — so results are **bitwise
//! identical across tiers** (asserted by `tests/dispatch_matrix.rs`).
//! Only the tile footprint (MR×NR) and therefore the packed-panel layout
//! differ.
//!
//! Environment overrides, read at first use:
//!
//! * `APA_FORCE_SCALAR_KERNEL` — any value except `0` or empty forces the
//!   scalar tier (keeps the fallback path exercised on big iron);
//! * `APA_KERNEL_TIER` — `scalar` | `avx2` | `avx512` | `auto`; a request
//!   the CPU cannot honor falls back to the best available tier.

use crate::microkernel::microkernel;
use crate::scalar::Scalar;
use std::any::TypeId;
use std::sync::OnceLock;

/// Signature of one microkernel: `C_tile ← α·(Â·B̂) + β·C_tile` over packed
/// slivers (see [`crate::microkernel::microkernel`] for the full contract).
pub type MicroKernelFn<T> = unsafe fn(
    kc: usize,
    alpha: T,
    ap: *const T,
    bp: *const T,
    beta: T,
    beta_zero: bool,
    c: *mut T,
    rs: usize,
);

/// Upper bound on `MR·NR` over every tier — sizes the ragged-edge scratch
/// tile in the blocked driver (largest shape: AVX-512 f32, 14×32).
pub const MAX_TILE_ELEMS: usize = 14 * 32;

/// The instruction-set tier a kernel was compiled for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable `mul_add` lattice (any target).
    Scalar,
    /// AVX2 + FMA, 256-bit registers.
    Avx2,
    /// AVX-512F, 512-bit registers.
    Avx512,
}

impl KernelTier {
    /// Stable lower-case name (used by env overrides and bench reports).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A resolved microkernel: tile shape plus the function to run it. Cheap to
/// copy (two `usize`, an enum, a function pointer).
#[derive(Clone, Copy)]
pub struct KernelSpec<T: Scalar> {
    /// Tier the kernel belongs to.
    pub tier: KernelTier,
    /// Register-tile rows; packed A slivers use this stride.
    pub mr: usize,
    /// Register-tile columns; packed B slivers use this stride.
    pub nr: usize,
    kernel: MicroKernelFn<T>,
}

impl<T: Scalar> KernelSpec<T> {
    /// The always-available portable kernel ([`Scalar::MR`]×[`Scalar::NR`]).
    pub fn scalar() -> Self {
        Self {
            tier: KernelTier::Scalar,
            mr: T::MR,
            nr: T::NR,
            kernel: microkernel::<T>,
        }
    }

    /// Run the kernel on one packed tile.
    ///
    /// # Safety
    /// Same contract as [`crate::microkernel::microkernel`] with
    /// `MR = self.mr`, `NR = self.nr`: `c` must point to a writable
    /// `mr × nr` tile with row stride `rs`, and `ap`/`bp` must hold at
    /// least `kc·mr` / `kc·nr` packed elements. Additionally the CPU must
    /// support `self.tier` (guaranteed when the spec came from
    /// [`kernel_spec`] / [`spec_for_tier`]).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub unsafe fn run(
        &self,
        kc: usize,
        alpha: T,
        ap: *const T,
        bp: *const T,
        beta: T,
        beta_zero: bool,
        c: *mut T,
        rs: usize,
    ) {
        (self.kernel)(kc, alpha, ap, bp, beta, beta_zero, c, rs)
    }
}

impl<T: Scalar> std::fmt::Debug for KernelSpec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSpec")
            .field("tier", &self.tier)
            .field("mr", &self.mr)
            .field("nr", &self.nr)
            .finish()
    }
}

/// Reinterpret a `KernelSpec<U>` as `KernelSpec<T>` after proving `T == U`.
/// The struct stores no `T` values — only the fn-pointer signature mentions
/// the type — so this is a no-op once the `TypeId`s match.
fn retype<U: Scalar, T: Scalar>(spec: KernelSpec<U>) -> KernelSpec<T> {
    assert_eq!(TypeId::of::<T>(), TypeId::of::<U>(), "retype type mismatch");
    // SAFETY: T and U are the same monomorphized type (checked above), so
    // the two structs have identical layout and the fn pointer is exact.
    unsafe { std::mem::transmute_copy::<KernelSpec<U>, KernelSpec<T>>(&spec) }
}

/// Tiers the running CPU can execute, best last. Always contains `Scalar`.
pub fn available_tiers() -> &'static [KernelTier] {
    static TIERS: OnceLock<Vec<KernelTier>> = OnceLock::new();
    TIERS.get_or_init(|| {
        #[allow(unused_mut)]
        let mut tiers = vec![KernelTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                tiers.push(KernelTier::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                tiers.push(KernelTier::Avx512);
            }
        }
        tiers
    })
}

fn best_available() -> KernelTier {
    *available_tiers()
        .last()
        .expect("scalar is always available")
}

/// The tier every default-dispatch gemm in this process runs on. Resolved
/// once from CPU detection plus the env overrides documented on the module.
pub fn selected_tier() -> KernelTier {
    static SELECTED: OnceLock<KernelTier> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if std::env::var("APA_FORCE_SCALAR_KERNEL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
        {
            return KernelTier::Scalar;
        }
        let best = best_available();
        match std::env::var("APA_KERNEL_TIER")
            .ok()
            .as_deref()
            .and_then(KernelTier::from_name)
        {
            // A requested tier the CPU lacks clamps down to the best real one.
            Some(requested) => requested.min(best),
            None => best,
        }
    })
}

/// The spec for an explicit tier, or `None` when this CPU cannot run it
/// (or no explicit kernel exists for `T`, which only ships `f32`/`f64`
/// SIMD tiles). `Scalar` always succeeds.
pub fn spec_for_tier<T: Scalar>(tier: KernelTier) -> Option<KernelSpec<T>> {
    if tier == KernelTier::Scalar {
        return Some(KernelSpec::scalar());
    }
    if !available_tiers().contains(&tier) {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let id = TypeId::of::<T>();
        if id == TypeId::of::<f32>() {
            let spec: KernelSpec<f32> = match tier {
                KernelTier::Avx2 => KernelSpec {
                    tier,
                    mr: 6,
                    nr: 16,
                    kernel: x86::kernel_f32_avx2,
                },
                KernelTier::Avx512 => KernelSpec {
                    tier,
                    mr: 14,
                    nr: 32,
                    kernel: x86::kernel_f32_avx512,
                },
                KernelTier::Scalar => unreachable!(),
            };
            return Some(retype(spec));
        }
        if id == TypeId::of::<f64>() {
            let spec: KernelSpec<f64> = match tier {
                KernelTier::Avx2 => KernelSpec {
                    tier,
                    mr: 6,
                    nr: 8,
                    kernel: x86::kernel_f64_avx2,
                },
                KernelTier::Avx512 => KernelSpec {
                    tier,
                    mr: 14,
                    nr: 16,
                    kernel: x86::kernel_f64_avx512,
                },
                KernelTier::Scalar => unreachable!(),
            };
            return Some(retype(spec));
        }
    }
    None
}

/// The kernel every default-dispatch gemm in this process uses for `T`:
/// [`selected_tier`] where an explicit kernel exists, scalar otherwise.
pub fn kernel_spec<T: Scalar>() -> KernelSpec<T> {
    spec_for_tier(selected_tier()).unwrap_or_else(KernelSpec::scalar)
}

/// Whether the `mul_add` lattices outside the microkernel (combined
/// packers, combine kernels) may run inside their
/// `#[target_feature(enable = "avx2,fma")]` twins. True only when a SIMD
/// tier is selected *and* avx2+fma are really present — so forcing the
/// scalar tier (`APA_FORCE_SCALAR_KERNEL`) keeps the whole portable path
/// exercised end to end. Numerics are identical either way: `mul_add` is
/// IEEE-754 fused whether it lowers to an FMA instruction or a libm call.
pub(crate) fn hardware_fma_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            selected_tier() != KernelTier::Scalar
                && std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One-line human-readable dispatch report, e.g.
/// `kernel dispatch: tier=avx512 (available: scalar,avx2,avx512) f32 14x32, f64 14x16`.
/// Bench harnesses print this so scripts can assert which tier actually ran.
pub fn dispatch_report() -> String {
    let names: Vec<&str> = available_tiers().iter().map(|t| t.name()).collect();
    let f32_spec = kernel_spec::<f32>();
    let f64_spec = kernel_spec::<f64>();
    format!(
        "kernel dispatch: tier={} (available: {}) f32 {}x{}, f64 {}x{}",
        selected_tier().name(),
        names.join(","),
        f32_spec.mr,
        f32_spec.nr,
        f64_spec.mr,
        f64_spec.nr,
    )
}

/// The explicit x86-64 kernels. Each mirrors the scalar kernel exactly:
/// a rank-1 update of the register tile per packed k step (one broadcast
/// per A row, full-width B loads, FMA into per-element accumulators),
/// then the α/β epilogue with the same operation shapes
/// (`α·acc` for β = 0, `fma(α, acc, β·c)` otherwise) — which is what makes
/// every tier bitwise-identical to every other.
#[cfg(target_arch = "x86_64")]
mod x86 {
    // Kernel signatures are pinned to the 8-argument MicroKernelFn shape.
    #![allow(unsafe_op_in_unsafe_fn, clippy::too_many_arguments)]
    use std::arch::x86_64::*;

    /// f32 AVX2+FMA 6×16 tile: 12 YMM accumulators + 2 B registers + 1
    /// broadcast, fitting the 16-register file.
    ///
    /// # Safety
    /// CPU must support avx2+fma; pointer contract as [`super::MicroKernelFn`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn kernel_f32_avx2(
        kc: usize,
        alpha: f32,
        ap: *const f32,
        bp: *const f32,
        beta: f32,
        beta_zero: bool,
        c: *mut f32,
        rs: usize,
    ) {
        const MR: usize = 6;
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let (mut a, mut b) = (ap, bp);
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_ps(*a.add(i));
                row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(16);
        }
        let av = _mm256_set1_ps(alpha);
        if beta_zero {
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                _mm256_storeu_ps(cr, _mm256_mul_ps(av, row[0]));
                _mm256_storeu_ps(cr.add(8), _mm256_mul_ps(av, row[1]));
            }
        } else {
            let bv = _mm256_set1_ps(beta);
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                let c0 = _mm256_loadu_ps(cr);
                let c1 = _mm256_loadu_ps(cr.add(8));
                _mm256_storeu_ps(cr, _mm256_fmadd_ps(av, row[0], _mm256_mul_ps(bv, c0)));
                _mm256_storeu_ps(
                    cr.add(8),
                    _mm256_fmadd_ps(av, row[1], _mm256_mul_ps(bv, c1)),
                );
            }
        }
    }

    /// f64 AVX2+FMA 6×8 tile: 12 YMM accumulators.
    ///
    /// # Safety
    /// CPU must support avx2+fma; pointer contract as [`super::MicroKernelFn`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn kernel_f64_avx2(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        beta: f64,
        beta_zero: bool,
        c: *mut f64,
        rs: usize,
    ) {
        const MR: usize = 6;
        let mut acc = [[_mm256_setzero_pd(); 2]; MR];
        let (mut a, mut b) = (ap, bp);
        for _ in 0..kc {
            let b0 = _mm256_loadu_pd(b);
            let b1 = _mm256_loadu_pd(b.add(4));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_pd(*a.add(i));
                row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
                row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(8);
        }
        let av = _mm256_set1_pd(alpha);
        if beta_zero {
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                _mm256_storeu_pd(cr, _mm256_mul_pd(av, row[0]));
                _mm256_storeu_pd(cr.add(4), _mm256_mul_pd(av, row[1]));
            }
        } else {
            let bv = _mm256_set1_pd(beta);
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                let c0 = _mm256_loadu_pd(cr);
                let c1 = _mm256_loadu_pd(cr.add(4));
                _mm256_storeu_pd(cr, _mm256_fmadd_pd(av, row[0], _mm256_mul_pd(bv, c0)));
                _mm256_storeu_pd(
                    cr.add(4),
                    _mm256_fmadd_pd(av, row[1], _mm256_mul_pd(bv, c1)),
                );
            }
        }
    }

    /// f32 AVX-512F 14×32 tile: 28 ZMM accumulators + 2 B registers + 1
    /// broadcast, fitting the 32-register file (the BLIS skx shape).
    ///
    /// # Safety
    /// CPU must support avx512f; pointer contract as [`super::MicroKernelFn`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn kernel_f32_avx512(
        kc: usize,
        alpha: f32,
        ap: *const f32,
        bp: *const f32,
        beta: f32,
        beta_zero: bool,
        c: *mut f32,
        rs: usize,
    ) {
        const MR: usize = 14;
        let mut acc = [[_mm512_setzero_ps(); 2]; MR];
        let (mut a, mut b) = (ap, bp);
        for _ in 0..kc {
            let b0 = _mm512_loadu_ps(b);
            let b1 = _mm512_loadu_ps(b.add(16));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm512_set1_ps(*a.add(i));
                row[0] = _mm512_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm512_fmadd_ps(ai, b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(32);
        }
        let av = _mm512_set1_ps(alpha);
        if beta_zero {
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                _mm512_storeu_ps(cr, _mm512_mul_ps(av, row[0]));
                _mm512_storeu_ps(cr.add(16), _mm512_mul_ps(av, row[1]));
            }
        } else {
            let bv = _mm512_set1_ps(beta);
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                let c0 = _mm512_loadu_ps(cr);
                let c1 = _mm512_loadu_ps(cr.add(16));
                _mm512_storeu_ps(cr, _mm512_fmadd_ps(av, row[0], _mm512_mul_ps(bv, c0)));
                _mm512_storeu_ps(
                    cr.add(16),
                    _mm512_fmadd_ps(av, row[1], _mm512_mul_ps(bv, c1)),
                );
            }
        }
    }

    /// f64 AVX-512F 14×16 tile: 28 ZMM accumulators.
    ///
    /// # Safety
    /// CPU must support avx512f; pointer contract as [`super::MicroKernelFn`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn kernel_f64_avx512(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        beta: f64,
        beta_zero: bool,
        c: *mut f64,
        rs: usize,
    ) {
        const MR: usize = 14;
        let mut acc = [[_mm512_setzero_pd(); 2]; MR];
        let (mut a, mut b) = (ap, bp);
        for _ in 0..kc {
            let b0 = _mm512_loadu_pd(b);
            let b1 = _mm512_loadu_pd(b.add(8));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm512_set1_pd(*a.add(i));
                row[0] = _mm512_fmadd_pd(ai, b0, row[0]);
                row[1] = _mm512_fmadd_pd(ai, b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(16);
        }
        let av = _mm512_set1_pd(alpha);
        if beta_zero {
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                _mm512_storeu_pd(cr, _mm512_mul_pd(av, row[0]));
                _mm512_storeu_pd(cr.add(8), _mm512_mul_pd(av, row[1]));
            }
        } else {
            let bv = _mm512_set1_pd(beta);
            for (i, row) in acc.iter().enumerate() {
                let cr = c.add(i * rs);
                let c0 = _mm512_loadu_pd(cr);
                let c1 = _mm512_loadu_pd(cr.add(8));
                _mm512_storeu_pd(cr, _mm512_fmadd_pd(av, row[0], _mm512_mul_pd(bv, c0)));
                _mm512_storeu_pd(
                    cr.add(8),
                    _mm512_fmadd_pd(av, row[1], _mm512_mul_pd(bv, c1)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(available_tiers().contains(&KernelTier::Scalar));
        assert_eq!(available_tiers()[0], KernelTier::Scalar);
        let s = spec_for_tier::<f32>(KernelTier::Scalar).unwrap();
        assert_eq!((s.mr, s.nr), (f32::MR, f32::NR));
    }

    #[test]
    fn selected_tier_is_available() {
        assert!(available_tiers().contains(&selected_tier()));
    }

    #[test]
    fn specs_fit_ragged_scratch_budget() {
        for &tier in available_tiers() {
            if let Some(s) = spec_for_tier::<f32>(tier) {
                assert!(s.mr * s.nr <= MAX_TILE_ELEMS, "{tier}: f32 tile too big");
            }
            if let Some(s) = spec_for_tier::<f64>(tier) {
                assert!(s.mr * s.nr <= MAX_TILE_ELEMS, "{tier}: f64 tile too big");
            }
        }
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512] {
            assert_eq!(KernelTier::from_name(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::from_name("sse9"), None);
    }

    #[test]
    fn dispatch_report_names_selected_tier() {
        let report = dispatch_report();
        assert!(report.contains(&format!("tier={}", selected_tier().name())));
        assert!(report.contains("available: scalar"));
    }
}
