//! Pluggable matrix-multiplication backends — the reproduction of the
//! paper's custom TensorFlow operators (§4.1).
//!
//! The paper swaps the matmul used by selected layers (forward *and*
//! gradient multiplications) between a classical `gemm` call and an APA
//! algorithm. Here a layer simply owns a `Arc<dyn MatmulBackend>`.

use apa_core::BilinearAlgorithm;
use apa_gemm::{Mat, MatMut, MatRef};
use apa_matmul::{
    ApaMatmul, ClassicalMatmul, GuardedApaMatmul, HealthStats, PeelMode, QualityOverride, Strategy,
};
use std::sync::Arc;

/// A matrix-multiplication provider used by network layers. All NN compute
/// is single precision, matching the paper.
pub trait MatmulBackend: Send + Sync {
    /// `C ← A·B`.
    fn matmul_into(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>, c: MatMut<'_, f32>);

    /// Diagnostic name (shows up in experiment reports).
    fn name(&self) -> String;

    /// Allocate-and-return convenience.
    fn matmul(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>) -> Mat<f32> {
        let mut c = Mat::zeros(a.rows(), b.cols());
        self.matmul_into(a, b, c.as_mut());
        c
    }

    /// `Aᵀ·B` — the weight-gradient shape of backpropagation
    /// (`dW = Xᵀ·dZ`). Default: materialize the transpose, then multiply
    /// through this backend (so APA backends approximate this product too,
    /// exactly as the paper's custom gradient operators do).
    fn matmul_tn(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>) -> Mat<f32> {
        let at = apa_gemm::transpose(a);
        self.matmul(at.as_ref(), b)
    }

    /// `A·Bᵀ` — the input-gradient shape (`dX = dZ·Wᵀ`).
    fn matmul_nt(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>) -> Mat<f32> {
        let bt = apa_gemm::transpose(b);
        self.matmul(a, bt.as_ref())
    }

    /// Pre-build whatever the backend caches per `(m, k, n)` shape —
    /// execution workspaces, probe scratch, thread-local gemm pack buffers
    /// — so the **first** real multiply on a declared shape is already
    /// allocation-free. Pack buffers are thread-local: call this on the
    /// thread that will run the multiplies (the serving lanes do). The
    /// default runs two throwaway multiplies per shape, which settles any
    /// backend built on the workspace-caching engine.
    fn warm(&self, shapes: &[(usize, usize, usize)]) {
        for &(m, k, n) in shapes {
            if m == 0 || k == 0 || n == 0 {
                continue;
            }
            let a = Mat::zeros(m, k);
            let b = Mat::zeros(k, n);
            let mut c = Mat::zeros(m, n);
            self.matmul_into(a.as_ref(), b.as_ref(), c.as_mut());
            self.matmul_into(a.as_ref(), b.as_ref(), c.as_mut());
        }
    }
}

/// The classical baseline: a direct call into the blocked gemm ("custom
/// classical operator that directly calls gemm", §4.1).
pub struct ClassicalBackend {
    inner: ClassicalMatmul,
    threads: usize,
}

impl ClassicalBackend {
    pub fn new(threads: usize) -> Self {
        Self {
            inner: ClassicalMatmul::new().threads(threads),
            threads,
        }
    }
}

impl MatmulBackend for ClassicalBackend {
    fn matmul_into(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>, c: MatMut<'_, f32>) {
        self.inner.multiply_into(a, b, c);
    }

    fn name(&self) -> String {
        format!("classical(t={})", self.threads)
    }
}

/// An APA (or exact fast) backend wrapping a configured [`ApaMatmul`].
///
/// Because [`ApaMatmul::multiply_into`] caches execution workspaces keyed
/// by shape, a layer that multiplies the same shapes every training step
/// (fixed batch size) reuses the APA intermediate buffers across steps —
/// steady-state calls perform zero heap allocation inside the engine.
pub struct ApaBackend {
    inner: ApaMatmul,
}

impl ApaBackend {
    /// Defaults mirror the paper's setup: λ at the theoretical optimum,
    /// one recursive step, hybrid strategy, dynamic peeling.
    pub fn new(alg: BilinearAlgorithm, threads: usize) -> Self {
        Self {
            inner: ApaMatmul::new(alg)
                .steps(1)
                .strategy(Strategy::Hybrid)
                .threads(threads)
                .peel_mode(PeelMode::Dynamic),
        }
    }

    /// Full control over the inner multiplier.
    pub fn from_matmul(inner: ApaMatmul) -> Self {
        Self { inner }
    }

    pub fn matmul_config(&self) -> &ApaMatmul {
        &self.inner
    }
}

impl MatmulBackend for ApaBackend {
    fn matmul_into(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>, c: MatMut<'_, f32>) {
        self.inner.multiply_into(a, b, c);
    }

    fn name(&self) -> String {
        format!(
            "{}(t={})",
            self.inner.algorithm().name,
            self.inner.current_threads()
        )
    }

    fn warm(&self, shapes: &[(usize, usize, usize)]) {
        // Also raises the workspace-cache bound so the declared shape set
        // can never evict itself (see `ApaMatmul::warm`).
        self.inner.warm::<f32>(shapes);
    }
}

/// An APA backend wrapped in the numerical-health sentinel and the
/// graceful-degradation ladder of [`apa_matmul::fallback`]: every layer
/// multiplication is scanned for non-finite values (and residual-probed at
/// the sentinel's sampling rate), and a violating product is transparently
/// recomputed on a more conservative rung — down to exact classical gemm —
/// before the layer ever sees it.
pub struct GuardedBackend {
    inner: GuardedApaMatmul,
}

impl GuardedBackend {
    /// Same execution defaults as [`ApaBackend::new`], guarded.
    pub fn new(alg: BilinearAlgorithm, threads: usize) -> Self {
        Self {
            inner: GuardedApaMatmul::from_matmul(
                ApaMatmul::new(alg)
                    .steps(1)
                    .strategy(Strategy::Hybrid)
                    .threads(threads)
                    .peel_mode(PeelMode::Dynamic),
            ),
        }
    }

    /// Full control over the guard (policy, sentinel config, base
    /// multiplier).
    pub fn from_guard(inner: GuardedApaMatmul) -> Self {
        Self { inner }
    }

    pub fn guard(&self) -> &GuardedApaMatmul {
        &self.inner
    }

    /// Sentinel/ladder counters accumulated over all layer matmuls routed
    /// through this backend.
    pub fn health(&self) -> HealthStats {
        self.inner.health()
    }

    /// Install (or clear) a load-driven [`QualityOverride`] on the guard —
    /// the hook a serving-layer brownout controller uses to trade answer
    /// quality for throughput on a warm replica without touching its
    /// sticky health state (see
    /// [`GuardedApaMatmul::set_quality_override`]).
    pub fn set_quality_override(&self, quality: Option<QualityOverride>) {
        self.inner.set_quality_override(quality);
    }
}

impl MatmulBackend for GuardedBackend {
    fn matmul_into(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>, c: MatMut<'_, f32>) {
        self.inner.multiply_into(a, b, c);
    }

    fn name(&self) -> String {
        format!(
            "guarded-{}(t={})",
            self.inner.base().algorithm().name,
            self.inner.base().current_threads()
        )
    }

    fn warm(&self, shapes: &[(usize, usize, usize)]) {
        // Warms the ladder's starting rung, the probe scratch and the
        // per-shape ladder state (see `GuardedApaMatmul::warm`).
        self.inner.warm::<f32>(shapes);
    }
}

/// A shape-adaptive backend driven by the `apa-planner` compiler: instead
/// of fixing one algorithm for every layer, each `(m, k, n)` a layer
/// multiplies gets its own [`apa_planner::CompiledPlan`] — rule, depth,
/// λ, strategy, fusion, CSE — chosen by the cost model (and remembered in
/// the process-wide plan store). [`MatmulBackend::warm`] is the compile
/// point: one plan per declared shape, then the executor itself is
/// warmed, so training/serving steps never compile on the hot path. A
/// shape that was never warmed compiles lazily on first multiply.
pub struct PlannedBackend {
    threads: usize,
    target_error: f64,
    guarded: bool,
    slots: std::sync::Mutex<std::collections::HashMap<(usize, usize, usize), Arc<PlannedSlot>>>,
}

enum PlannedSlot {
    Exec(apa_planner::PlanExec),
    Guarded(Box<GuardedApaMatmul>),
}

impl PlannedBackend {
    /// Plain planned backend at the paper's training-safe error band
    /// (1e-2 relative, single precision).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            target_error: 1e-2,
            guarded: false,
            slots: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Wrap every compiled (non-classical) plan in the sentinel guard.
    pub fn guarded(mut self) -> Self {
        self.guarded = true;
        self
    }

    /// Tighten/loosen the §2.3 error target the compiler filters with.
    pub fn target_error(mut self, target: f64) -> Self {
        self.target_error = target;
        self
    }

    fn slot(&self, shape: (usize, usize, usize)) -> Arc<PlannedSlot> {
        if let Some(slot) = self.slots.lock().unwrap().get(&shape) {
            return slot.clone();
        }
        // Compile outside the slot lock: the planner global has its own
        // cache, and a slow first compile must not stall sibling shapes.
        let (m, k, n) = shape;
        let req = apa_planner::PlanRequest::new(m, k, n)
            .threads(self.threads)
            .target_error(self.target_error)
            .robustness(if self.guarded {
                apa_planner::Robustness::Guarded
            } else {
                apa_planner::Robustness::Plain
            });
        let plan = apa_planner::compile(&req);
        let slot = Arc::new(if self.guarded && !plan.is_classical() {
            use apa_planner::FromPlan;
            PlannedSlot::Guarded(Box::new(
                GuardedApaMatmul::from_plan(&plan).expect("non-classical plan"),
            ))
        } else {
            PlannedSlot::Exec(plan.build().expect("compiled plan builds"))
        });
        self.slots
            .lock()
            .unwrap()
            .entry(shape)
            .or_insert(slot)
            .clone()
    }

    /// The rules chosen so far, per shape (diagnostics; sorted by shape).
    pub fn chosen_rules(&self) -> Vec<((usize, usize, usize), String)> {
        let mut out: Vec<_> = self
            .slots
            .lock()
            .unwrap()
            .iter()
            .map(|(&shape, slot)| {
                let rule = match slot.as_ref() {
                    PlannedSlot::Exec(exec) => exec.rule_name().to_string(),
                    PlannedSlot::Guarded(g) => format!("guarded-{}", g.base().algorithm().name),
                };
                (shape, rule)
            })
            .collect();
        out.sort();
        out
    }
}

impl MatmulBackend for PlannedBackend {
    fn matmul_into(&self, a: MatRef<'_, f32>, b: MatRef<'_, f32>, c: MatMut<'_, f32>) {
        let slot = self.slot((a.rows(), a.cols(), b.cols()));
        match slot.as_ref() {
            PlannedSlot::Exec(exec) => exec.multiply_into(a, b, c),
            PlannedSlot::Guarded(guard) => guard.multiply_into(a, b, c),
        }
    }

    fn name(&self) -> String {
        format!(
            "planned{}(t={},err<={:.0e})",
            if self.guarded { "-guarded" } else { "" },
            self.threads,
            self.target_error
        )
    }

    fn warm(&self, shapes: &[(usize, usize, usize)]) {
        for &shape in shapes {
            if shape.0 == 0 || shape.1 == 0 || shape.2 == 0 {
                continue;
            }
            match self.slot(shape).as_ref() {
                PlannedSlot::Exec(exec) => exec.warm::<f32>(&[shape]),
                PlannedSlot::Guarded(guard) => guard.warm::<f32>(&[shape]),
            }
        }
    }
}

/// Shared-pointer alias used throughout the network code.
pub type Backend = Arc<dyn MatmulBackend>;

/// Convenience constructors.
pub fn classical(threads: usize) -> Backend {
    Arc::new(ClassicalBackend::new(threads))
}

pub fn apa(alg: BilinearAlgorithm, threads: usize) -> Backend {
    Arc::new(ApaBackend::new(alg, threads))
}

/// Sentinel-guarded APA backend (see [`GuardedBackend`]). Returns the
/// concrete `Arc` so callers can keep a handle for [`GuardedBackend::health`]
/// while handing clones to layers as `Backend`.
pub fn guarded(alg: BilinearAlgorithm, threads: usize) -> Arc<GuardedBackend> {
    Arc::new(GuardedBackend::new(alg, threads))
}

/// Compiler-driven backend: one plan per layer shape, chosen by
/// `apa-planner` at warm time (see [`PlannedBackend`]).
pub fn planned(threads: usize) -> Backend {
    Arc::new(PlannedBackend::new(threads))
}

/// [`planned`], with every non-classical plan behind the sentinel guard.
/// Returns the concrete `Arc` so callers can inspect
/// [`PlannedBackend::chosen_rules`].
pub fn planned_guarded(threads: usize) -> Arc<PlannedBackend> {
    Arc::new(PlannedBackend::new(threads).guarded())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;
    use apa_gemm::matmul_naive;

    fn probe(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
        })
    }

    #[test]
    fn classical_backend_matches_reference() {
        let a = probe(33, 21, 1);
        let b = probe(21, 17, 2);
        let got = classical(1).matmul(a.as_ref(), b.as_ref());
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-5);
    }

    #[test]
    fn apa_backend_is_accurate_enough_for_training() {
        let a = probe(30, 30, 3);
        let b = probe(30, 30, 4);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        for name in ["bini322", "fast442", "fast444"] {
            let be = apa(catalog::by_name(name).unwrap(), 1);
            let got = be.matmul(a.as_ref(), b.as_ref());
            let err = got.rel_frobenius_error(&expect);
            assert!(err < 5e-3, "{name}: {err}");
        }
    }

    #[test]
    fn names_are_informative() {
        assert!(classical(6).name().contains("classical"));
        assert!(apa(catalog::bini322(), 2).name().contains("bini322"));
        assert!(guarded(catalog::bini322(), 2)
            .name()
            .contains("guarded-bini322"));
    }

    #[test]
    fn planned_backend_compiles_per_shape_and_is_accurate() {
        let be = PlannedBackend::new(1);
        let a = probe(64, 48, 7);
        let b = probe(48, 32, 8);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        MatmulBackend::warm(&be, &[(64, 48, 32), (32, 48, 32)]);
        assert_eq!(be.chosen_rules().len(), 2, "one plan per warmed shape");
        let got = be.matmul(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-2);
        // An unwarmed shape compiles lazily on first multiply.
        let c = probe(16, 24, 9);
        let d = probe(24, 16, 10);
        let got = be.matmul(c.as_ref(), d.as_ref());
        assert!(got.rel_frobenius_error(&matmul_naive(c.as_ref(), d.as_ref())) < 1e-2);
        assert_eq!(be.chosen_rules().len(), 3);
        assert!(be.name().contains("planned"));
    }

    #[test]
    fn planned_guarded_backend_guards_apa_plans() {
        let be = planned_guarded(1);
        let a = probe(64, 64, 11);
        let b = probe(64, 64, 12);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let got = be.matmul(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-2);
        for (_, rule) in be.chosen_rules() {
            assert!(
                rule.starts_with("guarded-") || rule == "classical",
                "unguarded APA rule {rule}"
            );
        }
    }

    #[test]
    fn guarded_backend_is_accurate_and_counts_calls() {
        let a = probe(30, 30, 5);
        let b = probe(30, 30, 6);
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        let be = guarded(catalog::bini322(), 1);
        let got = be.matmul(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 5e-3);
        let h = be.health();
        assert_eq!(h.calls, 1);
        assert_eq!(h.degraded_calls(), 0);
    }
}
