//! Fault drills for the serving path (`--features fault-inject` only):
//! a gemm worker lane that panics or stalls mid-batch, and a NaN seeded
//! into a layer product, must all be absorbed by the replica's guarded
//! ladder — the client still gets a healthy `Ok` response and the damage
//! is visible only in the merged [`apa_serve::ServeStats::health`]
//! counters.
//!
//! The fault registry and the gemm lane switches are process-global, so
//! every drill serializes on [`LOCK`]. Faults are installed only *after*
//! a first successful inference: that proves lane warm-up is over, so the
//! scheduled guard-call index can be read straight off the live health
//! counter and the one-shot lane switch cannot fire on a warm-up multiply.

#![cfg(feature = "fault-inject")]

use apa_core::catalog;
use apa_matmul::fault::{self, Fault, FaultKind};
use apa_matmul::{ApaMatmul, GuardedApaMatmul, PeelMode, Strategy};
use apa_nn::{guarded, Backend, GuardedBackend, Mlp};
use apa_serve::{InferenceService, Replica, ServeConfig, ServeError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One lane whose every layer runs through `guard`. Parallel shapes are
/// guaranteed by the padded batch: the target batch equals the input
/// width (48), so even a lone request becomes a 48-row multiply.
fn service_with(guard: Arc<GuardedBackend>) -> InferenceService {
    let backend: Backend = guard.clone();
    let mlp = Mlp::new(&[48, 48, 40], vec![backend.clone(), backend], 21);
    InferenceService::start(
        vec![Replica::with_guards(mlp, vec![guard])],
        ServeConfig {
            max_linger: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
}

fn input() -> Vec<f32> {
    (0..48).map(|i| (i as f32 * 0.17).sin()).collect()
}

/// A lane worker panicking inside a layer multiply is caught by the
/// guard's ladder: the batch is transparently recomputed on a demoted
/// rung and the client never sees the crash.
#[test]
fn gemm_lane_panic_mid_batch_is_absorbed_and_service_stays_up() {
    let _g = lock();
    // Hybrid + 2 threads: layer multiplies actually dispatch pooled gemm
    // tasks, so a lane exists to kill.
    let guard = guarded(catalog::bini322(), 2);
    let service = service_with(guard);
    let handle = service.handle();

    let first = handle.infer(input()).expect("clean call before the drill");
    assert_eq!(first.output.len(), 40);

    // Strike the first layer multiply of the next batch.
    let next_call = service.stats().health.calls;
    fault::install(&[Fault {
        at_call: next_call,
        kind: FaultKind::PanicInLane,
    }]);
    let hit = handle.infer(input());
    fault::clear();

    assert_eq!(fault::injected_count(), 1, "lane switch must have armed");
    let response = hit.expect("panic must be absorbed by the ladder");
    assert_eq!(response.output.len(), 40);
    // The clean first call must match the recovered one closely — the
    // demoted rung is *more* conservative, not less.
    for (a, b) in first.output.iter().zip(&response.output) {
        assert!((a - b).abs() <= 5e-2 * a.abs().max(1.0), "{a} vs {b}");
    }

    let after = handle.infer(input()).expect("service still serving");
    assert_eq!(after.output.len(), 40);

    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert!(stats.health.worker_panics >= 1, "{:?}", stats.health);
    assert!(stats.health.demotions >= 1, "{:?}", stats.health);
}

/// A stalled lane trips the guard's watchdog instead of hanging the
/// service: the rung times out, the ladder demotes, the client gets a
/// healthy response a watchdog-deadline later.
#[test]
fn stalled_gemm_lane_trips_the_watchdog_and_service_stays_up() {
    let _g = lock();
    let guard = Arc::new(GuardedBackend::from_guard(
        GuardedApaMatmul::from_matmul(
            ApaMatmul::new(catalog::bini322())
                .steps(1)
                .strategy(Strategy::Hybrid)
                .threads(2)
                .peel_mode(PeelMode::Dynamic),
        )
        .watchdog(Duration::from_millis(100)),
    ));
    let service = service_with(guard);
    let handle = service.handle();

    handle.infer(input()).expect("clean call before the drill");

    // Hold the next dequeued gemm lane for 800 ms — far past the 100 ms
    // watchdog deadline — during the next batch's first layer multiply.
    let next_call = service.stats().health.calls;
    fault::install(&[Fault {
        at_call: next_call,
        kind: FaultKind::StallLane { millis: 800 },
    }]);
    let hit = handle.infer(input());
    fault::clear();

    assert_eq!(fault::injected_count(), 1, "stall switch must have armed");
    let response = hit.expect("stall must be absorbed by the watchdog");
    assert_eq!(response.output.len(), 40);

    handle.infer(input()).expect("service still serving");

    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert!(stats.health.watchdog_timeouts >= 1, "{:?}", stats.health);
    assert!(stats.health.demotions >= 1, "{:?}", stats.health);
}

/// A NaN seeded into a layer product is caught by the sentinel's fused
/// non-finite scan before the next layer (or the client) ever sees it.
#[test]
fn seeded_nan_in_a_layer_product_never_reaches_the_client() {
    let _g = lock();
    let guard = guarded(catalog::bini322(), 1);
    let service = service_with(guard);
    let handle = service.handle();

    handle.infer(input()).expect("clean call before the drill");

    let next_call = service.stats().health.calls;
    fault::install(&[Fault {
        at_call: next_call,
        kind: FaultKind::SeedNan,
    }]);
    let hit = handle.infer(input());
    fault::clear();

    assert_eq!(fault::injected_count(), 1);
    let response = hit.expect("NaN must be caught and the product recomputed");
    assert!(
        response.output.iter().all(|v| v.is_finite()),
        "non-finite value escaped to the client: {:?}",
        response.output
    );

    let stats = service.shutdown();
    assert_eq!(stats.failed, 0);
    assert!(stats.health.nonfinite_detected >= 1, "{:?}", stats.health);
    assert!(stats.health.demotions >= 1, "{:?}", stats.health);
}

/// The drills above prove faults are absorbed; this one proves the error
/// *type* surface stays intact under load after a drill — a full queue
/// still rejects with `QueueFull`, not something fault-related.
#[test]
fn typed_backpressure_survives_a_fault_drill() {
    let _g = lock();
    let guard = guarded(catalog::bini322(), 1);
    let backend: Backend = guard.clone();
    let mlp = Mlp::new(&[48, 48, 40], vec![backend.clone(), backend], 22);
    let service = InferenceService::start(
        vec![Replica::with_guards(mlp, vec![guard])],
        ServeConfig {
            queue_capacity: 2,
            target_batch: 8,
            max_linger: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let handle = service.handle();

    handle.infer(input()).expect("clean call before the drill");
    let next_call = service.stats().health.calls;
    fault::install(&[Fault {
        at_call: next_call,
        kind: FaultKind::SeedInf,
    }]);
    let hit = handle.infer(input());
    fault::clear();
    hit.expect("Inf must be caught and the product recomputed");

    // Post-drill: fill the tiny queue beyond capacity. The rejection must
    // be the ordinary typed backpressure.
    let _t1 = handle.submit(input()).expect("first queued");
    let _t2 = handle.submit(input()).expect("second queued");
    let mut saw_queue_full = false;
    for _ in 0..50 {
        match handle.submit(input()) {
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                saw_queue_full = true;
                break;
            }
            // A lane may have drained the queue between submits — the
            // accepted ticket resolves and we try again.
            Ok(t) => {
                let _ = t.wait();
            }
            Err(other) => panic!("expected QueueFull, got {other}"),
        }
    }
    assert!(saw_queue_full, "queue never filled");
    let stats = service.shutdown();
    assert!(stats.rejected_queue_full >= 1);
    assert_eq!(stats.failed, 0);
}
