//! Reusable execution workspaces: every buffer a (possibly recursive,
//! possibly peeled) APA multiplication needs, allocated **once** per
//! `(chain shape, operand shape, strategy, threads, peel mode)` and reused
//! across calls.
//!
//! The paper's training workloads call the same multiplication shape
//! thousands of times (three matmuls per layer per step, fixed batch and
//! widths). Allocating the `r` product buffers `M_t`, the `S_t`/`T_t`
//! combination scratch and the padded operands on every call puts the
//! allocator — not the gemm — on the hot path. A [`Workspace`] hoists all
//! of it:
//!
//! * per level: the `r` product matrices (`r·bm·bn` elements) plus one
//!   *lane* per concurrently executing task, each lane holding the
//!   `S_t` (`bm·bk`) and `T_t` (`bk·bn`) combination buffers — lanes are
//!   only allocated when the plan actually materializes combinations;
//! * per lane: a child workspace for the next recursion level (recursive
//!   sub-products always execute sequentially, so children carry one lane);
//! * for [`PeelMode::Pad`]: the three padded operand buffers.
//!
//! Total footprint per level ≈ `r·bm·bn + lanes·(bm·bk + bk·bn)` elements;
//! see [`Workspace::footprint_bytes`]. Combined with the thread-local gemm
//! pack cache in `apa-gemm`, a warm workspace makes repeated
//! multiplications allocation-free (pinned by the `zero_alloc` integration
//! test using `apa_gemm::CountingAlloc`).

use crate::exec::divisible;
use crate::peel::PeelMode;
use crate::plan::{Combo, ExecPlan};
use crate::schedule::{effective_strategy, Strategy};
use apa_gemm::{Mat, Scalar};
use std::borrow::Borrow;

/// One recursion level of preallocated buffers.
pub(crate) struct LevelWs<T> {
    /// The `r` product matrices `M_t`, each `bm×bn`.
    pub(crate) products: Vec<Mat<T>>,
    /// One lane per concurrently executing task at this level.
    pub(crate) lanes: Vec<LaneWs<T>>,
}

/// Scratch owned by one executor lane (a spawned task, or the single
/// sequential executor).
pub(crate) struct LaneWs<T> {
    /// `S_t` combination buffer (`bm×bk`; `0×0` when never materialized).
    pub(crate) s_buf: Mat<T>,
    /// `T_t` combination buffer (`bk×bn`; `0×0` when never materialized).
    pub(crate) t_buf: Mat<T>,
    /// Sub-workspace for the next recursion level (sequential).
    pub(crate) child: Option<Box<LevelWs<T>>>,
}

/// Padded-operand buffers for [`PeelMode::Pad`]. The zero borders are
/// written once at construction and never touched again: calls only
/// overwrite the live top-left regions.
pub(crate) struct PadBufs<T> {
    pub(crate) ap: Mat<T>,
    pub(crate) bp: Mat<T>,
    pub(crate) cp: Mat<T>,
}

/// Shape signature of one chain level, used to validate reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelKey {
    /// The rule's base dims `(m, k, n)`.
    pub base: (usize, usize, usize),
    pub rank: usize,
    /// Whether any A-side / B-side combination materializes at this level.
    pub need_s: bool,
    pub need_t: bool,
}

/// Everything a [`Workspace`] was sized for. Two calls may share a
/// workspace iff their keys are equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsKey {
    pub levels: Vec<LevelKey>,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub strategy: Strategy,
    pub threads: usize,
    pub peel: PeelMode,
}

/// A preallocated arena for one multiplication configuration. Build with
/// [`Workspace::for_chain`] (or [`crate::ApaMatmul::make_workspace`]) and
/// pass to the `*_ws` execution entry points; results are bitwise
/// identical to the allocate-per-call paths.
pub struct Workspace<T: Scalar> {
    pub(crate) key: WsKey,
    pub(crate) root: LevelWs<T>,
    pub(crate) pad: Option<PadBufs<T>>,
    pub(crate) runs: u64,
}

fn combo_needs_buffer(combo: &Combo, recursive: bool) -> bool {
    match combo {
        // Mirrors the executor: a singleton is used in place unless the
        // product recurses and the coefficient cannot fold into gemm's α.
        Combo::Single { coeff, .. } => recursive && *coeff != 1.0,
        Combo::Multi(_) => true,
    }
}

fn level_key(plan: &ExecPlan, recursive: bool) -> LevelKey {
    LevelKey {
        base: (plan.dims.m, plan.dims.k, plan.dims.n),
        rank: plan.rank,
        need_s: plan
            .a_combos
            .iter()
            .any(|c| combo_needs_buffer(c, recursive)),
        need_t: plan
            .b_combos
            .iter()
            .any(|c| combo_needs_buffer(c, recursive)),
    }
}

/// Elementwise product of the chain's base dims — the divisor arbitrary
/// shapes are peeled/padded against.
pub(crate) fn chain_divisor<P: Borrow<ExecPlan>>(chain: &[P]) -> (usize, usize, usize) {
    let (mut dm, mut dk, mut dn) = (1usize, 1usize, 1usize);
    for plan in chain {
        let d = plan.borrow().dims;
        dm *= d.m;
        dk *= d.k;
        dn *= d.n;
    }
    (dm, dk, dn)
}

impl<T: Scalar> LevelWs<T> {
    /// A level that executes as a plain gemm leaf (no buffers).
    pub(crate) fn leaf() -> Self {
        LevelWs {
            products: Vec::new(),
            lanes: Vec::new(),
        }
    }

    pub(crate) fn elems(&self) -> usize {
        let products: usize = self.products.iter().map(|p| p.rows() * p.cols()).sum();
        let lanes: usize = self
            .lanes
            .iter()
            .map(|l| {
                l.s_buf.rows() * l.s_buf.cols()
                    + l.t_buf.rows() * l.t_buf.cols()
                    + l.child.as_ref().map_or(0, |c| c.elems())
            })
            .sum();
        products + lanes
    }
}

/// Build the buffer tree for `chain` on an `m×k·k×n` product. Stops at the
/// first level whose dims don't divide (the executor gemms there).
pub(crate) fn build_level<T: Scalar, P: Borrow<ExecPlan>>(
    chain: &[P],
    m: usize,
    k: usize,
    n: usize,
    strategy: Strategy,
    threads: usize,
) -> LevelWs<T> {
    let Some(plan) = chain.first().map(Borrow::borrow) else {
        return LevelWs::leaf();
    };
    if !divisible(plan, m, k, n) {
        return LevelWs::leaf();
    }
    let d = plan.dims;
    let (bm, bk, bn) = (m / d.m, k / d.k, n / d.n);
    let r = plan.rank;
    let rest = &chain[1..];
    let recursive = !rest.is_empty();
    let key = level_key(plan, recursive);
    let (eff, eff_threads) = effective_strategy(strategy, threads, r);
    let lane_count = match eff {
        Strategy::Seq | Strategy::Dfs => 1,
        Strategy::Bfs | Strategy::Hybrid => eff_threads,
    };
    let lanes = (0..lane_count)
        .map(|_| LaneWs {
            s_buf: if key.need_s {
                Mat::zeros(bm, bk)
            } else {
                Mat::zeros(0, 0)
            },
            t_buf: if key.need_t {
                Mat::zeros(bk, bn)
            } else {
                Mat::zeros(0, 0)
            },
            child: recursive.then(|| Box::new(build_level(rest, bm, bk, bn, Strategy::Seq, 1))),
        })
        .collect();
    LevelWs {
        products: (0..r).map(|_| Mat::zeros(bm, bn)).collect(),
        lanes,
    }
}

impl<T: Scalar> Workspace<T> {
    /// Workspace for a uniform `steps`-deep recursion of a single plan.
    #[allow(clippy::too_many_arguments)]
    pub fn for_plan(
        plan: &ExecPlan,
        m: usize,
        k: usize,
        n: usize,
        steps: u32,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
    ) -> Self {
        crate::exec::with_uniform_chain(plan, steps, |chain| {
            Self::for_chain(chain, m, k, n, strategy, threads, peel)
        })
    }

    /// Workspace for a non-stationary chain (one plan per level).
    pub fn for_chain<P: Borrow<ExecPlan>>(
        chain: &[P],
        m: usize,
        k: usize,
        n: usize,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
    ) -> Self {
        let mut levels = Vec::with_capacity(chain.len());
        for (i, plan) in chain.iter().enumerate() {
            levels.push(level_key(plan.borrow(), i + 1 < chain.len()));
        }
        let key = WsKey {
            levels,
            m,
            k,
            n,
            strategy,
            threads,
            peel,
        };

        let (dm, dk, dn) = chain_divisor(chain);
        let (root, pad) = if m.is_multiple_of(dm) && k.is_multiple_of(dk) && n.is_multiple_of(dn) {
            (build_level(chain, m, k, n, strategy, threads), None)
        } else {
            match peel {
                PeelMode::Dynamic => {
                    let (mc, kc, nc) = (m / dm * dm, k / dk * dk, n / dn * dn);
                    let root = if mc == 0 || kc == 0 || nc == 0 {
                        LevelWs::leaf()
                    } else {
                        build_level(chain, mc, kc, nc, strategy, threads)
                    };
                    (root, None)
                }
                PeelMode::Pad => {
                    let (mp, kp, np) = (
                        m.div_ceil(dm) * dm,
                        k.div_ceil(dk) * dk,
                        n.div_ceil(dn) * dn,
                    );
                    let pad = PadBufs {
                        ap: Mat::zeros(mp, kp),
                        bp: Mat::zeros(kp, np),
                        cp: Mat::zeros(mp, np),
                    };
                    (build_level(chain, mp, kp, np, strategy, threads), Some(pad))
                }
            }
        };

        Workspace {
            key,
            root,
            pad,
            runs: 0,
        }
    }

    /// Whether this workspace was sized for exactly this call. The
    /// comparison is allocation-free (no key is built for the candidate).
    #[allow(clippy::too_many_arguments)]
    pub fn matches<P: Borrow<ExecPlan>>(
        &self,
        chain: &[P],
        m: usize,
        k: usize,
        n: usize,
        strategy: Strategy,
        threads: usize,
        peel: PeelMode,
    ) -> bool {
        self.key.m == m
            && self.key.k == k
            && self.key.n == n
            && self.key.strategy == strategy
            && self.key.threads == threads
            && self.key.peel == peel
            && self.key.levels.len() == chain.len()
            && self
                .key
                .levels
                .iter()
                .zip(chain)
                .enumerate()
                .all(|(i, (lk, plan))| *lk == level_key(plan.borrow(), i + 1 < chain.len()))
    }

    /// The configuration this workspace was built for.
    pub fn key(&self) -> &WsKey {
        &self.key
    }

    /// Completed runs through this workspace.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs beyond the first — i.e. how often the one-time allocation was
    /// amortized.
    pub fn reuses(&self) -> u64 {
        self.runs.saturating_sub(1)
    }

    pub(crate) fn note_run(&mut self) {
        self.runs += 1;
    }

    /// Bytes of matrix storage held (products + lane scratch across all
    /// levels, plus pad buffers). Per level this is
    /// `r·bm·bn + lanes·(bm·bk + bk·bn)` elements.
    pub fn footprint_bytes(&self) -> usize {
        let pad = self.pad.as_ref().map_or(0, |p| {
            p.ap.rows() * p.ap.cols() + p.bp.rows() * p.bp.cols() + p.cp.rows() * p.cp.cols()
        });
        (self.root.elems() + pad) * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_core::catalog;

    #[test]
    fn strassen_workspace_shapes() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws =
            Workspace::<f64>::for_plan(&plan, 64, 64, 64, 1, Strategy::Seq, 1, PeelMode::Dynamic);
        assert_eq!(ws.root.products.len(), 7);
        assert_eq!(
            (ws.root.products[0].rows(), ws.root.products[0].cols()),
            (32, 32)
        );
        assert_eq!(ws.root.lanes.len(), 1);
        // Strassen has multi-term combos on both sides.
        assert_eq!(
            (ws.root.lanes[0].s_buf.rows(), ws.root.lanes[0].s_buf.cols()),
            (32, 32)
        );
        assert!(ws.root.lanes[0].child.is_none());
        // 7 products + 2 combo buffers, all 32×32 f64.
        assert_eq!(ws.footprint_bytes(), 9 * 32 * 32 * 8);
    }

    #[test]
    fn classical_plan_needs_no_combo_buffers() {
        use apa_core::bilinear::Dims;
        let plan = ExecPlan::compile(&catalog::classical(Dims::new(2, 2, 2)), 0.0);
        let ws = Workspace::<f32>::for_plan(&plan, 8, 8, 8, 1, Strategy::Seq, 1, PeelMode::Dynamic);
        assert_eq!(ws.root.lanes[0].s_buf.rows(), 0);
        assert_eq!(ws.root.lanes[0].t_buf.rows(), 0);
        assert_eq!(ws.root.products.len(), 8);
    }

    #[test]
    fn recursive_workspace_carries_children() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws =
            Workspace::<f64>::for_plan(&plan, 32, 32, 32, 2, Strategy::Seq, 1, PeelMode::Dynamic);
        let child = ws.root.lanes[0].child.as_ref().expect("child level");
        assert_eq!(child.products.len(), 7);
        assert_eq!((child.products[0].rows(), child.products[0].cols()), (8, 8));
        assert!(child.lanes[0].child.is_none());
    }

    #[test]
    fn parallel_strategies_get_one_lane_per_task() {
        let plan = ExecPlan::compile(&catalog::bini322(), 1e-4); // r = 10
        let mk = |strategy, threads| {
            Workspace::<f32>::for_plan(&plan, 12, 12, 12, 1, strategy, threads, PeelMode::Dynamic)
        };
        assert_eq!(mk(Strategy::Seq, 4).root.lanes.len(), 1);
        assert_eq!(mk(Strategy::Dfs, 4).root.lanes.len(), 1);
        assert_eq!(mk(Strategy::Hybrid, 4).root.lanes.len(), 4);
        assert_eq!(mk(Strategy::Bfs, 4).root.lanes.len(), 4);
        // More threads than products: BFS caps lanes, Hybrid becomes DFS.
        assert_eq!(mk(Strategy::Bfs, 16).root.lanes.len(), 10);
        assert_eq!(mk(Strategy::Hybrid, 16).root.lanes.len(), 1);
        // One thread is sequential whatever was asked.
        assert_eq!(mk(Strategy::Hybrid, 1).root.lanes.len(), 1);
    }

    #[test]
    fn pad_mode_preallocates_padded_operands() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let ws = Workspace::<f64>::for_plan(&plan, 9, 9, 9, 1, Strategy::Seq, 1, PeelMode::Pad);
        let pad = ws.pad.as_ref().expect("pad buffers");
        assert_eq!((pad.ap.rows(), pad.ap.cols()), (10, 10));
        assert_eq!((pad.cp.rows(), pad.cp.cols()), (10, 10));
        assert_eq!(ws.root.products.len(), 7);
    }

    #[test]
    fn matches_validates_shape_strategy_and_plan_structure() {
        let strassen = ExecPlan::compile(&catalog::strassen(), 0.0);
        let winograd = ExecPlan::compile(&catalog::winograd(), 0.0);
        let ws = Workspace::<f64>::for_chain(
            &[&strassen],
            16,
            16,
            16,
            Strategy::Seq,
            1,
            PeelMode::Dynamic,
        );
        assert!(ws.matches(
            &[&strassen],
            16,
            16,
            16,
            Strategy::Seq,
            1,
            PeelMode::Dynamic
        ));
        assert!(!ws.matches(
            &[&strassen],
            18,
            16,
            16,
            Strategy::Seq,
            1,
            PeelMode::Dynamic
        ));
        assert!(!ws.matches(
            &[&strassen],
            16,
            16,
            16,
            Strategy::Hybrid,
            2,
            PeelMode::Dynamic
        ));
        assert!(!ws.matches(&[&strassen], 16, 16, 16, Strategy::Seq, 1, PeelMode::Pad));
        assert!(!ws.matches::<&ExecPlan>(&[], 16, 16, 16, Strategy::Seq, 1, PeelMode::Dynamic));
        // Same base dims and rank (⟨2,2,2;7⟩) — structure still compatible,
        // so a same-shape rule may share the workspace.
        assert!(ws.matches(
            &[&winograd],
            16,
            16,
            16,
            Strategy::Seq,
            1,
            PeelMode::Dynamic
        ));
    }

    #[test]
    fn run_counters_track_reuse() {
        let plan = ExecPlan::compile(&catalog::strassen(), 0.0);
        let mut ws =
            Workspace::<f64>::for_plan(&plan, 8, 8, 8, 1, Strategy::Seq, 1, PeelMode::Dynamic);
        assert_eq!((ws.runs(), ws.reuses()), (0, 0));
        ws.note_run();
        assert_eq!((ws.runs(), ws.reuses()), (1, 0));
        ws.note_run();
        assert_eq!((ws.runs(), ws.reuses()), (2, 1));
    }
}
