//! Deterministic fault injection for exercising the degradation ladder
//! (compiled only with `--features fault-inject`; the production build
//! carries none of this).
//!
//! A test installs a [`FaultPlan`] — a list of (call index, fault kind)
//! pairs — and the [`crate::fallback::GuardedApaMatmul`] consults it on the
//! *first* execution attempt of each call: corruptions hit the raw product
//! buffer after the multiply but before the sentinel sees it, and λ
//! perturbations replace the rung-0 multiplier for that one call. Retries
//! on demoted rungs within the same call are never re-faulted, so every
//! rung of the ladder can be driven deterministically.
//!
//! The registry is process-global (the guard has no test-only plumbing);
//! tests that install plans must serialize on their own lock.

use apa_gemm::abft::sdc;
use apa_gemm::{MatMut, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

pub use apa_gemm::abft::sdc::{FlipSpec, FlipTarget};

/// What to do to the victim call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Scale a small block of the product buffer by `scale` (finite but
    /// wildly wrong — only the residual probe can catch it).
    CorruptOutput { scale: f64 },
    /// Overwrite one product entry with NaN.
    SeedNan,
    /// Overwrite one product entry with +Inf.
    SeedInf,
    /// Execute the call with λ multiplied by `factor` (e.g. 2⁸ off the
    /// tuned optimum), modelling a mis-tuned or bit-flipped plan.
    PerturbLambda { factor: f64 },
    /// Panic the next gemm worker lane dequeued during the call (arms
    /// [`apa_gemm::pool::lane_fault::arm_panic`]) — models a crashed
    /// worker thread. The call must execute with a parallel strategy and
    /// ≥ 2 threads for a lane to exist.
    PanicInLane,
    /// Stall the next gemm worker lane for `millis` before it runs (arms
    /// [`apa_gemm::pool::lane_fault::arm_stall`]) — models a hung lane
    /// for watchdog drills. Same parallel-execution requirement as
    /// [`FaultKind::PanicInLane`].
    StallLane { millis: u64 },
    /// Flip one bit of one element inside the call's gemm leaves: `index`
    /// maps onto a valid (non-pad) element of the first targeted packed
    /// A/B panel or finished C tile after arming (arms the one-shot
    /// switch of [`apa_gemm::abft::sdc`]). The corrupted value flows
    /// through the kernel on the real read path, exactly like a hardware
    /// single-event upset — the ABFT checksum tier's prey.
    BitFlip {
        target: FlipTarget,
        index: usize,
        bit: u32,
    },
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// Guard call index (0-based, as counted by the guard's own counter)
    /// at which to strike.
    pub at_call: u64,
    pub kind: FaultKind,
}

static PLAN: Mutex<Vec<Fault>> = Mutex::new(Vec::new());
static INJECTED: AtomicU64 = AtomicU64::new(0);

fn plan() -> std::sync::MutexGuard<'static, Vec<Fault>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install a fault plan (replacing any previous one) and reset the
/// injected-fault counter.
pub fn install(faults: &[Fault]) {
    *plan() = faults.to_vec();
    INJECTED.store(0, Ordering::Relaxed);
}

/// Remove all scheduled faults, disarm the gemm lane switches and cancel
/// pending torn-checkpoint writes.
pub fn clear() {
    plan().clear();
    apa_gemm::pool::lane_fault::disarm();
    sdc::disarm();
    TORN_WRITES.store(0, Ordering::SeqCst);
}

/// How many faults have actually been applied since the last `install`.
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Arm any crash-style faults (lane panic / lane stall) scheduled for
/// `call` on the gemm pool's one-shot switches. Counted as injected when
/// armed; the guard disarms leftovers after the attempt so a fault that
/// found no lane (sequential execution) cannot leak into a later call.
pub(crate) fn arm_crash_faults(call: u64) {
    for f in plan().iter() {
        if f.at_call != call {
            continue;
        }
        match f.kind {
            FaultKind::PanicInLane => {
                apa_gemm::pool::lane_fault::arm_panic();
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            FaultKind::StallLane { millis } => {
                apa_gemm::pool::lane_fault::arm_stall(millis);
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            FaultKind::BitFlip { target, index, bit } => {
                sdc::arm(FlipSpec { target, index, bit });
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Disarm leftover crash-fault switches (see [`arm_crash_faults`]).
pub(crate) fn disarm_crash_faults() {
    apa_gemm::pool::lane_fault::disarm();
    sdc::disarm();
}

static TORN_WRITES: AtomicU64 = AtomicU64::new(0);

/// Schedule the next `n` checkpoint writes to be torn: the writer skips
/// the atomic temp+rename protocol and leaves a renamed-but-truncated
/// file, modelling a power cut that reordered the data flush past the
/// rename. Consumed by [`take_torn_write`].
pub fn arm_torn_checkpoint_writes(n: u64) {
    TORN_WRITES.store(n, Ordering::SeqCst);
}

/// Checkpoint writers call this before committing a file: `true` means
/// "tear this write" (one armed tear is consumed and counted).
pub fn take_torn_write() -> bool {
    let mut cur = TORN_WRITES.load(Ordering::SeqCst);
    while cur > 0 {
        match TORN_WRITES.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                INJECTED.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(now) => cur = now,
        }
    }
    false
}

/// λ multiplier scheduled for `call`, if any.
pub(crate) fn lambda_factor(call: u64) -> Option<f64> {
    plan().iter().find_map(|f| match f.kind {
        FaultKind::PerturbLambda { factor } if f.at_call == call => {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            Some(factor)
        }
        _ => None,
    })
}

/// Apply any buffer faults scheduled for `call` to the freshly computed
/// product `c`.
pub(crate) fn corrupt_output<T: Scalar>(call: u64, mut c: MatMut<'_, T>) {
    let (m, n) = (c.rows(), c.cols());
    if m == 0 || n == 0 {
        return;
    }
    for f in plan().iter() {
        if f.at_call != call {
            continue;
        }
        match f.kind {
            FaultKind::CorruptOutput { scale } => {
                for i in 0..m.min(4) {
                    for j in 0..n.min(4) {
                        let v = c.at(i, j).to_f64() * scale;
                        c.set(i, j, T::from_f64(v));
                    }
                }
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            FaultKind::SeedNan => {
                c.set(m / 2, n / 2, T::from_f64(f64::NAN));
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            FaultKind::SeedInf => {
                c.set(0, n - 1, T::from_f64(f64::INFINITY));
                INJECTED.fetch_add(1, Ordering::Relaxed);
            }
            // Handled pre-execution.
            FaultKind::PerturbLambda { .. }
            | FaultKind::PanicInLane
            | FaultKind::StallLane { .. }
            | FaultKind::BitFlip { .. } => {}
        }
    }
}
