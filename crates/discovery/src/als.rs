//! CP-ALS over the matrix-multiplication tensor.
//!
//! A rank-r bilinear algorithm for ⟨m,k,n⟩ is exactly a rank-r CP
//! decomposition of the (mk) × (kn) × (mn) matmul tensor
//! `T[(i,a),(a',j),(i',j')] = δ_{a,a'} δ_{i,i'} δ_{j,j'}`. Smirnov's APA
//! tensors — the ones the paper's Table 1 cites — were found with exactly
//! this style of regularized numerical optimization [25–30]. This module
//! reproduces the method: alternating least squares with Tikhonov
//! regularization annealed toward zero, random restarts and a residual
//! monitor; `rounding` snaps converged factors to exact rational
//! coefficients and re-verifies them with `apa-core`'s Brent validator.

use crate::linalg::{solve_rows, DMat};
use apa_core::Dims;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// ALS hyperparameters.
#[derive(Clone, Debug)]
pub struct AlsConfig {
    pub max_iters: usize,
    /// Stop when the relative residual falls below this.
    pub tol: f64,
    /// Initial Tikhonov regularization (annealed ×`reg_decay` per sweep).
    pub reg: f64,
    pub reg_decay: f64,
    /// Uniform init range.
    pub init_scale: f64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            max_iters: 500,
            tol: 1e-8,
            reg: 1e-2,
            reg_decay: 0.97,
            init_scale: 0.7,
        }
    }
}

/// Outcome of one ALS run.
#[derive(Clone, Debug)]
pub struct AlsResult {
    pub dims: Dims,
    pub rank: usize,
    /// Factors: U (mk × r), V (kn × r), W (mn × r).
    pub u: DMat,
    pub v: DMat,
    pub w: DMat,
    /// Final relative residual ‖T − ⟦U,V,W⟧‖ / ‖T‖.
    pub residual: f64,
    pub iters: usize,
    pub converged: bool,
}

/// Entries of the matmul tensor that equal one, as (α, β, γ) index triples.
pub fn target_ones(dims: Dims) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(dims.m * dims.k * dims.n);
    for i in 0..dims.m {
        for a in 0..dims.k {
            for j in 0..dims.n {
                out.push((dims.a_index(i, a), dims.b_index(a, j), dims.c_index(i, j)));
            }
        }
    }
    out
}

/// Relative residual of a candidate decomposition against the matmul
/// tensor: √(Σ_{αβγ} (Σ_t U V W − T)²) / √(m·k·n).
pub fn relative_residual(dims: Dims, u: &DMat, v: &DMat, w: &DMat) -> f64 {
    let (na, nb, nc) = (dims.m * dims.k, dims.k * dims.n, dims.m * dims.n);
    let r = u.cols;
    let ones = target_ones(dims);
    let mut is_one = vec![false; na * nb * nc];
    for &(a, b, c) in &ones {
        is_one[(a * nb + b) * nc + c] = true;
    }
    let mut sq = 0.0f64;
    // Dense sweep — base tensors are tiny (≤ 9×9×9 in practice).
    for a in 0..na {
        for b in 0..nb {
            for c in 0..nc {
                let mut s = 0.0;
                for t in 0..r {
                    s += u.at(a, t) * v.at(b, t) * w.at(c, t);
                }
                let target = if is_one[(a * nb + b) * nc + c] {
                    1.0
                } else {
                    0.0
                };
                sq += (s - target) * (s - target);
            }
        }
    }
    (sq / ones.len() as f64).sqrt()
}

/// MTTKRP for the matmul tensor: `out[α, t] = Σ_{(α,β,γ) ∈ ones} V[β,t]·W[γ,t]`.
/// The tensor has exactly m·k·n nonzeros, so this is O(mkn·r).
fn mttkrp(
    ones: &[(usize, usize, usize)],
    select: impl Fn(&(usize, usize, usize)) -> (usize, usize, usize),
    f1: &DMat,
    f2: &DMat,
    rows: usize,
) -> DMat {
    let r = f1.cols;
    let mut out = DMat::zeros(rows, r);
    for triple in ones {
        let (row, b, c) = select(triple);
        let (r1, r2) = (f1.row(b), f2.row(c));
        let orow = out.row_mut(row);
        for t in 0..r {
            orow[t] += r1[t] * r2[t];
        }
    }
    out
}

fn update_factor(
    ones: &[(usize, usize, usize)],
    select: impl Fn(&(usize, usize, usize)) -> (usize, usize, usize),
    f1: &DMat,
    f2: &DMat,
    rows: usize,
    reg: f64,
) -> Option<DMat> {
    let rhs = mttkrp(ones, select, f1, f2, rows);
    let mut gram = f1.gram().hadamard(&f2.gram());
    gram.add_diag(reg.max(1e-12));
    solve_rows(gram, &rhs)
}

/// Run ALS from a random start.
pub fn als_search(dims: Dims, rank: usize, config: &AlsConfig, seed: u64) -> AlsResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let s = config.init_scale;
    let init =
        |rows: usize, rng: &mut ChaCha8Rng| DMat::from_fn(rows, rank, |_, _| rng.gen_range(-s..s));
    let (na, nb, nc) = (dims.m * dims.k, dims.k * dims.n, dims.m * dims.n);
    let u = init(na, &mut rng);
    let v = init(nb, &mut rng);
    let w = init(nc, &mut rng);
    als_from(dims, u, v, w, config)
}

/// Run ALS from explicit starting factors (e.g. a perturbed known solution
/// or a rounded candidate to re-polish).
pub fn als_from(
    dims: Dims,
    mut u: DMat,
    mut v: DMat,
    mut w: DMat,
    config: &AlsConfig,
) -> AlsResult {
    let rank = u.cols;
    let (na, nb, nc) = (dims.m * dims.k, dims.k * dims.n, dims.m * dims.n);
    assert_eq!(u.rows, na);
    assert_eq!(v.rows, nb);
    assert_eq!(w.rows, nc);
    let ones = target_ones(dims);
    let mut reg = config.reg;
    let mut residual = relative_residual(dims, &u, &v, &w);
    let mut iters = 0;

    for it in 0..config.max_iters {
        iters = it + 1;
        // U update: rows indexed by α, contracting V (β) and W (γ).
        if let Some(nu) = update_factor(&ones, |&(a, b, c)| (a, b, c), &v, &w, na, reg) {
            u = nu;
        } else {
            break;
        }
        // V update: rows indexed by β.
        if let Some(nv) = update_factor(&ones, |&(a, b, c)| (b, a, c), &u, &w, nb, reg) {
            v = nv;
        } else {
            break;
        }
        // W update: rows indexed by γ.
        if let Some(nw) = update_factor(&ones, |&(a, b, c)| (c, a, b), &u, &v, nc, reg) {
            w = nw;
        } else {
            break;
        }
        reg *= config.reg_decay;
        residual = relative_residual(dims, &u, &v, &w);
        if residual < config.tol {
            break;
        }
    }

    AlsResult {
        dims,
        rank,
        converged: residual < config.tol,
        u,
        v,
        w,
        residual,
        iters,
    }
}

/// Pattern-constrained update: like `update_factor`, but each row is
/// solved only over its currently-nonzero columns — structural zeros stay
/// zero. This is the polish step of sparsification: ALS restricted to the
/// sparsity pattern cannot drift along the dense gauge orbit.
fn update_factor_pattern(
    ones: &[(usize, usize, usize)],
    select: impl Fn(&(usize, usize, usize)) -> (usize, usize, usize),
    f1: &DMat,
    f2: &DMat,
    current: &DMat,
    reg: f64,
) -> Option<DMat> {
    let rows = current.rows;
    let r = f1.cols;
    let rhs = mttkrp(ones, select, f1, f2, rows);
    let gram = f1.gram().hadamard(&f2.gram());
    let mut out = DMat::zeros(rows, r);
    for row in 0..rows {
        let active: Vec<usize> = (0..r).filter(|&t| current.at(row, t) != 0.0).collect();
        if active.is_empty() {
            continue;
        }
        let na = active.len();
        let mut sub = DMat::zeros(na, na);
        for (i, &ti) in active.iter().enumerate() {
            for (j, &tj) in active.iter().enumerate() {
                sub.set(i, j, gram.at(ti, tj));
            }
        }
        sub.add_diag(reg.max(1e-12));
        let mut sub_rhs = DMat::zeros(1, na);
        for (i, &ti) in active.iter().enumerate() {
            sub_rhs.set(0, i, rhs.at(row, ti));
        }
        let solved = solve_rows(sub, &sub_rhs)?;
        for (i, &ti) in active.iter().enumerate() {
            out.set(row, ti, solved.at(0, i));
        }
    }
    Some(out)
}

/// ALS polish restricted to the current sparsity pattern of the factors:
/// entries that are zero stay structurally zero. Used by
/// [`crate::sparsify`] so thresholded decompositions can be re-converged
/// without the least-squares fill-in of unconstrained ALS.
pub fn als_polish_pattern(
    dims: Dims,
    mut u: DMat,
    mut v: DMat,
    mut w: DMat,
    config: &AlsConfig,
) -> AlsResult {
    let rank = u.cols;
    let ones = target_ones(dims);
    let mut reg = config.reg;
    let mut residual = relative_residual(dims, &u, &v, &w);
    let mut iters = 0;
    for it in 0..config.max_iters {
        iters = it + 1;
        match update_factor_pattern(&ones, |&(a, b, c)| (a, b, c), &v, &w, &u, reg) {
            Some(nu) => u = nu,
            None => break,
        }
        match update_factor_pattern(&ones, |&(a, b, c)| (b, a, c), &u, &w, &v, reg) {
            Some(nv) => v = nv,
            None => break,
        }
        match update_factor_pattern(&ones, |&(a, b, c)| (c, a, b), &u, &v, &w, reg) {
            Some(nw) => w = nw,
            None => break,
        }
        reg *= config.reg_decay;
        residual = relative_residual(dims, &u, &v, &w);
        if residual < config.tol {
            break;
        }
    }
    AlsResult {
        dims,
        rank,
        converged: residual < config.tol,
        u,
        v,
        w,
        residual,
        iters,
    }
}

/// Multi-restart driver: run [`als_search`] from `restarts` seeds, keep the
/// best result.
pub fn als_multi_restart(
    dims: Dims,
    rank: usize,
    config: &AlsConfig,
    restarts: usize,
    base_seed: u64,
) -> AlsResult {
    let mut best: Option<AlsResult> = None;
    for i in 0..restarts {
        let result = als_search(
            dims,
            rank,
            config,
            base_seed.wrapping_add(i as u64 * 0x9E37),
        );
        let better = best
            .as_ref()
            .map(|b| result.residual < b.residual)
            .unwrap_or(true);
        if better {
            let done = result.converged;
            best = Some(result);
            if done {
                break;
            }
        }
    }
    best.expect("restarts >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_ones_count_is_mkn() {
        let d = Dims::new(2, 3, 4);
        let ones = target_ones(d);
        assert_eq!(ones.len(), 24);
        // All triples distinct.
        let mut sorted = ones.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn residual_zero_for_classical_factors() {
        // The classical algorithm as dense factors has residual 0.
        let d = Dims::new(2, 2, 2);
        let r = 8;
        let ones = target_ones(d);
        let mut u = DMat::zeros(4, r);
        let mut v = DMat::zeros(4, r);
        let mut w = DMat::zeros(4, r);
        for (t, &(a, b, c)) in ones.iter().enumerate() {
            u.set(a, t, 1.0);
            v.set(b, t, 1.0);
            w.set(c, t, 1.0);
        }
        assert!(relative_residual(d, &u, &v, &w) < 1e-15);
    }

    #[test]
    fn als_converges_for_overparametrized_rank() {
        // rank = mkn: trivially reachable; ALS must find it quickly.
        let d = Dims::new(2, 2, 2);
        let result = als_multi_restart(d, 8, &AlsConfig::default(), 3, 42);
        assert!(
            result.residual < 1e-6,
            "residual {} after {} iters",
            result.residual,
            result.iters
        );
    }

    #[test]
    fn als_converges_rank2_for_121() {
        // ⟨1,2,1⟩ has rank 2 exactly.
        let d = Dims::new(1, 2, 1);
        let result = als_multi_restart(d, 2, &AlsConfig::default(), 3, 7);
        assert!(result.converged, "residual {}", result.residual);
    }

    #[test]
    fn als_repolishes_perturbed_strassen() {
        // Start from Strassen + noise: ALS must fall back into the exact
        // solution — this validates the update equations at rank 7, below
        // the classical rank.
        let d = Dims::new(2, 2, 2);
        let alg = apa_core::catalog::strassen();
        let rng = ChaCha8Rng::seed_from_u64(5);
        let to_dense = |m: &apa_core::CoeffMatrix, rows: usize| {
            DMat::from_fn(rows, 7, |i, t| {
                m.get(i, t).eval(0.0) + rng_noise(&mut rng.clone(), i, t)
            })
        };
        // deterministic small noise
        fn rng_noise(_rng: &mut ChaCha8Rng, i: usize, t: usize) -> f64 {
            (((i * 31 + t * 17) % 13) as f64 - 6.0) * 0.004
        }
        let u = to_dense(&alg.u, 4);
        let v = to_dense(&alg.v, 4);
        let w = to_dense(&alg.w, 4);
        let start_res = relative_residual(d, &u, &v, &w);
        assert!(
            start_res > 1e-3,
            "perturbation should be visible: {start_res}"
        );
        let config = AlsConfig {
            reg: 1e-6,
            max_iters: 200,
            ..AlsConfig::default()
        };
        let result = als_from(d, u, v, w, &config);
        assert!(
            result.residual < 1e-7,
            "failed to re-polish Strassen: {} (iters {})",
            result.residual,
            result.iters
        );
    }

    #[test]
    fn als_rank7_search_makes_progress() {
        // Cold-start rank-7 ⟨2,2,2⟩ search: full convergence is luck-of-
        // the-seed (as in the literature), but the residual must drop well
        // below the random-init level within a few hundred sweeps.
        let d = Dims::new(2, 2, 2);
        let result = als_multi_restart(d, 7, &AlsConfig::default(), 2, 1234);
        assert!(
            result.residual < 0.2,
            "ALS made no progress: residual {}",
            result.residual
        );
    }
}
