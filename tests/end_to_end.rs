//! Cross-crate integration tests: catalog → plan → execution → error
//! model, file I/O through the executor, and discovery → validation.

use apa_repro::core::{brent, catalog, error_model, io, transform, Dims};
use apa_repro::gemm::{matmul_naive, Mat};
use apa_repro::matmul::{measure_error, tune_lambda, ApaMatmul, PeelMode, Strategy};

fn random(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

#[test]
fn every_catalog_algorithm_multiplies_odd_shapes_with_every_strategy() {
    let a = random(53, 38, 1);
    let b = random(38, 45, 2);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    for alg in catalog::all() {
        // Tolerance scales with the rule's predicted error (φ = 3 entries
        // like the Bini cube legitimately sit near 2e-2).
        let tol = (error_model::table1_row(&alg).error * 5.0).max(1e-2);
        for strategy in [
            Strategy::Seq,
            Strategy::Dfs,
            Strategy::Bfs,
            Strategy::Hybrid,
        ] {
            let mm = ApaMatmul::new(alg.clone()).strategy(strategy).threads(2);
            let got = mm.multiply(a.as_ref(), b.as_ref());
            let err = got.rel_frobenius_error(&expect);
            assert!(err < tol, "{} {strategy:?}: err {err} > {tol}", alg.name);
        }
    }
}

#[test]
fn measured_errors_respect_table1_bounds() {
    // The paper's Table-1 error column upper-bounds the tuned empirical
    // error (Fig. 1). Verify for every APA entry at a modest dimension.
    for alg in catalog::paper_lineup() {
        if alg.is_exact_rule() {
            continue;
        }
        let row = error_model::table1_row(&alg);
        let tuned = tune_lambda(&alg, 120, 1, 9);
        assert!(
            tuned.error < row.error * 10.0,
            "{}: tuned error {} far above bound {}",
            alg.name,
            tuned.error,
            row.error
        );
    }
}

#[test]
fn algorithm_survives_file_roundtrip_and_still_executes() {
    let alg = catalog::apa332();
    let text = io::to_text(&alg);
    let parsed = io::from_text(&text).expect("parse back");
    let a = random(27, 27, 3);
    let b = random(27, 18, 4);
    let direct = ApaMatmul::new(alg).multiply(a.as_ref(), b.as_ref());
    let roundtrip = ApaMatmul::new(parsed).multiply(a.as_ref(), b.as_ref());
    assert!(direct.rel_frobenius_error(&roundtrip) < 1e-6);

    let json = io::to_json(&catalog::bini322());
    let back = io::from_json(&json).expect("json parse");
    assert_eq!(brent::validate(&back).unwrap().sigma, Some(1));
}

#[test]
fn transformed_algorithms_execute_correctly() {
    // rotate and tensor outputs are not just symbolically valid — the
    // engine must run them on real matrices.
    let rot = transform::rotate(&catalog::bini322()); // <2,2,3>
    let a = random(26, 30, 5);
    let b = random(30, 33, 6);
    let got = ApaMatmul::new(rot).multiply(a.as_ref(), b.as_ref());
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    assert!(got.rel_frobenius_error(&expect) < 1e-3);
}

#[test]
fn bini_cube_runs_one_step() {
    // The ⟨12,12,12;1000⟩ historic APA rule end to end on 48×48.
    let cube = catalog::bini_cube();
    let a = random(48, 48, 7);
    let b = random(48, 48, 8);
    let got = ApaMatmul::new(cube).multiply(a.as_ref(), b.as_ref());
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let err = got.rel_frobenius_error(&expect);
    // φ = 3 → error bound 2^(-23/4) ≈ 1.9e-2.
    assert!(err < 5e-2, "cube err {err}");
}

#[test]
fn peel_modes_agree_with_each_other() {
    let alg = catalog::fast444();
    let a = random(101, 67, 9);
    let b = random(67, 59, 10);
    let peel = ApaMatmul::new(alg.clone())
        .peel_mode(PeelMode::Dynamic)
        .multiply(a.as_ref(), b.as_ref());
    let pad = ApaMatmul::new(alg)
        .peel_mode(PeelMode::Pad)
        .multiply(a.as_ref(), b.as_ref());
    assert!(peel.rel_frobenius_error(&pad) < 1e-5);
}

#[test]
fn two_step_execution_of_every_small_base_rule() {
    // Recursion needs dims divisible by base²; 144 covers 2², 3², 4² bases
    // (and 36 for <3,2,2>-style rectangles via lcm choices below).
    let a = random(144, 144, 11);
    let b = random(144, 144, 12);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    for name in ["strassen", "bini322", "fast444", "apa333"] {
        let alg = catalog::by_name(name).unwrap();
        // steps(2) re-derives λ for s = 2 (error bound 2^(−23/3) ≈ 5e-3
        // for the φ = 1 APA rules here).
        let mm = ApaMatmul::new(alg).steps(2);
        let got = mm.multiply(a.as_ref(), b.as_ref());
        let err = got.rel_frobenius_error(&expect);
        assert!(err < 0.1, "{name} 2-step err {err}");
    }
}

#[test]
fn error_scales_with_lambda_regimes_across_catalog() {
    // Approximation regime: large λ inflates error for every APA rule.
    for alg in [catalog::bini322(), catalog::apa422(), catalog::apa552()] {
        let tuned = measure_error(&alg, 2.0_f64.powf(-11.5), 80, 1, 21);
        let coarse = measure_error(&alg, 2.0_f64.powi(-2), 80, 1, 21);
        assert!(
            coarse > tuned,
            "{}: coarse {coarse} should exceed tuned {tuned}",
            alg.name
        );
    }
}

#[test]
fn discovery_pipeline_feeds_the_executor() {
    // ALS-polish Strassen, round, then *execute* the rediscovered rule.
    use apa_repro::discovery::{als_from, round_and_verify, AlsConfig, DMat, RoundOutcome};
    let d = Dims::new(2, 2, 2);
    let alg = catalog::strassen();
    let dense = |m: &apa_repro::core::CoeffMatrix, rows: usize| {
        DMat::from_fn(rows, 7, |i, t| {
            m.get(i, t).eval(0.0) + (((i * 19 + t * 5) % 9) as f64 - 4.0) * 0.006
        })
    };
    let result = als_from(
        d,
        dense(&alg.u, 4),
        dense(&alg.v, 4),
        dense(&alg.w, 4),
        &AlsConfig {
            reg: 1e-6,
            max_iters: 300,
            ..AlsConfig::default()
        },
    );
    let found = match round_and_verify(&result, "rediscovered") {
        RoundOutcome::Exact(alg) => alg,
        RoundOutcome::NotExact { brent_error } => panic!("{brent_error}"),
    };
    let a = random(32, 32, 13);
    let b = random(32, 32, 14);
    let got = ApaMatmul::new(found).multiply(a.as_ref(), b.as_ref());
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    assert!(got.rel_frobenius_error(&expect) < 1e-5);
}
