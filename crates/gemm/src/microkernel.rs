//! The portable register-blocked microkernel — the always-correct
//! **scalar tier** of the runtime dispatch in [`crate::kernel`].
//!
//! Computes an `MR × NR` tile of `C ← α·(Â·B̂) + β·C` from packed slivers.
//! The body is plain indexed arithmetic over fixed-size accumulator
//! arrays; it compiles on every target and needs no `target-cpu` flags.
//! The explicit AVX2/AVX-512 kernels in [`crate::kernel`] compute each
//! C element with the identical FMA chain (same k order, same epilogue
//! ops), so all tiers agree bitwise — dispatch is a pure speed choice.

use crate::scalar::Scalar;

/// Generic kernel body, monomorphized per `(T, MR, NR)`.
///
/// * `ap`: `kc·MR` packed A sliver (`ap[p·MR + i]`),
/// * `bp`: `kc·NR` packed B sliver (`bp[p·NR + j]`),
/// * `c`: pointer to the `(0,0)` element of the destination tile,
/// * `rs`: destination row stride,
/// * `beta_zero`: when true the tile is overwritten (β = 0 fast path).
///
/// # Safety
/// `c` must point to a writable `MR × NR` tile with row stride `rs`, and
/// `ap`/`bp` must hold at least `kc·MR` / `kc·NR` elements.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn kernel_impl<T: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: T,
    ap: *const T,
    bp: *const T,
    beta: T,
    beta_zero: bool,
    c: *mut T,
    rs: usize,
) {
    let mut acc = [[T::ZERO; NR]; MR];
    let mut a = ap;
    let mut b = bp;
    for _ in 0..kc {
        // One rank-1 update of the register tile per packed k-step.
        let mut bv = [T::ZERO; NR];
        for (j, bvj) in bv.iter_mut().enumerate() {
            *bvj = *b.add(j);
        }
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = *a.add(i);
            for (j, accij) in row.iter_mut().enumerate() {
                *accij = ai.mul_add(bv[j], *accij);
            }
        }
        a = a.add(MR);
        b = b.add(NR);
    }
    for (i, row) in acc.iter().enumerate() {
        let crow = c.add(i * rs);
        if beta_zero {
            for (j, &v) in row.iter().enumerate() {
                *crow.add(j) = alpha * v;
            }
        } else {
            for (j, &v) in row.iter().enumerate() {
                *crow.add(j) = alpha.mul_add(v, beta * *crow.add(j));
            }
        }
    }
}

/// Type-dispatched microkernel: calls the monomorphized body with the
/// tile shape declared by [`Scalar::MR`]/[`Scalar::NR`].
///
/// # Safety
/// Same contract as `kernel_impl` with `MR = T::MR`, `NR = T::NR`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn microkernel<T: Scalar>(
    kc: usize,
    alpha: T,
    ap: *const T,
    bp: *const T,
    beta: T,
    beta_zero: bool,
    c: *mut T,
    rs: usize,
) {
    // The two instantiations the crate supports; the match is resolved at
    // monomorphization time (T is 'static, the id comparison folds away).
    use std::any::TypeId;
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        kernel_impl::<T, 8, 8>(kc, alpha, ap, bp, beta, beta_zero, c, rs);
    } else {
        kernel_impl::<T, 4, 8>(kc, alpha, ap, bp, beta, beta_zero, c, rs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::pack::{pack_a, pack_b};

    fn run_tile<T: Scalar>(kc: usize, alpha: T, beta: T, beta_zero: bool) -> (Mat<T>, Mat<T>) {
        let (mr, nr) = (T::MR, T::NR);
        let a = Mat::<T>::from_fn(mr, kc, |i, j| T::from_f64(((i * kc + j) % 7) as f64 - 3.0));
        let b = Mat::<T>::from_fn(kc, nr, |i, j| T::from_f64(((i + 2 * j) % 5) as f64 * 0.5));
        let mut c = Mat::<T>::from_fn(mr, nr, |i, j| T::from_f64((i + j) as f64));
        let mut expect = c.clone();
        // reference
        for i in 0..mr {
            for j in 0..nr {
                let mut s = 0.0;
                for p in 0..kc {
                    s += a.at(i, p).to_f64() * b.at(p, j).to_f64();
                }
                let base = if beta_zero {
                    0.0
                } else {
                    beta.to_f64() * expect.at(i, j).to_f64()
                };
                expect.set(i, j, T::from_f64(alpha.to_f64() * s + base));
            }
        }
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        pack_a(a.as_ref(), &mut ap, mr);
        pack_b(b.as_ref(), &mut bp, nr);
        let rs = c.cols();
        unsafe {
            microkernel(
                kc,
                alpha,
                ap.as_ptr(),
                bp.as_ptr(),
                beta,
                beta_zero,
                c.as_mut_slice().as_mut_ptr(),
                rs,
            );
        }
        (c, expect)
    }

    fn assert_close<T: Scalar>(got: &Mat<T>, expect: &Mat<T>, tol: f64) {
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                let (g, e) = (got.at(i, j).to_f64(), expect.at(i, j).to_f64());
                assert!(
                    (g - e).abs() <= tol * (1.0 + e.abs()),
                    "({i},{j}): {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn f32_tile_beta_zero() {
        let (c, e) = run_tile::<f32>(17, 1.0, 0.0, true);
        assert_close(&c, &e, 1e-5);
    }

    #[test]
    fn f32_tile_accumulate() {
        let (c, e) = run_tile::<f32>(9, 2.0, 1.0, false);
        assert_close(&c, &e, 1e-5);
    }

    #[test]
    fn f64_tile_beta_zero() {
        let (c, e) = run_tile::<f64>(33, 1.0, 0.0, true);
        assert_close(&c, &e, 1e-12);
    }

    #[test]
    fn f64_tile_alpha_beta() {
        let (c, e) = run_tile::<f64>(5, -0.5, 2.0, false);
        assert_close(&c, &e, 1e-12);
    }

    #[test]
    fn kc_zero_scales_existing_tile() {
        let (c, e) = run_tile::<f64>(0, 1.0, 2.0, false);
        assert_close(&c, &e, 1e-12);
    }
}
