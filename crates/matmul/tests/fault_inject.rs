//! End-to-end fault-injection drills for the sentinel + degradation
//! ladder (`--features fault-inject` only).
//!
//! Each test installs a deterministic [`apa_matmul::fault`] plan, drives a
//! [`GuardedApaMatmul`] through it and asserts that (1) the fault was
//! actually applied, (2) the sentinel caught it, and (3) the product the
//! caller receives is healthy — the whole point of the ladder is that a
//! fault costs a retry, never a corrupted result.
//!
//! The fault registry is process-global, so every test serializes on
//! [`LOCK`].

#![cfg(feature = "fault-inject")]

use apa_core::catalog;
use apa_gemm::{matmul_naive, Mat};
use apa_matmul::fault::{self, Fault, FaultKind};
use apa_matmul::{ClassicalMatmul, GuardedApaMatmul, MatmulError, SentinelConfig, Strategy};
use std::sync::Mutex;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn probe(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

fn guard() -> GuardedApaMatmul {
    GuardedApaMatmul::new(catalog::bini322())
        .strategy(Strategy::Seq)
        .threads(1)
}

/// Healthy-call APA error level for bini322 at the default λ — the bar a
/// recovered product has to clear.
const HEALTHY_ERR: f64 = 5e-3;

#[test]
fn corrupted_product_is_caught_and_recomputed() {
    let _g = LOCK.lock().unwrap();
    let a = probe(30, 20, 1);
    let b = probe(20, 22, 2);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let mm = guard();
    fault::install(&[Fault {
        at_call: 1,
        kind: FaultKind::CorruptOutput { scale: 1e4 },
    }]);
    for _ in 0..4 {
        let c = mm.multiply(a.as_ref(), b.as_ref());
        // Every returned product — including the faulted call — must be
        // at the healthy APA error level.
        let err = c.rel_frobenius_error(&expect);
        assert!(err < HEALTHY_ERR, "returned product err {err}");
    }
    fault::clear();
    assert_eq!(fault::injected_count(), 1, "fault must fire exactly once");
    let h = mm.health();
    assert_eq!(h.calls, 4);
    assert_eq!(h.probe_failures, 1, "{h:?}");
    assert_eq!(h.demotions, 1, "{h:?}");
    assert_eq!(
        h.degraded_calls(),
        3,
        "faulted call + sticky demotion: {h:?}"
    );
}

#[test]
fn seeded_nan_and_inf_are_caught_even_without_the_probe() {
    let _g = LOCK.lock().unwrap();
    let a = probe(24, 16, 3);
    let b = probe(16, 18, 4);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    // probe_every = 0: residual probe disabled, only the fused non-finite
    // scan stands guard — NaN/Inf faults must still never escape.
    let mm = guard().sentinel(SentinelConfig {
        probe_every: 0,
        ..SentinelConfig::default()
    });
    fault::install(&[
        Fault {
            at_call: 0,
            kind: FaultKind::SeedNan,
        },
        Fault {
            at_call: 2,
            kind: FaultKind::SeedInf,
        },
    ]);
    for _ in 0..3 {
        let c = mm.multiply(a.as_ref(), b.as_ref());
        for i in 0..c.rows() {
            for j in 0..c.cols() {
                assert!(c.at(i, j).is_finite(), "non-finite value escaped");
            }
        }
        assert!(c.rel_frobenius_error(&expect) < HEALTHY_ERR);
    }
    fault::clear();
    assert_eq!(fault::injected_count(), 2);
    let h = mm.health();
    assert_eq!(h.nonfinite_detected, 2, "{h:?}");
    assert!(h.demotions >= 2, "{h:?}");
}

#[test]
fn perturbed_lambda_trips_the_residual_probe() {
    let _g = LOCK.lock().unwrap();
    let a = probe(30, 20, 5);
    let b = probe(20, 20, 6);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let mm = guard();
    // λ shifted 2⁸ off the optimum: finite output, wildly out-of-model
    // error — only the Freivalds probe can see it.
    fault::install(&[Fault {
        at_call: 0,
        kind: FaultKind::PerturbLambda { factor: 256.0 },
    }]);
    let c = mm.multiply(a.as_ref(), b.as_ref());
    fault::clear();
    assert_eq!(fault::injected_count(), 1);
    assert!(c.rel_frobenius_error(&expect) < HEALTHY_ERR);
    let h = mm.health();
    assert!(h.probe_failures >= 1, "{h:?}");
    assert!(h.demotions >= 1, "{h:?}");
}

#[test]
fn unsampled_finite_corruption_documents_the_probe_rate_tradeoff() {
    let _g = LOCK.lock().unwrap();
    let a = probe(24, 16, 7);
    let b = probe(16, 18, 8);
    // With the probe disabled, a *finite* corruption is invisible to the
    // non-finite scan — the documented trade-off of lowering the probe
    // rate. (NaN/Inf are still always caught, see above.)
    let mm = guard().sentinel(SentinelConfig {
        probe_every: 0,
        ..SentinelConfig::default()
    });
    fault::install(&[Fault {
        at_call: 0,
        kind: FaultKind::CorruptOutput { scale: 1e4 },
    }]);
    let _c = mm.multiply(a.as_ref(), b.as_ref());
    fault::clear();
    assert_eq!(fault::injected_count(), 1);
    let h = mm.health();
    assert_eq!(
        h.demotions, 0,
        "scan-only mode cannot see finite corruption"
    );
}

#[test]
fn panicked_lane_surfaces_as_a_typed_error_and_the_next_multiply_succeeds() {
    let _g = LOCK.lock().unwrap();
    fault::clear();
    let a = probe(64, 48, 11);
    let b = probe(48, 40, 12);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let mm = ClassicalMatmul::new().threads(2);
    let mut c = Mat::<f32>::zeros(64, 40);

    // Arm the one-shot lane switch directly: the next gemm lane dequeued
    // anywhere panics mid-stripe.
    apa_gemm::pool::lane_fault::arm_panic();
    let err = mm
        .try_multiply_into(a.as_ref(), b.as_ref(), c.as_mut())
        .unwrap_err();
    match &err {
        MatmulError::WorkerPanicked { detail } => {
            assert!(detail.contains("injected lane panic"), "{detail}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The pool was rebuilt: the very next multiply on the same instance
    // must succeed, at full quality.
    mm.try_multiply_into(a.as_ref(), b.as_ref(), c.as_mut())
        .unwrap();
    assert!(c.rel_frobenius_error(&expect) < 1e-5);
}

#[test]
fn guard_absorbs_a_lane_panic_by_demoting() {
    let _g = LOCK.lock().unwrap();
    let a = probe(64, 48, 13);
    let b = probe(48, 40, 14);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    // Parallel execution so a worker lane actually exists to kill; the
    // hybrid schedule must unwind out of its barrier, not deadlock.
    let mm = GuardedApaMatmul::new(catalog::bini322())
        .strategy(Strategy::Hybrid)
        .threads(2);
    fault::install(&[Fault {
        at_call: 0,
        kind: FaultKind::PanicInLane,
    }]);
    let c = mm.multiply(a.as_ref(), b.as_ref());
    fault::clear();
    assert_eq!(
        fault::injected_count(),
        1,
        "lane switch must have been armed"
    );
    assert!(c.rel_frobenius_error(&expect) < HEALTHY_ERR);
    let h = mm.health();
    assert!(h.worker_panics >= 1, "{h:?}");
    assert!(h.demotions >= 1, "{h:?}");
    // The fault is gone: the next call (on the demoted rung) is clean.
    let c2 = mm.multiply(a.as_ref(), b.as_ref());
    assert!(c2.rel_frobenius_error(&expect) < HEALTHY_ERR);
    assert_eq!(mm.health().worker_panics, h.worker_panics);
}

#[test]
fn stalled_lane_trips_the_watchdog_and_demotes() {
    let _g = LOCK.lock().unwrap();
    let a = probe(64, 48, 15);
    let b = probe(48, 40, 16);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let mm = GuardedApaMatmul::new(catalog::bini322())
        .strategy(Strategy::Hybrid)
        .threads(2)
        .watchdog(Duration::from_millis(100));
    // The one-shot stall holds the first lane dequeued for 1.5 s — far
    // past the 100 ms deadline — so rung 0 times out and the call lands
    // on a lower rung (the stall switch is consumed; the retry is clean).
    fault::install(&[Fault {
        at_call: 0,
        kind: FaultKind::StallLane { millis: 1500 },
    }]);
    let c = mm.multiply(a.as_ref(), b.as_ref());
    fault::clear();
    assert_eq!(fault::injected_count(), 1);
    assert!(c.rel_frobenius_error(&expect) < HEALTHY_ERR);
    let h = mm.health();
    assert!(h.watchdog_timeouts >= 1, "{h:?}");
    assert!(h.demotions >= 1, "{h:?}");
    assert!(mm.current_rung(64, 48, 40).unwrap() >= 1);
}

#[test]
fn restored_guard_replays_the_same_ladder_decisions() {
    let _g = LOCK.lock().unwrap();
    let a = probe(24, 16, 17);
    let b = probe(16, 18, 18);

    // Original guard lives through a scripted fault at call 1.
    let mm1 = guard();
    fault::install(&[Fault {
        at_call: 1,
        kind: FaultKind::CorruptOutput { scale: 1e4 },
    }]);
    for _ in 0..4 {
        mm1.multiply(a.as_ref(), b.as_ref());
    }
    fault::clear();
    let snapshot = mm1.export_state();
    assert_eq!(snapshot.calls, 4);

    // A fresh identically-configured guard restores the snapshot, then
    // both face the *same* scripted future (fault at call index 5).
    let mm2 = guard();
    mm2.restore_state(&snapshot).unwrap();
    assert_eq!(mm2.export_state(), snapshot);

    let future = [Fault {
        at_call: 5,
        kind: FaultKind::SeedNan,
    }];
    fault::install(&future);
    for _ in 0..3 {
        mm1.multiply(a.as_ref(), b.as_ref());
    }
    fault::clear();
    fault::install(&future);
    for _ in 0..3 {
        mm2.multiply(a.as_ref(), b.as_ref());
    }
    fault::clear();

    // Identical rung decisions, probe schedule and counters.
    assert_eq!(mm1.export_state(), mm2.export_state());
    assert_eq!(mm1.health(), mm2.health());
    assert!(mm1.health().nonfinite_detected >= 1, "{:?}", mm1.health());
}

#[test]
fn hysteresis_repromotes_after_the_fault_clears() {
    let _g = LOCK.lock().unwrap();
    let a = probe(24, 16, 9);
    let b = probe(16, 18, 10);
    let expect = matmul_naive(a.as_ref(), b.as_ref());
    let mm = guard().policy(apa_matmul::DegradePolicy {
        promote_after: 3,
        max_backoff: 4,
        promotion_jitter: 0.0, // the drill counts exact streak lengths
        ..apa_matmul::DegradePolicy::default()
    });
    fault::install(&[Fault {
        at_call: 0,
        kind: FaultKind::CorruptOutput { scale: 1e4 },
    }]);
    mm.multiply(a.as_ref(), b.as_ref());
    fault::clear();
    assert_eq!(mm.current_rung(24, 16, 18), Some(1), "demoted by the fault");
    // One prior demotion → promotion needs 3·2¹ = 6 clean calls.
    for _ in 0..6 {
        let c = mm.multiply(a.as_ref(), b.as_ref());
        assert!(c.rel_frobenius_error(&expect) < HEALTHY_ERR);
    }
    assert_eq!(
        mm.current_rung(24, 16, 18),
        Some(0),
        "clean streak re-promotes"
    );
    let h = mm.health();
    assert_eq!(h.promotions, 1, "{h:?}");
}
