//! Deterministic RNG for the proptest shim: splitmix64-seeded
//! xoshiro256++ (same generator family as the workspace `rand` shim, but
//! self-contained so the shim has zero dependencies).

#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed derived from a test's name (FNV-1a), so every proptest
    /// function gets an independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
