//! Symbolic validation of bilinear rules via the Brent equations.
//!
//! A rule (U, V, W) for ⟨m,k,n⟩ computes matrix multiplication exactly iff
//! for all `i,i' ∈ m`, `a,a' ∈ k`, `j,j' ∈ n`:
//!
//! ```text
//! Σ_t U[(i,a),t] · V[(a',j),t] · W[(i',j'),t] = δ_{a,a'} δ_{i,i'} δ_{j,j'}
//! ```
//!
//! For an APA rule the left side is a Laurent polynomial in λ and the
//! requirement weakens to (paper §2.2–2.3):
//!
//! 1. no negative powers of λ survive in any equation (they must cancel);
//! 2. the λ⁰ coefficient equals the Kronecker delta;
//! 3. the residual (everything of positive degree) may be nonzero — its
//!    minimal degree over all equations is the approximation-order σ.
//!
//! The check is performed sparsely: cost is `Σ_t nnz(U_t)·nnz(V_t)·nnz(W_t)`
//! rather than `(mk)(kn)(mn)·r`, which keeps even the ⟨12,12,12;1000⟩
//! Bini-cube validatable in well under a second.

use crate::bilinear::BilinearAlgorithm;
use crate::laurent::Laurent;
use std::collections::HashMap;

/// Outcome of a successful Brent validation.
#[derive(Clone, Debug, PartialEq)]
pub struct BrentReport {
    /// True iff every equation holds with zero residual (exact algorithm).
    pub exact: bool,
    /// Minimal positive λ-degree of any residual term — the paper's σ.
    /// `None` for exact algorithms.
    pub sigma: Option<u32>,
    /// Largest |coefficient| among residual (positive-degree) terms; a
    /// bound on the entries of the error matrix polynomial.
    pub max_residual_coeff: f64,
    /// Number of Brent equations with nonzero residual.
    pub residual_equations: usize,
}

/// Why validation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum BrentError {
    /// An equation retained a negative power of λ: the rule does not even
    /// approximate matrix multiplication as λ→0.
    NegativePower {
        equation: (usize, usize, usize),
        degree: i32,
        coeff: f64,
    },
    /// The λ⁰ coefficient of an equation differs from the Kronecker delta.
    WrongConstant {
        equation: (usize, usize, usize),
        expected: f64,
        got: f64,
    },
}

impl std::fmt::Display for BrentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrentError::NegativePower {
                equation,
                degree,
                coeff,
            } => write!(
                f,
                "Brent equation {equation:?} keeps a negative power λ^{degree} with coefficient {coeff}"
            ),
            BrentError::WrongConstant {
                equation,
                expected,
                got,
            } => write!(
                f,
                "Brent equation {equation:?} has constant term {got}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for BrentError {}

/// Numerical tolerance for cancellation checks. The catalog's coefficients
/// are small integers, halves and quarters, so exact-in-f64 cancellation is
/// expected; the tolerance only absorbs harmless accumulation order noise.
pub const BRENT_TOL: f64 = 1e-9;

/// Validate a rule against the (APA-relaxed) Brent equations.
pub fn validate(alg: &BilinearAlgorithm) -> Result<BrentReport, BrentError> {
    validate_with_tol(alg, BRENT_TOL)
}

/// [`validate`] with an explicit tolerance (useful for numerically
/// discovered rules whose coefficients carry ALS noise).
pub fn validate_with_tol(alg: &BilinearAlgorithm, tol: f64) -> Result<BrentReport, BrentError> {
    let d = alg.dims;
    // Accumulate Σ_t U·V·W per (α, β, γ) key, sparsely.
    let mut sums: HashMap<(usize, usize, usize), Laurent> = HashMap::new();
    for t in 0..alg.rank() {
        for (ra, pa) in alg.u.col(t) {
            for (rb, pb) in alg.v.col(t) {
                let pab = pa.mul(pb);
                for (rc, pc) in alg.w.col(t) {
                    let term = pab.mul(pc);
                    sums.entry((*ra, *rb, *rc))
                        .or_insert_with(Laurent::zero)
                        .add_term_all(&term);
                }
            }
        }
    }

    let mut sigma: Option<u32> = None;
    let mut max_residual: f64 = 0.0;
    let mut residual_eqs = 0usize;

    // Check every equation that has any accumulated term.
    for (&(ra, rb, rc), poly) in &sums {
        let (i, a) = (ra / d.k, ra % d.k);
        let (a2, j) = (rb / d.n, rb % d.n);
        let (i2, j2) = (rc / d.n, rc % d.n);
        let delta = if a == a2 && i == i2 && j == j2 {
            1.0
        } else {
            0.0
        };
        check_equation(
            (ra, rb, rc),
            poly,
            delta,
            tol,
            &mut sigma,
            &mut max_residual,
            &mut residual_eqs,
        )?;
    }

    // Equations with no accumulated term must have delta = 0; the delta = 1
    // equations must all be present, so verify they were visited.
    for i in 0..d.m {
        for a in 0..d.k {
            for j in 0..d.n {
                let key = (d.a_index(i, a), d.b_index(a, j), d.c_index(i, j));
                let poly = sums.get(&key);
                let present = poly
                    .map(|p| (p.coeff(0) - 1.0).abs() <= tol)
                    .unwrap_or(false);
                if !present {
                    return Err(BrentError::WrongConstant {
                        equation: key,
                        expected: 1.0,
                        got: poly.map(|p| p.coeff(0)).unwrap_or(0.0),
                    });
                }
            }
        }
    }

    Ok(BrentReport {
        exact: residual_eqs == 0,
        sigma,
        max_residual_coeff: max_residual,
        residual_equations: residual_eqs,
    })
}

fn check_equation(
    key: (usize, usize, usize),
    poly: &Laurent,
    delta: f64,
    tol: f64,
    sigma: &mut Option<u32>,
    max_residual: &mut f64,
    residual_eqs: &mut usize,
) -> Result<(), BrentError> {
    let mut has_residual = false;
    for (e, c) in poly.iter() {
        if c.abs() <= tol {
            continue;
        }
        if e < 0 {
            return Err(BrentError::NegativePower {
                equation: key,
                degree: e,
                coeff: c,
            });
        }
        if e == 0 {
            if (c - delta).abs() > tol {
                return Err(BrentError::WrongConstant {
                    equation: key,
                    expected: delta,
                    got: c,
                });
            }
        } else {
            has_residual = true;
            let deg = e as u32;
            *sigma = Some(sigma.map_or(deg, |s| s.min(deg)));
            if c.abs() > *max_residual {
                *max_residual = c.abs();
            }
        }
    }
    // delta = 1 with no λ⁰ term at all is also a failure.
    if delta != 0.0 && (poly.coeff(0) - delta).abs() > tol {
        return Err(BrentError::WrongConstant {
            equation: key,
            expected: delta,
            got: poly.coeff(0),
        });
    }
    if has_residual {
        *residual_eqs += 1;
    }
    Ok(())
}

impl Laurent {
    /// Accumulate all terms of `other` into `self` (internal helper for the
    /// Brent accumulator; public because `apa-discovery` reuses it).
    pub fn add_term_all(&mut self, other: &Laurent) {
        for (e, c) in other.iter() {
            self.add_term(e, c);
        }
    }
}

/// Numeric spot-check: run the rule by definition on random ±1 inputs at
/// two λ values and confirm the error against classical shrinks like λ^σ.
/// This is the cheap complement to [`validate`] used in integration tests.
pub fn numeric_consistency(alg: &BilinearAlgorithm, seed: u64) -> f64 {
    let d = alg.dims;
    // A tiny deterministic LCG avoids a rand dependency in this crate.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0
    };
    let a: Vec<f64> = (0..d.m * d.k).map(|_| next()).collect();
    let b: Vec<f64> = (0..d.k * d.n).map(|_| next()).collect();
    let mut c_ref = vec![0.0; d.m * d.n];
    for i in 0..d.m {
        for a_ in 0..d.k {
            for j in 0..d.n {
                c_ref[d.c_index(i, j)] += a[d.a_index(i, a_)] * b[d.b_index(a_, j)];
            }
        }
    }
    let lambda = 1e-4;
    let c_hat = alg.apply_base(&a, &b, lambda);
    let num: f64 = c_hat
        .iter()
        .zip(&c_ref)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = c_ref.iter().map(|x| x * x).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilinear::{Dims, RuleBuilder};
    use crate::laurent::Laurent;

    fn classical_111() -> BilinearAlgorithm {
        let mut b = RuleBuilder::new(Dims::new(1, 1, 1), 1);
        b.mult(
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
        );
        b.build("c111")
    }

    #[test]
    fn classical_scalar_is_exact() {
        let r = validate(&classical_111()).unwrap();
        assert!(r.exact);
        assert_eq!(r.sigma, None);
        assert_eq!(r.residual_equations, 0);
    }

    #[test]
    fn wrong_coefficient_detected() {
        let mut b = RuleBuilder::new(Dims::new(1, 1, 1), 1);
        b.mult(
            &[(0, 0, Laurent::constant(2.0))],
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
        );
        let alg = b.build("bad");
        match validate(&alg) {
            Err(BrentError::WrongConstant { got, expected, .. }) => {
                assert_eq!(got, 2.0);
                assert_eq!(expected, 1.0);
            }
            other => panic!("expected WrongConstant, got {other:?}"),
        }
    }

    #[test]
    fn surviving_negative_power_detected() {
        let mut b = RuleBuilder::new(Dims::new(1, 1, 1), 1);
        b.mult(
            &[(0, 0, Laurent::monomial(1.0, -1))],
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::from_terms([(1, 1.0), (0, 1.0)]))],
        );
        // product = λ⁻¹ + 1: negative power survives.
        let alg = b.build("neg");
        assert!(matches!(
            validate(&alg),
            Err(BrentError::NegativePower { degree: -1, .. })
        ));
    }

    #[test]
    fn apa_residual_yields_sigma() {
        // Scalar rule computing a·b + λ·a·b: Ĉ = (1+λ)·M, M = a·b.
        let mut b = RuleBuilder::new(Dims::new(1, 1, 1), 1);
        b.mult(
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::from_terms([(0, 1.0), (1, 1.0)]))],
        );
        let alg = b.build("apa-scalar");
        let r = validate(&alg).unwrap();
        assert!(!r.exact);
        assert_eq!(r.sigma, Some(1));
        assert_eq!(r.residual_equations, 1);
    }

    #[test]
    fn missing_required_product_detected() {
        // rank-1 rule for <1,1,2> can only cover one of the two outputs.
        let mut b = RuleBuilder::new(Dims::new(1, 1, 2), 1);
        b.mult(
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
            &[(0, 0, Laurent::one())],
        );
        let alg = b.build("undersized");
        assert!(matches!(
            validate(&alg),
            Err(BrentError::WrongConstant { expected, .. }) if expected == 1.0
        ));
    }

    #[test]
    fn numeric_consistency_small_for_valid_rule() {
        let err = numeric_consistency(&classical_111(), 7);
        assert!(
            err < 1e-12,
            "classical rule should be numerically exact, got {err}"
        );
    }
}
