//! Criterion micro-benchmarks for the NN substrate: one training batch of
//! the paper's accuracy network with classical vs APA middle layers.

use apa_core::catalog;
use apa_gemm::Mat;
use apa_nn::{accuracy_network, apa, classical, Backend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn batch(rows: usize, cols: usize) -> (Mat<f32>, Vec<u8>) {
    let mut state = 0xB417u64;
    let x = Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32) / (1u64 << 24) as f32
    });
    let labels = (0..rows).map(|i| (i % 10) as u8).collect();
    (x, labels)
}

fn bench_train_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_train_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let (x, labels) = batch(300, 784);

    let configs: Vec<(&str, Backend)> = vec![
        ("classical", classical(1)),
        ("bini322", apa(catalog::bini322(), 1)),
        ("fast444", apa(catalog::fast444(), 1)),
    ];
    for (name, hidden) in configs {
        let mut net = accuracy_network(hidden, 1, 7);
        group.bench_with_input(BenchmarkId::new("hidden", name), &name, |bench, _| {
            bench.iter(|| net.train_batch(&x, &labels, 0.05));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_batch);
criterion_main!(benches);
