//! The brownout controller: trade answer quality for throughput when the
//! service is drowning, and give the quality back once it isn't.
//!
//! The guarded ladder of [`apa_matmul::fallback`] moves *down* in quality
//! to protect numerics. Brownout is the inverse lever, exercised from the
//! serving layer: under queue-depth or tail-latency pressure, install a
//! [`QualityOverride`] on every warm replica's guard that (a) caps the
//! starting rung back at the fast APA rule even for stickily-demoted
//! shapes — or, via [`QualityOverride::pin_rung`], pins whichever rung is
//! the measured-cheapest for the serving shapes (on small widths that can
//! be the exact classical floor) — (b) stretches the Freivalds probe
//! stride, and (c) relaxes the probe budget — all without touching the
//! sticky health state, so lifting the override restores the exact
//! pre-brownout ladder.
//!
//! The controller is a pure state machine sampled periodically by the
//! service's monitor thread. Hysteresis comes from two places: distinct
//! enter/exit watermarks ([`BrownoutConfig::enter_fill`] well above
//! [`BrownoutConfig::exit_fill`]), and a [`BrownoutConfig::hold`] dwell
//! time between consecutive level changes so one noisy sample can't
//! oscillate the fleet.

use apa_matmul::QualityOverride;
use std::time::{Duration, Instant};

/// Brownout tuning knobs, fixed at service start.
#[derive(Clone, Debug)]
pub struct BrownoutConfig {
    /// Degradation ladder, mild → aggressive. Level `0` is "off" (no
    /// override); level `i ≥ 1` installs `levels[i - 1]`.
    pub levels: Vec<QualityOverride>,
    /// Queue fill factor (depth / capacity) at or above which the
    /// controller steps one level deeper.
    pub enter_fill: f64,
    /// Fill factor at or below which it steps one level back up. Keep
    /// well below `enter_fill` — the gap is the hysteresis band.
    pub exit_fill: f64,
    /// Optional second trigger: step deeper when the windowed p99 of
    /// completed requests exceeds this, even if the queue looks shallow
    /// (a slow replica can hold fill low while latency explodes).
    pub enter_p99: Option<Duration>,
    /// Minimum dwell between consecutive level changes.
    pub hold: Duration,
    /// Cadence at which the monitor thread samples the controller.
    pub sample_every: Duration,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            // Two stock levels: first stop probing so often and give the
            // budget slack; then also force execution back onto the
            // configured fast rung regardless of sticky demotions.
            levels: vec![
                QualityOverride {
                    rung_cap: usize::MAX,
                    probe_stride_factor: 4,
                    budget_slack: 8.0,
                    pin_rung: None,
                },
                QualityOverride {
                    rung_cap: 0,
                    probe_stride_factor: 8,
                    budget_slack: 16.0,
                    pin_rung: None,
                },
            ],
            enter_fill: 0.60,
            exit_fill: 0.25,
            enter_p99: None,
            hold: Duration::from_millis(50),
            sample_every: Duration::from_millis(10),
        }
    }
}

/// One observation handed to [`BrownoutController::observe`].
#[derive(Clone, Copy, Debug)]
pub struct Pressure {
    /// Queue depth / capacity at the sample instant.
    pub fill: f64,
    /// p99 of request latencies completed since the previous sample
    /// (`None` when nothing completed in the window).
    pub window_p99: Option<Duration>,
}

/// The level state machine. Owned by one monitor thread — not `Sync`,
/// mutate via `&mut`.
pub struct BrownoutController {
    config: BrownoutConfig,
    level: usize,
    last_change: Option<Instant>,
    steps_down: u64,
    steps_up: u64,
}

impl BrownoutController {
    pub fn new(config: BrownoutConfig) -> Self {
        Self {
            config,
            level: 0,
            last_change: None,
            steps_down: 0,
            steps_up: 0,
        }
    }

    pub fn config(&self) -> &BrownoutConfig {
        &self.config
    }

    /// Current level: `0` = full quality, `config.levels.len()` = deepest.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Quality-degrading level changes so far.
    pub fn steps_down(&self) -> u64 {
        self.steps_down
    }

    /// Quality-restoring level changes so far.
    pub fn steps_up(&self) -> u64 {
        self.steps_up
    }

    /// The override the replicas should run at `level` (`None` = clear).
    pub fn override_for(&self, level: usize) -> Option<QualityOverride> {
        if level == 0 {
            None
        } else {
            self.config.levels.get(level - 1).copied()
        }
    }

    /// Feed one pressure sample; returns `Some(new_level)` when the level
    /// changed (the caller then re-installs overrides on the replicas).
    pub fn observe(&mut self, p: Pressure, now: Instant) -> Option<usize> {
        if self.config.levels.is_empty() {
            return None;
        }
        let held = self
            .last_change
            .is_some_and(|t| now.saturating_duration_since(t) < self.config.hold);
        if held {
            return None;
        }
        let latency_pressure = self
            .config
            .enter_p99
            .zip(p.window_p99)
            .is_some_and(|(limit, got)| got > limit);
        let pressured = p.fill >= self.config.enter_fill || latency_pressure;
        // Quality comes back only when BOTH signals are calm: shallow
        // queue and (when configured) a tail back under the limit.
        let calm = p.fill <= self.config.exit_fill && !latency_pressure;

        if pressured && self.level < self.config.levels.len() {
            self.level += 1;
            self.steps_down += 1;
            self.last_change = Some(now);
            Some(self.level)
        } else if calm && self.level > 0 {
            self.level -= 1;
            self.steps_up += 1;
            self.last_change = Some(now);
            Some(self.level)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            enter_fill: 0.6,
            exit_fill: 0.2,
            hold: Duration::from_millis(10),
            ..BrownoutConfig::default()
        }
    }

    fn quiet() -> Pressure {
        Pressure {
            fill: 0.0,
            window_p99: None,
        }
    }

    fn busy(fill: f64) -> Pressure {
        Pressure {
            fill,
            window_p99: None,
        }
    }

    #[test]
    fn steps_down_one_level_at_a_time_with_dwell() {
        let mut c = BrownoutController::new(cfg());
        let t0 = Instant::now();
        assert_eq!(c.observe(busy(0.9), t0), Some(1));
        // Still pressured, but inside the hold window: no change.
        assert_eq!(c.observe(busy(0.9), t0 + Duration::from_millis(5)), None);
        assert_eq!(
            c.observe(busy(0.9), t0 + Duration::from_millis(11)),
            Some(2)
        );
        // Deepest level: stays put.
        assert_eq!(c.observe(busy(0.9), t0 + Duration::from_millis(30)), None);
        assert_eq!(c.level(), 2);
        assert_eq!(c.steps_down(), 2);
    }

    #[test]
    fn hysteresis_band_prevents_oscillation() {
        let mut c = BrownoutController::new(cfg());
        let t0 = Instant::now();
        assert_eq!(c.observe(busy(0.7), t0), Some(1));
        // Fill drops below enter but stays above exit: hold the level.
        let mid = busy(0.4);
        assert_eq!(c.observe(mid, t0 + Duration::from_millis(20)), None);
        assert_eq!(c.observe(mid, t0 + Duration::from_millis(40)), None);
        assert_eq!(c.level(), 1);
        // Only a genuinely calm queue restores quality.
        assert_eq!(
            c.observe(busy(0.1), t0 + Duration::from_millis(60)),
            Some(0)
        );
        assert_eq!(c.steps_up(), 1);
    }

    #[test]
    fn latency_trigger_steps_down_even_with_a_shallow_queue() {
        let base = cfg();
        let mut c = BrownoutController::new(BrownoutConfig {
            enter_p99: Some(Duration::from_millis(5)),
            levels: vec![base.levels[0]],
            ..base
        });
        let t0 = Instant::now();
        let slow = Pressure {
            fill: 0.05,
            window_p99: Some(Duration::from_millis(50)),
        };
        assert_eq!(c.observe(slow, t0), Some(1));
        // Shallow queue alone is not calm while the tail is still over
        // the limit.
        assert_eq!(c.observe(slow, t0 + Duration::from_millis(20)), None);
        let recovered = Pressure {
            fill: 0.05,
            window_p99: Some(Duration::from_millis(1)),
        };
        assert_eq!(
            c.observe(recovered, t0 + Duration::from_millis(40)),
            Some(0)
        );
    }

    #[test]
    fn override_for_maps_levels_to_configured_ladder() {
        let c = BrownoutController::new(cfg());
        assert!(c.override_for(0).is_none());
        let l1 = c.override_for(1).unwrap();
        assert_eq!(l1.probe_stride_factor, 4);
        assert_eq!(l1.rung_cap, usize::MAX);
        let l2 = c.override_for(2).unwrap();
        assert_eq!(l2.rung_cap, 0);
        assert!(c.override_for(3).is_none());
    }

    #[test]
    fn quiet_service_never_enters_brownout() {
        let mut c = BrownoutController::new(cfg());
        let mut now = Instant::now();
        for _ in 0..50 {
            assert_eq!(c.observe(quiet(), now), None);
            now += Duration::from_millis(20);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.steps_down(), 0);
    }
}
