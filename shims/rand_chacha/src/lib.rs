//! Offline shim for `rand_chacha`. **Not** the ChaCha cipher: a seeded
//! xoshiro256++ generator under the `ChaCha8Rng` name. This workspace uses
//! `ChaCha8Rng` purely as "a deterministic, seedable RNG" — nothing
//! depends on the actual ChaCha output stream.

use rand::{RngCore, SeedableRng, Xoshiro256pp};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng(Xoshiro256pp);

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng(Xoshiro256pp::from_seed_bytes(seed))
    }
}

/// Alias kept for drop-in compatibility with code written against the
/// real crate's other stream widths.
pub type ChaCha12Rng = ChaCha8Rng;
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn implements_rng_surface() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f32 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n: usize = rng.gen_range(0..10);
        assert!(n < 10);
    }
}
