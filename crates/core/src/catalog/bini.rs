//! Bini's ⟨3,2,2;10⟩ APA rule [Bini, Capovani, Romani, Lotti 1979],
//! transcribed verbatim from the paper's §2.2 (the only APA rule whose
//! complete coefficients the paper prints).
//!
//! Transcription note: the OCR'd paper text lists the `B` factor of M₁₀ as
//! identical to M₉'s (`B12 − λB22`), which cannot be right — it breaks the
//! Ĉ₂₁ and Ĉ₃₁ formulas. The mirror symmetry of the rule (M₆…M₁₀ is the
//! image of M₁…M₅ under A-row reversal and the B-index swap 11↔22, 12↔21)
//! determines M₁₀ = (λA31 + A32)(λB21 + B11); with it every output formula
//! expands to `C + O(λ)` as required. The Brent validator and the unit
//! tests below machine-check that reconstruction (σ = 1, φ = 1, E₁₁ =
//! −A12·B11 exactly as the paper states).

use crate::bilinear::{BilinearAlgorithm, Dims, RuleBuilder};
use crate::laurent::Laurent;

fn c(v: f64) -> Laurent {
    Laurent::constant(v)
}

fn lam(v: f64) -> Laurent {
    Laurent::monomial(v, 1)
}

fn inv(v: f64) -> Laurent {
    Laurent::monomial(v, -1)
}

/// Bini's rank-10 APA rule for A (3×2) · B (2×2): σ = 1, φ = 1,
/// ideal single-step speedup 12/10 − 1 = 20%.
pub fn bini322() -> BilinearAlgorithm {
    let mut b = RuleBuilder::new(Dims::new(3, 2, 2), 10);
    // Indices are 0-based: A11 ≡ (0,0), …, A32 ≡ (2,1); B11 ≡ (0,0), ….
    // M1 = (A11 + A22)(λB11 + B22) → λ⁻¹·Ĉ11, Ĉ22
    b.mult(
        &[(0, 0, c(1.0)), (1, 1, c(1.0))],
        &[(0, 0, lam(1.0)), (1, 1, c(1.0))],
        &[(0, 0, inv(1.0)), (1, 1, c(1.0))],
    );
    // M2 = A22·(−B21 − B22) → λ⁻¹·Ĉ11
    b.mult(
        &[(1, 1, c(1.0))],
        &[(1, 0, c(-1.0)), (1, 1, c(-1.0))],
        &[(0, 0, inv(1.0))],
    );
    // M3 = A11·B22 → −λ⁻¹·Ĉ11, −λ⁻¹·Ĉ12
    b.mult(
        &[(0, 0, c(1.0))],
        &[(1, 1, c(1.0))],
        &[(0, 0, inv(-1.0)), (0, 1, inv(-1.0))],
    );
    // M4 = (λA12 + A22)(−λB11 + B21) → λ⁻¹·Ĉ11, Ĉ21
    b.mult(
        &[(0, 1, lam(1.0)), (1, 1, c(1.0))],
        &[(0, 0, lam(-1.0)), (1, 0, c(1.0))],
        &[(0, 0, inv(1.0)), (1, 0, c(1.0))],
    );
    // M5 = (A11 + λA12)(λB12 + B22) → λ⁻¹·Ĉ12, −Ĉ22
    b.mult(
        &[(0, 0, c(1.0)), (0, 1, lam(1.0))],
        &[(0, 1, lam(1.0)), (1, 1, c(1.0))],
        &[(0, 1, inv(1.0)), (1, 1, c(-1.0))],
    );
    // M6 = (A21 + A32)(B11 + λB22) → Ĉ21, λ⁻¹·Ĉ32
    b.mult(
        &[(1, 0, c(1.0)), (2, 1, c(1.0))],
        &[(0, 0, c(1.0)), (1, 1, lam(1.0))],
        &[(1, 0, c(1.0)), (2, 1, inv(1.0))],
    );
    // M7 = A21·(−B11 − B12) → λ⁻¹·Ĉ32
    b.mult(
        &[(1, 0, c(1.0))],
        &[(0, 0, c(-1.0)), (0, 1, c(-1.0))],
        &[(2, 1, inv(1.0))],
    );
    // M8 = A32·B11 → −λ⁻¹·Ĉ31, −λ⁻¹·Ĉ32
    b.mult(
        &[(2, 1, c(1.0))],
        &[(0, 0, c(1.0))],
        &[(2, 0, inv(-1.0)), (2, 1, inv(-1.0))],
    );
    // M9 = (A21 + λA31)(B12 − λB22) → Ĉ22, λ⁻¹·Ĉ32
    b.mult(
        &[(1, 0, c(1.0)), (2, 0, lam(1.0))],
        &[(0, 1, c(1.0)), (1, 1, lam(-1.0))],
        &[(1, 1, c(1.0)), (2, 1, inv(1.0))],
    );
    // M10 = (λA31 + A32)(λB21 + B11) → −Ĉ21, λ⁻¹·Ĉ31
    b.mult(
        &[(2, 0, lam(1.0)), (2, 1, c(1.0))],
        &[(1, 0, lam(1.0)), (0, 0, c(1.0))],
        &[(1, 0, c(-1.0)), (2, 0, inv(1.0))],
    );
    b.build("bini322")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brent::validate;

    #[test]
    fn bini_validates_with_sigma_one() {
        let b = bini322();
        assert_eq!(b.rank(), 10);
        assert!(!b.is_exact_rule());
        assert_eq!(b.phi(), 1, "paper Table 1: φ = 1 for Bini's rule");
        let report = validate(&b).unwrap();
        assert!(!report.exact);
        assert_eq!(report.sigma, Some(1), "paper Table 1: σ = 1");
    }

    #[test]
    fn bini_ideal_speedup_is_twenty_percent() {
        let b = bini322();
        assert!((b.ideal_speedup() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn bini_error_term_matches_paper_c11() {
        // Paper §2.2: Ĉ11 = A11·B11 + A12·B21 − λ·A12·B11, i.e. the error
        // matrix entry E11 is ±A12·B11. Probe with A12 = B11 = 1, rest 0.
        let b = bini322();
        let mut a = [0.0; 6];
        let mut bb = [0.0; 4];
        a[1] = 1.0; // A12
        bb[0] = 1.0; // B11
        let lambda = 1e-3;
        let c = b.apply_base(&a, &bb, lambda);
        // C11 exact = 0 here, so Ĉ11 ≈ −λ · A12 · B11.
        assert!(
            (c[0] + lambda).abs() < 1e-9,
            "Ĉ11 = {} but expected −λ = {}",
            c[0],
            -lambda
        );
    }

    #[test]
    fn bini_error_shrinks_linearly_in_lambda() {
        let alg = bini322();
        let a: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..4).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut c_ref = vec![0.0; 6];
        for i in 0..3 {
            for t in 0..2 {
                for j in 0..2 {
                    c_ref[i * 2 + j] += a[i * 2 + t] * b[t * 2 + j];
                }
            }
        }
        let err = |lambda: f64| -> f64 {
            let c = alg.apply_base(&a, &b, lambda);
            c.iter()
                .zip(&c_ref)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        let e1 = err(1e-2);
        let e2 = err(1e-4);
        // Linear scaling: halving λ by 100× should cut the error ~100×.
        assert!(e2 < e1 * 1e-1, "e(1e-2)={e1}, e(1e-4)={e2}");
        assert!(e2 > 0.0, "APA error should be nonzero at finite λ");
    }

    #[test]
    fn bini_exact_product_recovered_in_limit() {
        let alg = bini322();
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5, 1.5, -1.0, 2.0];
        let c = alg.apply_base(&a, &b, 1e-8);
        let mut expect = [0.0; 6];
        for i in 0..3 {
            for t in 0..2 {
                for j in 0..2 {
                    expect[i * 2 + j] += a[i * 2 + t] * b[t * 2 + j];
                }
            }
        }
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }
}
