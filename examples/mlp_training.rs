//! Train the paper's 784-300-300-10 MLP (scaled down) with a classical
//! middle layer and with Bini's APA algorithm, side by side — the §4.2
//! robustness experiment in miniature.
//!
//! Run with: `cargo run --release --example mlp_training`

use apa_repro::nn::{accuracy_network, apa, classical, synthetic_mnist_split, Backend};
use apa_repro::prelude::catalog;

fn main() {
    let epochs = 8;
    let (train, test) = synthetic_mnist_split(3000, 1000, 0x5EED);
    println!(
        "synthetic MNIST: {} train / {} test samples, batch 300, {epochs} epochs\n",
        train.len(),
        test.len()
    );

    let configs: Vec<(&str, Backend)> = vec![
        ("classical", classical(1)),
        ("bini322  ", apa(catalog::bini322(), 1)),
        ("fast444  ", apa(catalog::fast444(), 1)),
    ];

    for (label, hidden) in configs {
        let mut net = accuracy_network(hidden, 1, 0xACC);
        print!("{label}  train-acc per epoch:");
        let mut secs = 0.0;
        for e in 0..epochs {
            let stats = net.train_epoch(&train, 300, 0.1, e);
            secs += stats.seconds;
            print!(" {:.3}", stats.train_accuracy);
        }
        let test_acc = net.evaluate(&test, 1000);
        println!("  | test {test_acc:.3} | {secs:.2}s compute");
    }

    println!(
        "\nAll backends converge to comparable accuracy — the APA matmul\n\
         error does not harm training (paper Fig. 5). Full-protocol run:\n\
         cargo run --release -p apa-bench --bin fig5 -- --full"
    );
}
