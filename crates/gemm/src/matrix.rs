//! Row-major matrices and borrowed strided views.
//!
//! The APA execution engine works on *sub-blocks* of its operands (the
//! quadrants of a one-step ⟨4,4,4⟩ split, the rim of a peeled odd
//! dimension, …), so the core types are views with an explicit row stride:
//! a sub-block of a matrix is a zero-copy [`MatRef`]/[`MatMut`] whose rows
//! remain contiguous slices. Disjoint mutable sub-blocks of one matrix are
//! obtained through the splitting APIs, which encapsulate the aliasing
//! reasoning in one place.

use crate::scalar::Scalar;
use std::marker::PhantomData;

/// An owned, row-major, densely packed matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Reshape in place, reusing the existing storage. Newly exposed
    /// elements are zero; surviving elements keep their *linear* position
    /// (callers that care about contents should refill after resizing).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, T::ZERO);
        self.rows = rows;
        self.cols = cols;
    }

    /// Take ownership of a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Immutable full view.
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            rs: self.cols,
            _marker: PhantomData,
        }
    }

    /// Mutable full view.
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            rs: self.cols,
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Relative Frobenius-norm distance to `other` (both in this scalar
    /// type), computed in f64: ‖self − other‖_F / ‖other‖_F.
    pub fn rel_frobenius_error(&self, other: &Mat<T>) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (x, y) in self.data.iter().zip(other.data.iter()) {
            let d = x.to_f64() - y.to_f64();
            num += d * d;
            den += y.to_f64() * y.to_f64();
        }
        (num / den.max(f64::MIN_POSITIVE)).sqrt()
    }
}

/// An immutable view of a (sub-)matrix: `rows × cols`, row stride `rs`,
/// each row a contiguous slice of length `cols`.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a, T> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    rs: usize,
    _marker: PhantomData<&'a T>,
}

// SAFETY: MatRef is a read-only view; sharing it across threads is sharing
// &[T].
unsafe impl<T: Sync> Send for MatRef<'_, T> {}
unsafe impl<T: Sync> Sync for MatRef<'_, T> {}

impl<'a, T: Scalar> MatRef<'a, T> {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        debug_assert!(i < self.rows);
        // SAFETY: the view invariant guarantees `ptr + i·rs .. + cols` is
        // in-bounds of the underlying allocation for every i < rows.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.rs), self.cols) }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.rs + j) }
    }

    /// Zero-copy sub-block starting at `(r0, c0)`.
    pub fn subview(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatRef<'a, T> {
        assert!(r0 + rows <= self.rows, "subview rows out of bounds");
        assert!(c0 + cols <= self.cols, "subview cols out of bounds");
        MatRef {
            // SAFETY: offset stays inside the parent view.
            ptr: unsafe { self.ptr.add(r0 * self.rs + c0) },
            rows,
            cols,
            rs: self.rs,
            _marker: PhantomData,
        }
    }

    /// Partition into an `mb × nb` grid of equal blocks (dims must divide).
    pub fn grid(&self, mb: usize, nb: usize) -> Vec<MatRef<'a, T>> {
        assert_eq!(
            self.rows % mb,
            0,
            "rows {} not divisible by {mb}",
            self.rows
        );
        assert_eq!(
            self.cols % nb,
            0,
            "cols {} not divisible by {nb}",
            self.cols
        );
        let (br, bc) = (self.rows / mb, self.cols / nb);
        let mut out = Vec::with_capacity(mb * nb);
        for bi in 0..mb {
            for bj in 0..nb {
                out.push(self.subview(bi * br, bj * bc, br, bc));
            }
        }
        out
    }

    /// Copy into an owned matrix.
    pub fn to_owned(&self) -> Mat<T> {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            m.as_mut_slice()[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(i));
        }
        m
    }
}

/// A mutable view of a (sub-)matrix. Unlike `&mut`, several `MatMut`s into
/// one allocation can coexist — but only the splitting APIs hand them out,
/// and those guarantee disjointness.
#[derive(Debug)]
pub struct MatMut<'a, T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    rs: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: a MatMut is an exclusive view of its (disjoint) block; moving it
// to another thread moves the exclusivity with it.
unsafe impl<T: Send> Send for MatMut<'_, T> {}
unsafe impl<T: Sync> Sync for MatMut<'_, T> {}

impl<'a, T: Scalar> MatMut<'a, T> {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Raw mutable pointer to the `(0,0)` element (row stride
    /// [`Self::row_stride`]). For handing tiles to the microkernel.
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Reassemble a view from raw parts — the seam the 2D parallel driver
    /// uses to hand each worker its disjoint output cell.
    ///
    /// # Safety
    /// `ptr` must point at the `(0,0)` element of a live allocation such
    /// that `ptr + i·rs .. + cols` is in-bounds for every `i < rows`, and
    /// the caller must guarantee exclusivity of the viewed elements for
    /// lifetime `'a` (no other live view, mutable or shared, overlaps it).
    pub(crate) unsafe fn from_raw_parts(
        ptr: *mut T,
        rows: usize,
        cols: usize,
        rs: usize,
    ) -> MatMut<'a, T> {
        MatMut {
            ptr,
            rows,
            cols,
            rs,
            _marker: PhantomData,
        }
    }

    /// Reborrow: a shorter-lived mutable view of the same block.
    pub fn rb(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            rs: self.rs,
            _marker: PhantomData,
        }
    }

    /// Immutable view of the same block.
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            rs: self.rs,
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        // SAFETY: exclusive view; row i is in-bounds and rows never alias
        // (rs ≥ cols by construction).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.rs), self.cols) }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.rs + j) }
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(i * self.rs + j) = v }
    }

    /// Consume into a sub-block (keeps exclusivity — no aliasing possible).
    pub fn into_subview(self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMut<'a, T> {
        assert!(r0 + rows <= self.rows, "subview rows out of bounds");
        assert!(c0 + cols <= self.cols, "subview cols out of bounds");
        MatMut {
            ptr: unsafe { self.ptr.add(r0 * self.rs + c0) },
            rows,
            cols,
            rs: self.rs,
            _marker: PhantomData,
        }
    }

    /// Shorter-lived sub-block view (borrows `self` mutably).
    pub fn subview_mut(&mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatMut<'_, T> {
        self.rb().into_subview(r0, c0, rows, cols)
    }

    /// Split into (top, bottom) at row `r`.
    pub fn split_at_row(self, r: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(r <= self.rows);
        let top = MatMut {
            ptr: self.ptr,
            rows: r,
            cols: self.cols,
            rs: self.rs,
            _marker: PhantomData,
        };
        let bottom = MatMut {
            // SAFETY: rows r.. are disjoint from rows ..r.
            ptr: unsafe { self.ptr.add(r * self.rs) },
            rows: self.rows - r,
            cols: self.cols,
            rs: self.rs,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Split into (left, right) at column `c`.
    pub fn split_at_col(self, c: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(c <= self.cols);
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: c,
            rs: self.rs,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: columns c.. are disjoint from columns ..c within
            // every row; both halves keep the parent stride.
            ptr: unsafe { self.ptr.add(c) },
            rows: self.rows,
            cols: self.cols - c,
            rs: self.rs,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Partition into an `mb × nb` grid of equal, disjoint mutable blocks
    /// (dims must divide). Row-major block order.
    pub fn into_grid(self, mb: usize, nb: usize) -> Vec<MatMut<'a, T>> {
        assert_eq!(
            self.rows % mb,
            0,
            "rows {} not divisible by {mb}",
            self.rows
        );
        assert_eq!(
            self.cols % nb,
            0,
            "cols {} not divisible by {nb}",
            self.cols
        );
        let (br, bc) = (self.rows / mb, self.cols / nb);
        let mut out = Vec::with_capacity(mb * nb);
        for bi in 0..mb {
            for bj in 0..nb {
                out.push(MatMut {
                    // SAFETY: blocks are pairwise disjoint by construction.
                    ptr: unsafe { self.ptr.add(bi * br * self.rs + bj * bc) },
                    rows: br,
                    cols: bc,
                    rs: self.rs,
                    _marker: PhantomData,
                });
            }
        }
        out
    }

    /// Split into horizontal stripes of at most `chunk` rows each —
    /// the unit of row-parallel work distribution.
    pub fn into_row_chunks(self, chunk: usize) -> Vec<MatMut<'a, T>> {
        assert!(chunk > 0);
        let mut out = Vec::new();
        let mut rest = self;
        while rest.rows > chunk {
            let (head, tail) = rest.split_at_row(chunk);
            out.push(head);
            rest = tail;
        }
        if rest.rows > 0 {
            out.push(rest);
        }
        out
    }

    /// Fill the block with a constant.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Copy from a same-shaped source view.
    pub fn copy_from(&mut self, src: MatRef<'_, T>) {
        assert_eq!(self.rows, src.rows());
        assert_eq!(self.cols, src.cols());
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(rows: usize, cols: usize) -> Mat<f64> {
        Mat::from_fn(rows, cols, |i, j| (i * cols + j) as f64)
    }

    #[test]
    fn owned_basics() {
        let mut m = Mat::<f32>::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.at(1, 2), 5.0);
        assert_eq!(m.as_slice()[5], 5.0);
    }

    #[test]
    fn subview_reads_correct_entries() {
        let m = iota(4, 4);
        let v = m.as_ref().subview(1, 2, 2, 2);
        assert_eq!(v.at(0, 0), 6.0);
        assert_eq!(v.at(1, 1), 11.0);
        assert_eq!(v.row(0), &[6.0, 7.0]);
        assert_eq!(v.row_stride(), 4);
    }

    #[test]
    fn grid_partitions_quadrants() {
        let m = iota(4, 4);
        let g = m.as_ref().grid(2, 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].at(0, 0), 0.0);
        assert_eq!(g[1].at(0, 0), 2.0);
        assert_eq!(g[2].at(0, 0), 8.0);
        assert_eq!(g[3].at(1, 1), 15.0);
    }

    #[test]
    fn mutable_grid_blocks_are_disjoint_and_writable() {
        let mut m = Mat::<f64>::zeros(4, 6);
        {
            let blocks = m.as_mut().into_grid(2, 3);
            let mut blocks = blocks;
            for (idx, b) in blocks.iter_mut().enumerate() {
                b.fill(idx as f64);
            }
        }
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(0, 2), 1.0);
        assert_eq!(m.at(0, 4), 2.0);
        assert_eq!(m.at(2, 0), 3.0);
        assert_eq!(m.at(3, 5), 5.0);
    }

    #[test]
    fn split_at_row_and_col() {
        let mut m = iota(4, 4);
        let (mut top, mut bottom) = m.as_mut().split_at_row(1);
        assert_eq!(top.rows(), 1);
        assert_eq!(bottom.rows(), 3);
        top.set(0, 0, -1.0);
        bottom.set(0, 0, -2.0);
        assert_eq!(m.at(0, 0), -1.0);
        assert_eq!(m.at(1, 0), -2.0);

        let (left, right) = m.as_mut().split_at_col(3);
        assert_eq!(left.cols(), 3);
        assert_eq!(right.cols(), 1);
        assert_eq!(right.at(2, 0), 11.0);
    }

    #[test]
    fn row_chunks_cover_all_rows() {
        let mut m = Mat::<f32>::zeros(7, 2);
        let chunks = m.as_mut().into_row_chunks(3);
        assert_eq!(
            chunks.iter().map(|c| c.rows()).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
    }

    #[test]
    fn copy_from_roundtrip() {
        let src = iota(3, 3);
        let mut dst = Mat::<f64>::zeros(3, 3);
        dst.as_mut().copy_from(src.as_ref());
        assert_eq!(dst, src);
    }

    #[test]
    fn rel_frobenius_error_zero_for_equal() {
        let a = iota(3, 2);
        assert_eq!(a.rel_frobenius_error(&a), 0.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0);
        assert!(a.rel_frobenius_error(&b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "subview rows out of bounds")]
    fn subview_bounds_checked() {
        let m = iota(2, 2);
        let _ = m.as_ref().subview(1, 0, 2, 1);
    }
}
