//! Render a bilinear rule in the paper's M-formula notation:
//!
//! ```text
//! M1 = (A11 + A22) * (L*B11 + B22)
//! ...
//! C11 = L^-1*M1 + L^-1*M2 - L^-1*M3 + L^-1*M4
//! ```
//!
//! This is how the paper's §2.2 presents Bini's algorithm; the renderer
//! makes any catalog or derived rule human-auditable in the same form.

use crate::bilinear::BilinearAlgorithm;
use crate::coeffs::CoeffMatrix;
use crate::laurent::Laurent;
use std::fmt::Write as _;

/// Format a coefficient as a prefix for `entry` (e.g. `-`, `2*`, `L*`,
/// `L^-1*`, or `(1 - L)*` for genuine polynomials).
fn coeff_prefix(p: &Laurent) -> (bool, String) {
    // Returns (negative, multiplier-string) for monomials; polynomials get
    // parenthesized verbatim.
    if p.is_monomial() {
        let (e, c) = p.iter().next().expect("monomial has a term");
        let neg = c < 0.0;
        let mag = c.abs();
        let mut s = String::new();
        if (mag - 1.0).abs() > 1e-12 {
            let _ = write!(s, "{mag}*");
        }
        match e {
            0 => {}
            1 => s.push_str("L*"),
            _ => {
                let _ = write!(s, "L^{e}*");
            }
        }
        (neg, s)
    } else {
        (false, format!("({p})*"))
    }
}

fn linear_combination(col: &[(usize, Laurent)], name: impl Fn(usize) -> String) -> String {
    let mut out = String::new();
    for (i, (row, p)) in col.iter().enumerate() {
        let (neg, prefix) = coeff_prefix(p);
        if i == 0 {
            if neg {
                out.push('-');
            }
        } else {
            out.push_str(if neg { " - " } else { " + " });
        }
        out.push_str(&prefix);
        out.push_str(&name(*row));
    }
    if out.is_empty() {
        out.push('0');
    }
    out
}

fn operand_string(m: &CoeffMatrix, t: usize, cols: usize, letter: char) -> String {
    let s = linear_combination(m.col(t), |row| {
        format!("{letter}{}{}", row / cols + 1, row % cols + 1)
    });
    if m.col_nnz(t) > 1 || s.starts_with('-') || s.contains('*') {
        format!("({s})")
    } else {
        s
    }
}

/// Render the full rule: one `M_t` line per multiplication, then one line
/// per output entry.
pub fn render_rule(alg: &BilinearAlgorithm) -> String {
    let d = alg.dims;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — {} rank {}{}",
        alg.name,
        d,
        alg.rank(),
        if alg.is_exact_rule() {
            " (exact)".to_string()
        } else {
            format!(" (APA, phi = {})", alg.phi())
        }
    );
    for t in 0..alg.rank() {
        let a = operand_string(&alg.u, t, d.k, 'A');
        let b = operand_string(&alg.v, t, d.n, 'B');
        let _ = writeln!(out, "M{} = {a} * {b}", t + 1);
    }
    // Outputs: transpose W into per-entry sums over M_t.
    for i in 0..d.m {
        for j in 0..d.n {
            let row = d.c_index(i, j);
            let mut terms: Vec<(usize, Laurent)> = Vec::new();
            for t in 0..alg.rank() {
                let p = alg.w.get(row, t);
                if !p.is_zero() {
                    terms.push((t, p));
                }
            }
            let s = linear_combination(&terms, |t| format!("M{}", t + 1));
            let _ = writeln!(out, "C{}{} = {s}", i + 1, j + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn strassen_renders_the_textbook_formulas() {
        let text = render_rule(&catalog::strassen());
        assert!(text.contains("M1 = (A11 + A22) * (B11 + B22)"), "{text}");
        assert!(text.contains("M2 = (A21 + A22) * B11"), "{text}");
        assert!(text.contains("C11 = M1 + M4 - M5 + M7"), "{text}");
        assert!(text.contains("C22 = M1 - M2 + M3 + M6"), "{text}");
        assert!(text.contains("(exact)"));
    }

    #[test]
    fn bini_renders_the_paper_formulas() {
        let text = render_rule(&catalog::bini322());
        // M1 = (A11 + A22)(λB11 + B22) — paper §2.2.
        assert!(text.contains("M1 = (A11 + A22) * (L*B11 + B22)"), "{text}");
        // Ĉ12 = λ⁻¹(−M3 + M5).
        assert!(text.contains("C12 = -L^-1*M3 + L^-1*M5"), "{text}");
        assert!(text.contains("(APA, phi = 1)"));
    }

    #[test]
    fn classical_renders_plain_products() {
        let text = render_rule(&catalog::classical(crate::bilinear::Dims::new(1, 2, 1)));
        assert!(text.contains("M1 = A11 * B11"), "{text}");
        assert!(text.contains("M2 = A12 * B21"), "{text}");
        assert!(text.contains("C11 = M1 + M2"), "{text}");
    }

    #[test]
    fn every_catalog_rule_renders_all_lines() {
        for alg in catalog::all() {
            if alg.rank() > 200 {
                continue;
            }
            let text = render_rule(&alg);
            let d = alg.dims;
            let lines = text.lines().count();
            assert_eq!(
                lines,
                1 + alg.rank() + d.m * d.n,
                "{}: header + rank M-lines + m·n C-lines",
                alg.name
            );
            assert!(
                !text.contains("= 0\n"),
                "{}: empty operand rendered",
                alg.name
            );
        }
    }

    #[test]
    fn fractional_coefficients_render_with_magnitude() {
        use crate::bilinear::{Dims, RuleBuilder};
        let mut b = RuleBuilder::new(Dims::new(1, 1, 1), 1);
        b.mult(
            &[(0, 0, Laurent::constant(0.5))],
            &[(0, 0, Laurent::constant(-2.0))],
            &[(0, 0, Laurent::one())],
        );
        let text = render_rule(&b.build("frac"));
        assert!(text.contains("0.5*A11"), "{text}");
        assert!(text.contains("(-2*B11)"), "{text}");
    }
}
