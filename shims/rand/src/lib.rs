//! Offline shim for `rand` 0.8: the `Rng`/`RngCore`/`SeedableRng` traits
//! and uniform range sampling for the integer and float types this
//! workspace draws (`usize`, `u32`, `i32`, `u64`, `f32`, `f64`).
//!
//! Determinism, not distribution quality, is the contract: generators are
//! seeded, reproducible, and uniform enough for test data and synthetic
//! datasets.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing sampling interface (blanket-implemented for every RngCore).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform sample of the output type: floats in `[0, 1)`, integers
    /// over their full domain, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeded construction (the subset of rand's `SeedableRng` used here).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as rand does for small seeds.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            b.copy_from_slice(&bytes[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample. Implemented as **blanket**
/// impls over [`SampleUniform`] (matching real rand's structure) so that
/// `rng.gen_range(-0.05..0.05)` infers the element type from surrounding
/// arithmetic — per-type range impls would leave `{float}` ambiguous.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types uniform range sampling is defined for.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection-free scaling
/// (widening multiply); bias is < 2⁻⁶⁴·bound, irrelevant at our scales.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-domain u64/i64 range: direct draw.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // [0,1) scaled: the closed upper end has measure zero
                // anyway; treat identically to the half-open case.
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

pub mod rngs {
    use super::*;

    /// The small fast generator rand exposes as `SmallRng` (xoshiro256++
    /// here).
    pub struct SmallRng(pub(crate) crate::Xoshiro256pp);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(crate::Xoshiro256pp::from_seed_bytes(seed))
        }
    }
}

/// xoshiro256++ core, shared with the `rand_chacha` shim.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // All-zero state is a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E3779B97F4A7C15,
                0xBF58476D1CE4E5B9,
                0x94D049BB133111EB,
                1,
            ];
        }
        Self { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestRng(Xoshiro256pp);
    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
    impl SeedableRng for TestRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            TestRng(Xoshiro256pp::from_seed_bytes(seed))
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut rng = TestRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = TestRng::seed_from_u64(13);
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
