//! The scalar abstraction: the GEMM stack is generic over `f32`/`f64`.
//!
//! The paper runs all experiments in single precision (d = 23) and uses
//! double precision for reference results, so both instantiations matter.

/// Floating-point element type usable by the kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    /// Register-tile rows used by the microkernel for this type.
    const MR: usize;
    /// Register-tile columns used by the microkernel for this type.
    const NR: usize;
    /// Machine epsilon of this type, widened to f64 — the unit used by
    /// the ABFT residual tolerance.
    const EPS64: f64;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    /// Fused (or contracted) multiply-add `self * b + c`.
    fn mul_add(self, b: Self, c: Self) -> Self;
    fn abs(self) -> Self;
    /// Flip one bit of the IEEE-754 representation (`bit` wraps to the
    /// element width). SDC injection and drill helper.
    fn flip_bit(self, bit: u32) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    // 8×8 f32 accumulator tile: 8 YMM registers on AVX2, 4 ZMM on AVX-512.
    const MR: usize = 8;
    const NR: usize = 8;
    const EPS64: f64 = f32::EPSILON as f64;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        // `mul_add` maps to an FMA instruction under target-cpu=native.
        f32::mul_add(self, b, c)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn flip_bit(self, bit: u32) -> Self {
        f32::from_bits(self.to_bits() ^ (1u32 << (bit % 32)))
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    // 4×8 f64 tile: 8 YMM accumulators, leaving registers for the panels.
    const MR: usize = 4;
    const NR: usize = 8;
    const EPS64: f64 = f64::EPSILON;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f64::mul_add(self, b, c)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn flip_bit(self, bit: u32) -> Self {
        f64::from_bits(self.to_bits() ^ (1u64 << (bit % 64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check<T: Scalar>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE.mul_add(T::ONE, T::ONE).to_f64(), 2.0);
        assert_eq!(T::from_f64(-1.5).abs().to_f64(), 1.5);
        assert!(T::MR > 0 && T::NR > 0);
        assert!(T::EPS64 > 0.0);
        // Flipping the sign bit negates; double flip restores bitwise.
        let v = T::from_f64(3.25);
        let neg = v.flip_bit(if T::EPS64 == f64::EPSILON { 63 } else { 31 });
        assert_eq!(neg.to_f64(), -3.25);
        assert_eq!(
            neg.flip_bit(if T::EPS64 == f64::EPSILON { 63 } else { 31 }),
            v
        );
    }

    #[test]
    fn f32_contract() {
        check::<f32>();
    }

    #[test]
    fn f64_contract() {
        check::<f64>();
    }
}
