//! Numerical-health sentinel: cheap runtime validation of APA products.
//!
//! APA algorithms trade accuracy for rank, and the trade can silently go
//! wrong — a mis-tuned λ, one recursive step too many, or a corrupted
//! buffer turns the predicted 2^(−dσ/(σ+sφ)) error (§2.3) into garbage
//! that flows straight into training. The sentinel checks every product
//! against two detectors, both O(n²) against the O(n³) multiply:
//!
//! * a **Freivalds-style randomized residual probe**: with a random ±1
//!   vector `x`, compare `C·x` against `A·(B·x)` in f64 and relate the
//!   residual to the error-model budget for the active (σ, φ, λ, s).
//!   Sampled at a configurable rate ([`SentinelConfig::probe_every`]).
//! * a **non-finite scan** of the output, fused into the probe's `C·x`
//!   pass (the scan shares the single traversal of `C`); on calls where
//!   the probe is skipped, a standalone scan still runs, so NaN/Inf can
//!   never slip through unobserved.
//!
//! All probe arithmetic accumulates in f64, so the check itself never
//! contributes to the error it is measuring. Scratch vectors live in a
//! reusable [`ProbeScratch`] arena — warm checks allocate nothing,
//! preserving the engine's zero-allocation steady state.
//!
//! The sentinel only *detects*; [`crate::fallback`] decides what to do
//! about a violation.

use apa_core::error_model;
use apa_gemm::{MatRef, Scalar};

/// The ABFT checksum tier of the sentinel: Huang–Abraham row/column
/// checksums verified inside **every** gemm leaf of every rung execution
/// (see [`apa_gemm::abft`]). Unlike the sampled Freivalds probe this
/// tier, when enabled, is always on: it detects silent data corruption
/// at the `MC×NR` tile that took the hit and repairs it in place with a
/// scalar-tier recompute (bitwise identical by the cross-tier kernel
/// contract). The degradation ladder only hears about it —
/// [`crate::fallback::GuardedApaMatmul`] demotes the rung — when a
/// repair fails its re-verification or a shape keeps re-offending.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AbftMode {
    /// Gemm leaves run unchecked; the Freivalds probe and the non-finite
    /// scans are the only sentinels.
    Off,
    /// Checksums verified on every gemm leaf of every guarded call.
    On {
        /// Multiplier on the leaf residual envelope
        /// `ε·√(kc + mc|nc)·magnitude` (see [`apa_gemm::DEFAULT_SLACK`]).
        /// The leaves are *exact* gemms — the APA framework's λ-scaled
        /// approximation error lives in the operand/output combinations
        /// *between* leaves, and the magnitude normalization absorbs the
        /// `1/λ^d` coefficient scaling — so this budget is pure rounding
        /// growth, independent of the rung's (σ, φ, λ, steps).
        slack: f64,
        /// Escalate to rung demotion after this many consecutive
        /// corruption-detecting calls on one shape, even when every
        /// flagged region repaired clean (a lane that keeps taking hits
        /// is hardware-suspect). `0` disables streak escalation; a call
        /// that ends with an *unrepaired* region always escalates.
        escalate_after: u32,
    },
}

impl Default for AbftMode {
    fn default() -> Self {
        AbftMode::On {
            slack: apa_gemm::DEFAULT_SLACK,
            escalate_after: 3,
        }
    }
}

/// Tunable knobs of the sentinel.
#[derive(Clone, Copy, Debug)]
pub struct SentinelConfig {
    /// Run the Freivalds residual probe on every Nth call per shape
    /// (1 = every call, 0 = never; the non-finite scan always runs).
    pub probe_every: u64,
    /// Multiplier on the model's predicted error to form the violation
    /// budget: the probe measures one random projection of the error, so
    /// headroom is needed to avoid false positives on healthy calls.
    pub slack: f64,
    /// Floor on the budget — keeps exact rules (model error = 2^−23) from
    /// flagging ordinary f32 roundoff accumulated over large inner dims.
    pub min_budget: f64,
    /// Seed mixed into the per-call probe vector derivation, so runs are
    /// deterministic yet successive probes use fresh random projections.
    pub seed: u64,
    /// The ABFT checksum tier below the probe (on by default).
    pub abft: AbftMode,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            probe_every: 1,
            slack: 64.0,
            min_budget: 1e-4,
            seed: 0x5EED_CAFE_F00D_D00D,
            abft: AbftMode::default(),
        }
    }
}

impl SentinelConfig {
    /// Violation budget for an algorithm with validation order `sigma`
    /// (None/0 = exact rule), roundoff parameter `phi`, at `steps`
    /// recursion levels: `slack`× the §2.3 model bound, floored at
    /// `min_budget`. Single-precision `d` — the NN stack the sentinel
    /// guards is f32 end to end.
    pub fn budget(&self, sigma: Option<u32>, phi: u32, steps: u32) -> f64 {
        let model = match sigma {
            Some(s) if s > 0 => {
                error_model::error_bound(s, phi, error_model::D_SINGLE, steps.max(1))
            }
            _ => error_model::error_bound(0, 0, error_model::D_SINGLE, 1),
        };
        (self.slack * model).max(self.min_budget)
    }
}

/// Outcome of one sentinel check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Output finite, residual within budget (or probe skipped).
    Healthy,
    /// The output contains NaN or ±Inf entries.
    NonFinite { count: usize },
    /// The Freivalds residual exceeded the error-model budget.
    ResidualExceeded { observed: f64, budget: f64 },
}

impl Verdict {
    pub fn is_healthy(&self) -> bool {
        matches!(self, Verdict::Healthy)
    }
}

/// Reusable probe scratch: the four O(n) vectors a Freivalds check needs
/// (`x`, `B·x`, `A·(B·x)`, `C·x`), kept in f64 whatever the operand type.
/// Grows to the high-water mark of the shapes it has seen and is then
/// allocation-free.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    x: Vec<f64>,
    bx: Vec<f64>,
    abx: Vec<f64>,
    cx: Vec<f64>,
}

impl ProbeScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the scratch to fit an `m × k · k × n` probe up front, so the
    /// first sampled Freivalds check on a pre-warmed shape allocates
    /// nothing (see [`crate::GuardedApaMatmul::warm`]).
    pub fn reserve(&mut self, m: usize, k: usize, n: usize) {
        self.ensure(m, k, n);
    }

    fn ensure(&mut self, m: usize, k: usize, n: usize) {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
        }
        if self.bx.len() < k {
            self.bx.resize(k, 0.0);
        }
        if self.abx.len() < m {
            self.abx.resize(m, 0.0);
        }
        if self.cx.len() < m {
            self.cx.resize(m, 0.0);
        }
    }

    /// Bytes currently held by the scratch vectors.
    pub fn footprint_bytes(&self) -> usize {
        (self.x.len() + self.bx.len() + self.abx.len() + self.cx.len()) * std::mem::size_of::<f64>()
    }
}

/// splitmix64 — the same tiny deterministic generator the rest of the
/// repo uses for reproducible probes.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Count the non-finite entries of `c` (the standalone scan used on calls
/// where the Freivalds probe is not sampled).
pub fn scan_nonfinite<T: Scalar>(c: MatRef<'_, T>) -> usize {
    let mut count = 0usize;
    for i in 0..c.rows() {
        for &v in c.row(i) {
            if !v.to_f64().is_finite() {
                count += 1;
            }
        }
    }
    count
}

/// Freivalds-style residual probe with a fused non-finite scan.
///
/// Draws a deterministic ±1 vector `x` from `seed`, forms `C·x` (scanning
/// `C` for NaN/Inf in the same pass), then `A·(B·x)`, and compares
/// `‖C·x − A·(B·x)‖₂ / ‖A·(B·x)‖₂` against `budget`. All accumulation is
/// f64. A non-finite anywhere in the pipeline (including poisoned *inputs*,
/// which make the reference projection meaningless) reports unhealthy.
pub fn check_product<T: Scalar>(
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatRef<'_, T>,
    budget: f64,
    seed: u64,
    scratch: &mut ProbeScratch,
) -> Verdict {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(k, b.rows());
    debug_assert_eq!((m, n), (c.rows(), c.cols()));
    scratch.ensure(m, k, n);

    let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
    for xi in &mut scratch.x[..n] {
        *xi = if splitmix(&mut state) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
    }

    // C·x, with the non-finite scan fused into the same pass over C.
    let mut nonfinite = 0usize;
    for i in 0..m {
        let mut acc = 0.0f64;
        for (j, &v) in c.row(i).iter().enumerate() {
            let v = v.to_f64();
            if !v.is_finite() {
                nonfinite += 1;
            }
            acc += v * scratch.x[j];
        }
        scratch.cx[i] = acc;
    }
    if nonfinite > 0 {
        return Verdict::NonFinite { count: nonfinite };
    }

    // B·x, then A·(B·x) — the f64 reference projection.
    for i in 0..k {
        let mut acc = 0.0f64;
        for (j, &v) in b.row(i).iter().enumerate() {
            acc += v.to_f64() * scratch.x[j];
        }
        scratch.bx[i] = acc;
    }
    for i in 0..m {
        let mut acc = 0.0f64;
        for (j, &v) in a.row(i).iter().enumerate() {
            acc += v.to_f64() * scratch.bx[j];
        }
        scratch.abx[i] = acc;
    }

    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..m {
        let d = scratch.cx[i] - scratch.abx[i];
        num += d * d;
        den += scratch.abx[i] * scratch.abx[i];
    }
    let observed = (num / den.max(f64::MIN_POSITIVE)).sqrt();
    // Poisoned inputs yield a NaN residual: `observed > budget` would be
    // false, so test the healthy condition and default to violation.
    if observed.is_finite() && observed <= budget {
        Verdict::Healthy
    } else {
        Verdict::ResidualExceeded { observed, budget }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apa_gemm::{matmul_naive, Mat};

    fn probe_mat(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
        })
    }

    #[test]
    fn exact_product_is_healthy() {
        let a = probe_mat(40, 30, 1);
        let b = probe_mat(30, 35, 2);
        let c = matmul_naive(a.as_ref(), b.as_ref());
        let mut scratch = ProbeScratch::new();
        let v = check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-4, 7, &mut scratch);
        assert_eq!(v, Verdict::Healthy);
    }

    #[test]
    fn corrupted_block_is_flagged() {
        let a = probe_mat(40, 30, 3);
        let b = probe_mat(30, 35, 4);
        let mut c = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..4 {
            for j in 0..4 {
                c.set(i, j, c.at(i, j) * 1e6);
            }
        }
        let mut scratch = ProbeScratch::new();
        match check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-3, 7, &mut scratch) {
            Verdict::ResidualExceeded { observed, budget } => {
                assert!(observed > budget, "observed {observed} budget {budget}")
            }
            v => panic!("expected residual violation, got {v:?}"),
        }
    }

    #[test]
    fn nan_in_output_is_caught_by_fused_scan() {
        let a = probe_mat(20, 20, 5);
        let b = probe_mat(20, 20, 6);
        let mut c = matmul_naive(a.as_ref(), b.as_ref());
        c.set(7, 9, f32::NAN);
        c.set(0, 0, f32::INFINITY);
        let mut scratch = ProbeScratch::new();
        let v = check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-3, 7, &mut scratch);
        assert_eq!(v, Verdict::NonFinite { count: 2 });
        assert_eq!(scan_nonfinite(c.as_ref()), 2);
    }

    #[test]
    fn poisoned_inputs_report_unhealthy() {
        let mut a = probe_mat(16, 16, 8);
        a.set(3, 3, f32::NAN);
        let b = probe_mat(16, 16, 9);
        let c = Mat::<f32>::zeros(16, 16); // finite output, garbage inputs
        let mut scratch = ProbeScratch::new();
        let v = check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-3, 7, &mut scratch);
        assert!(!v.is_healthy(), "NaN inputs must not pass: {v:?}");
    }

    #[test]
    fn probe_is_deterministic_and_allocation_free_when_warm() {
        let a = probe_mat(24, 18, 10);
        let b = probe_mat(18, 21, 11);
        let c = matmul_naive(a.as_ref(), b.as_ref());
        let mut scratch = ProbeScratch::new();
        let v1 = check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-4, 42, &mut scratch);
        let bytes = scratch.footprint_bytes();
        let v2 = check_product(a.as_ref(), b.as_ref(), c.as_ref(), 1e-4, 42, &mut scratch);
        assert_eq!(v1, v2);
        assert_eq!(
            scratch.footprint_bytes(),
            bytes,
            "warm probe must not grow scratch"
        );
    }

    #[test]
    fn budget_tracks_the_error_model() {
        let cfg = SentinelConfig::default();
        // bini322: σ = 1, φ = 1 → model 2^-11.5 ≈ 3.5e-4, × slack 64.
        let apa = cfg.budget(Some(1), 1, 1);
        assert!((apa - 64.0 * (2.0_f64).powf(-11.5)).abs() < 1e-9);
        // Exact rules bottom out at the floor.
        assert_eq!(cfg.budget(None, 0, 1), cfg.min_budget);
        assert_eq!(cfg.budget(Some(0), 0, 1), cfg.min_budget);
        // More steps → looser budget.
        assert!(cfg.budget(Some(1), 1, 2) > apa);
    }
}
