//! Zero-allocation invariant for the workspace-reuse engine.
//!
//! Installs [`apa_gemm::CountingAlloc`] as the global allocator, warms the
//! [`ApaMatmul`] workspace cache and the thread-local gemm pack cache with a
//! couple of calls, then asserts that further multiplications on the same
//! shapes perform **zero** heap allocations — the tentpole contract of the
//! workspace subsystem.
//!
//! Runs everything in `Strategy::Seq` so no rayon pool machinery is
//! involved; the parallel strategies share the exact same buffer tree and
//! are covered bitwise elsewhere.

use apa_core::catalog;
use apa_gemm::{thread_allocation_counters, Mat};
use apa_matmul::{ApaMatmul, GuardedApaMatmul, PeelMode, SentinelConfig, Strategy};

#[global_allocator]
static ALLOC: apa_gemm::CountingAlloc = apa_gemm::CountingAlloc;

fn probe(rows: usize, cols: usize, seed: u64) -> Mat<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0) as f32
    })
}

/// Warm up `mm` on (a, b, c), then assert the next `rounds` calls allocate
/// nothing at all.
fn assert_steady_state_is_allocation_free(
    mm: &ApaMatmul,
    a: &Mat<f32>,
    b: &Mat<f32>,
    c: &mut Mat<f32>,
    what: &str,
) {
    // Two warmup calls: the first builds the cached workspace, the second
    // settles the thread-local gemm pack buffers at their high-water mark.
    mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());

    let before = thread_allocation_counters();
    let rounds = 5;
    for _ in 0..rounds {
        mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    }
    let delta = thread_allocation_counters().since(before);
    assert_eq!(
        delta.calls, 0,
        "{what}: {} allocations ({} bytes) across {rounds} warm calls",
        delta.calls, delta.bytes
    );
}

#[test]
fn warm_divisible_multiplication_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("fast444").unwrap())
        .steps(2)
        .strategy(Strategy::Seq)
        .threads(1);
    let a = probe(64, 64, 1);
    let b = probe(64, 64, 2);
    let mut c = Mat::zeros(64, 64);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "divisible fast444");
}

#[test]
fn warm_dynamic_peeling_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1)
        .peel_mode(PeelMode::Dynamic);
    let a = probe(67, 45, 3);
    let b = probe(45, 51, 4);
    let mut c = Mat::zeros(67, 51);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "dynamic-peel bini322");
}

#[test]
fn warm_pad_mode_does_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("strassen").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1)
        .peel_mode(PeelMode::Pad);
    let a = probe(33, 29, 5);
    let b = probe(29, 31, 6);
    let mut c = Mat::zeros(33, 31);
    assert_steady_state_is_allocation_free(&mm, &a, &b, &mut c, "pad-mode strassen");
}

#[test]
fn explicit_workspace_calls_do_not_allocate() {
    let mm = ApaMatmul::new(catalog::by_name("fast442").unwrap())
        .steps(1)
        .strategy(Strategy::Seq)
        .threads(1);
    let a = probe(36, 24, 7);
    let b = probe(24, 30, 8);
    let mut c = Mat::zeros(36, 30);
    let mut ws = mm.make_workspace::<f32>(36, 24, 30);
    // Warm the thread-local pack buffers.
    mm.multiply_into_with(a.as_ref(), b.as_ref(), c.as_mut(), &mut ws);

    let before = thread_allocation_counters();
    for _ in 0..5 {
        mm.multiply_into_with(a.as_ref(), b.as_ref(), c.as_mut(), &mut ws);
    }
    let delta = thread_allocation_counters().since(before);
    assert_eq!(delta.calls, 0, "explicit workspace path allocated");
    assert_eq!(ws.runs(), 6);
}

/// Mirrors the (private) `WS_CACHE_CAP` in `apamm.rs` — the churn test
/// below fails loudly if the two drift apart in the unbounded direction.
const CACHE_CAP: usize = 8;

#[test]
fn shape_churn_keeps_workspace_cache_bounded() {
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1);
    // Many more distinct shapes than the cache holds — every one past the
    // cap must evict the oldest entry instead of growing the cache.
    for i in 0..3 * CACHE_CAP {
        let (m, k, n) = (10 + i, 8 + i, 12 + i);
        let a = probe(m, k, (2 * i) as u64 + 1);
        let b = probe(k, n, (2 * i) as u64 + 2);
        let mut c = Mat::zeros(m, n);
        mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        assert!(
            mm.cached_workspaces() <= CACHE_CAP,
            "cache grew to {} entries after {} distinct shapes",
            mm.cached_workspaces(),
            i + 1
        );
    }
    assert_eq!(mm.cached_workspaces(), CACHE_CAP);
}

#[test]
fn evicted_then_rebuilt_workspace_is_bit_identical_to_uncached() {
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1);
    let a = probe(37, 29, 21);
    let b = probe(29, 33, 22);
    let mut c_first = Mat::zeros(37, 33);
    mm.multiply_into(a.as_ref(), b.as_ref(), c_first.as_mut());

    // Churn the cache until the (37, 29, 33) workspace has been evicted.
    for i in 0..2 * CACHE_CAP {
        let (m, k, n) = (11 + i, 9 + i, 13 + i);
        let xa = probe(m, k, (2 * i) as u64 + 51);
        let xb = probe(k, n, (2 * i) as u64 + 52);
        let mut xc = Mat::zeros(m, n);
        mm.multiply_into(xa.as_ref(), xb.as_ref(), xc.as_mut());
    }

    // Rebuilt-from-scratch cached call and the uncached path must both
    // reproduce the original product bit for bit.
    let mut c_rebuilt = Mat::zeros(37, 33);
    mm.multiply_into(a.as_ref(), b.as_ref(), c_rebuilt.as_mut());
    let mut c_uncached = Mat::zeros(37, 33);
    mm.multiply_into_uncached(a.as_ref(), b.as_ref(), c_uncached.as_mut());
    for i in 0..37 {
        for j in 0..33 {
            assert_eq!(c_first.at(i, j).to_bits(), c_rebuilt.at(i, j).to_bits());
            assert_eq!(c_first.at(i, j).to_bits(), c_uncached.at(i, j).to_bits());
        }
    }
}

#[test]
fn warmed_shapes_are_allocation_free_from_the_first_call() {
    // `warm` pre-builds the workspaces and settles the pack buffers, so
    // the first *real* multiply on every declared shape is already
    // allocation-free — the contract the apa-serve lane workers rely on.
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1);
    let shapes = [(16, 24, 30), (8, 24, 30), (16, 30, 10)];
    mm.warm::<f32>(&shapes);

    let mut operands: Vec<(Mat<f32>, Mat<f32>, Mat<f32>)> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, k, n))| {
            (
                probe(m, k, 2 * i as u64 + 71),
                probe(k, n, 2 * i as u64 + 72),
                Mat::zeros(m, n),
            )
        })
        .collect();

    let before = thread_allocation_counters();
    for (a, b, c) in &mut operands {
        mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    }
    let delta = thread_allocation_counters().since(before);
    assert_eq!(
        delta.calls, 0,
        "first calls on warmed shapes allocated: {} allocations ({} bytes)",
        delta.calls, delta.bytes
    );
}

#[test]
fn warming_many_shapes_grows_the_cache_instead_of_self_evicting() {
    let mm = ApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1);
    // More shapes than the default cap: `warm` must raise the bound so
    // the declared set never evicts itself.
    let shapes: Vec<(usize, usize, usize)> = (0..CACHE_CAP + 4)
        .map(|i| (10 + i, 8 + i, 12 + i))
        .collect();
    mm.warm::<f32>(&shapes);
    assert_eq!(mm.cached_workspaces(), CACHE_CAP + 4);

    // Every warmed shape multiplies with zero engine allocations.
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let a = probe(m, k, 2 * i as u64 + 91);
        let b = probe(k, n, 2 * i as u64 + 92);
        let mut c = Mat::zeros(m, n);
        let before = thread_allocation_counters();
        mm.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        assert_eq!(
            thread_allocation_counters().since(before).calls,
            0,
            "warmed shape ({m}, {k}, {n}) allocated on its first real call"
        );
    }
}

#[test]
fn warmed_guarded_shapes_are_allocation_free_from_the_first_call() {
    // The guarded variant also pre-sizes the probe scratch, the per-rung
    // stats and the per-shape ladder state, so the first sentinel-guarded
    // call — probe included — allocates nothing.
    let guard = GuardedApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1)
        .sentinel(SentinelConfig {
            probe_every: 1,
            ..SentinelConfig::default()
        });
    let shapes = [(32, 28, 34), (16, 28, 34)];
    guard.warm::<f32>(&shapes);

    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let a = probe(m, k, 2 * i as u64 + 41);
        let b = probe(k, n, 2 * i as u64 + 42);
        let mut c = Mat::zeros(m, n);
        let before = thread_allocation_counters();
        guard.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
        assert_eq!(
            thread_allocation_counters().since(before).calls,
            0,
            "warmed guarded shape ({m}, {k}, {n}) allocated on its first real call"
        );
    }
    let health = guard.health();
    assert_eq!(
        health.calls, 2,
        "warm-up multiplies must not count as guarded calls"
    );
}

#[test]
fn warm_guarded_multiplication_does_not_allocate() {
    // The sentinel's probe scratch is grow-only and the ladder is built
    // once, so a warm guarded multiply — probe included on every call —
    // must preserve the engine's zero-allocation invariant.
    let guard = GuardedApaMatmul::new(catalog::by_name("bini322").unwrap())
        .strategy(Strategy::Seq)
        .threads(1)
        .sentinel(SentinelConfig {
            probe_every: 1,
            ..SentinelConfig::default()
        });
    let a = probe(40, 28, 31);
    let b = probe(28, 34, 32);
    let mut c = Mat::zeros(40, 34);
    // Warm: ladder + workspace on the first call, gemm pack buffers and
    // probe scratch at their high-water mark by the second.
    guard.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    guard.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());

    let before = thread_allocation_counters();
    let rounds = 5;
    for _ in 0..rounds {
        guard.multiply_into(a.as_ref(), b.as_ref(), c.as_mut());
    }
    let delta = thread_allocation_counters().since(before);
    assert_eq!(
        delta.calls, 0,
        "guarded path: {} allocations ({} bytes) across {rounds} warm calls",
        delta.calls, delta.bytes
    );
    assert_eq!(guard.health().calls, 7);
}
