//! # apa-nn
//!
//! A from-scratch dense-layer neural-network training substrate with
//! pluggable matrix-multiplication backends — the reproduction of the
//! paper's TensorFlow-with-custom-operators setup (§4–5):
//!
//! * [`backend`] — the [`MatmulBackend`](backend::MatmulBackend) trait plus
//!   classical and APA implementations;
//! * [`layer`] / [`loss`] / [`net`] — dense layers, softmax cross-entropy
//!   and the batched-SGD [`Mlp`](net::Mlp);
//! * [`data`] — batching/shuffling, the IDX (real MNIST) loader and the
//!   synthetic-MNIST generator (documented substitution, DESIGN.md §2);
//! * [`mnist_mlp`] — the paper's accuracy (784-300-300-10) and ParaDnn
//!   performance networks;
//! * [`vgg`] — the VGG-19 fully connected head, timed per batch;
//! * [`conv`] / [`cnn`] — convolution as matmul (im2col/col2im) and a
//!   trainable CNN, so APA kernels reach convolutional layers too (§1);
//! * [`optimizer`] — momentum SGD + weight decay;
//! * [`checkpoint`] — versioned, checksummed, atomically written training
//!   checkpoints and the crash-safe [`CheckpointedTrainer`] resume loop;
//! * [`tensor`] — small dense helpers (transpose, bias, reductions).

pub mod backend;
pub mod checkpoint;
pub mod cnn;
pub mod conv;
pub mod data;
pub mod layer;
pub mod loss;
pub mod mnist_mlp;
pub mod net;
pub mod optimizer;
pub mod tensor;
pub mod vgg;

pub use backend::{
    apa, classical, guarded, planned, planned_guarded, ApaBackend, Backend, ClassicalBackend,
    GuardedBackend, MatmulBackend, PlannedBackend,
};
pub use checkpoint::{
    CheckpointError, CheckpointManager, CheckpointedTrainer, EpochProgress, LayerState, TrainState,
    TrainerConfig,
};
pub use cnn::SimpleCnn;
pub use conv::{col2im, conv2d_direct, im2col, Conv2d, Conv2dConfig, ConvShape};
pub use data::{
    load_mnist_idx, synthetic_mnist, synthetic_mnist_split, try_load_mnist_idx, DataError, Dataset,
    IdxKind,
};
pub use layer::{Activation, Dense};
pub use loss::{accuracy, softmax_cross_entropy, softmax_rows};
pub use mnist_mlp::{accuracy_network, performance_network, ACCURACY_BATCH};
pub use net::{EpochStats, InferenceScratch, Mlp};
pub use optimizer::{Optimizer, SgdConfig};
pub use vgg::{Vgg19Fc, VGG_FC_WIDTHS};
