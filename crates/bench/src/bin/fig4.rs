//! Figure 4 — the MLP network structure (descriptive figure; rendered as
//! ASCII from the actual network objects so it cannot drift from the code).
//!
//! Usage: `cargo run --release -p apa-bench --bin fig4`

use apa_bench::banner;
use apa_core::catalog;
use apa_nn::{accuracy_network, apa, performance_network};

fn render(net: &apa_nn::Mlp, title: &str) {
    println!("{title}");
    let widths = net.widths();
    let mut line = format!("  input[{}]", widths[0]);
    for (i, layer) in net.layers.iter().enumerate() {
        let act = if i + 1 == net.layers.len() {
            "softmax"
        } else {
            "relu"
        };
        line.push_str(&format!(
            " --{}-> {}[{}]",
            layer.backend_name(),
            act,
            layer.outputs()
        ));
    }
    println!("{line}\n");
}

fn main() {
    banner(
        "Figure 4: Multi-Layer Perceptron structures used in the experiments",
        &["rendered from the live network objects (backend per layer shown on the arrows)"],
    );

    render(
        &accuracy_network(apa(catalog::bini322(), 1), 1, 0),
        "accuracy network (§4.2): 784-300-300-10, batch 300, APA on the middle layer",
    );
    render(
        &performance_network(512, apa(catalog::fast444(), 1), 1, 0),
        "performance network (§4.3, ParaDnn): 784-H-H-H-H-10 with H = batch = 512…8192",
    );
    println!("VGG-19 head (§5): 25088 -> 4096 -> 4096 -> 1000, all three layers swapped");
    println!("between classical and <4,4,2> (see --bin fig7).");
}
