//! Multithreaded GEMM: 2D cache-aware decomposition over a shared pool.
//!
//! The output is tiled into the (MC × NC) grid of the tuned blocking and
//! the cells are drained through an atomic work-queue (round-robin start,
//! steal from the most-loaded lane), so ragged shapes never idle trailing
//! workers. Within one call the packed B panels are shared: for every
//! `(jc, pc)` block the *first* worker to need the panel claims it with a
//! CAS, packs it once into a per-call arena, and publishes it; every other
//! worker reuses the published bytes. A packing is worker-local (its MC×KC
//! slivers live in L2 of the consuming core). This is the BLIS-style
//! cooperative decomposition — the old row-stripe driver re-packed the
//! whole of B once *per worker*, which capped scaling at the packing
//! bandwidth.
//!
//! **Bitwise contract.** Each cell is exactly one (ic, jc) block pair of
//! the single-threaded driver's loop nest and runs the same
//! `gemm_st_core` over the full depth `k` in the same pc order, with the
//! same `β` handling (caller's β on the first rank-k update, 1 after) and
//! the same packed layouts (a shared panel is packed by the same
//! `pack_b` sweep from the same addresses a local pack would read).
//! Cells write disjoint output blocks, so the result is bitwise equal to
//! the single-threaded run regardless of which worker computes which cell
//! and in which order — the property the `parallel2d` proptests pin down.
//!
//! First-touch NUMA placement falls out of the claim protocol: arena
//! buffers start empty and are grown/written by the claiming worker, so
//! with pinned workers (see [`crate::pool`]) the pages land on the
//! consuming core's node without any explicit placement call.

use crate::abft;
use crate::blocked::{
    gemm_combined_core, gemm_combined_st, gemm_st, gemm_st_core, with_cached_scratch,
    with_subviews, BPanelSource, BlockSizes, PackedPanel,
};
use crate::blocktune::block_sizes;
use crate::kernel::kernel_spec;
use crate::matrix::{Mat, MatMut, MatRef};
use crate::pack::{pack_b, pack_b_combined, pack_b_combined_with_sums, pack_b_with_sums};
use crate::pool::{pool, Par, PoolError};
use crate::scalar::Scalar;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Process-wide counters of the cooperative-packing machinery (monotone;
/// read with [`par_stats`]). `panels_packed`/`panels_reused` measure the
/// sharing win directly: the old row-stripe driver would have packed
/// `panels_packed + panels_reused` panels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Shared B panels packed into arenas (once per `(jc, pc)` per call).
    pub panels_packed: u64,
    /// Panel fetches served from an already-published arena slot.
    pub panels_reused: u64,
    /// Cells a worker stole from another lane's chunk.
    pub cells_stolen: u64,
    /// CAS attempts on panel slots (claim traffic).
    pub claim_ops: u64,
}

static PANELS_PACKED: AtomicU64 = AtomicU64::new(0);
static PANELS_REUSED: AtomicU64 = AtomicU64::new(0);
static CELLS_STOLEN: AtomicU64 = AtomicU64::new(0);
static CLAIM_OPS: AtomicU64 = AtomicU64::new(0);
/// Arenas currently alive (diagnostics: must be 0 whenever no parallel
/// call is in flight, including after a lane panic).
static LIVE_ARENAS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Parallel-machinery operations performed *by this thread*: arena
    /// builds, slot claims, queue pops. The `Par::Seq` path must leave it
    /// untouched — the zero-atomics regression test keys off it (global
    /// counters would race with concurrent tests).
    static THREAD_PAR_OPS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn note_par_op() {
    THREAD_PAR_OPS.with(|c| c.set(c.get() + 1));
}

/// Snapshot of the process-wide cooperative-packing counters.
pub fn par_stats() -> ParStats {
    ParStats {
        panels_packed: PANELS_PACKED.load(Ordering::Relaxed),
        panels_reused: PANELS_REUSED.load(Ordering::Relaxed),
        cells_stolen: CELLS_STOLEN.load(Ordering::Relaxed),
        claim_ops: CLAIM_OPS.load(Ordering::Relaxed),
    }
}

/// Number of shared packing arenas currently alive (0 when no parallel
/// call is in flight — the lane-panic drill asserts this).
pub fn live_arenas() -> usize {
    LIVE_ARENAS.load(Ordering::SeqCst)
}

/// Parallel-machinery operations performed by the calling thread so far
/// (see `THREAD_PAR_OPS`).
pub fn thread_par_ops() -> u64 {
    THREAD_PAR_OPS.with(|c| c.get())
}

/// Either operand side of a gemm: a plain view or a fused term list.
#[derive(Clone, Copy)]
enum Side<'a, T: Scalar> {
    Plain(MatRef<'a, T>),
    Terms(&'a [(T, MatRef<'a, T>)]),
}

impl<'a, T: Scalar> Side<'a, T> {
    fn dims(&self) -> (usize, usize) {
        match self {
            Side::Plain(m) => (m.rows(), m.cols()),
            Side::Terms(t) => (t[0].1.rows(), t[0].1.cols()),
        }
    }
}

const SLOT_EMPTY: u8 = 0;
const SLOT_CLAIMED: u8 = 1;
const SLOT_READY: u8 = 2;
const SLOT_POISONED: u8 = 3;

/// One shared B panel: a `(jc, pc)` block packed at most once per call.
/// The state machine `EMPTY → CLAIMED → READY` (or `POISONED` if the
/// packer unwinds) handshakes all access to the `UnsafeCell` buffers:
/// exclusive while CLAIMED, immutable-shared once READY.
struct PanelSlot<T> {
    state: AtomicU8,
    buf: UnsafeCell<Vec<T>>,
    /// Fused ABFT row sums / magnitudes of the packed panel (filled only
    /// when the call runs under an ABFT session).
    sum: UnsafeCell<Vec<f64>>,
    mag: UnsafeCell<Vec<f64>>,
}

// SAFETY: the contents of the UnsafeCells are only written by the worker
// that won the EMPTY→CLAIMED CAS and only read after an Acquire load of
// READY (published with a Release store) — the state machine serializes
// every access.
unsafe impl<T: Send + Sync> Sync for PanelSlot<T> {}

impl<T> PanelSlot<T> {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(SLOT_EMPTY),
            buf: UnsafeCell::new(Vec::new()),
            sum: UnsafeCell::new(Vec::new()),
            mag: UnsafeCell::new(Vec::new()),
        }
    }
}

/// Per-call arena of shared B panels: `jcb × slabs` slots, slot
/// `jc_idx · slabs + slab` holding the packed `(jc, pc)` block. Dropped
/// (and with it every packed buffer) when the driving call returns — on
/// success *and* on a lane panic, which the drill test pins down. The
/// embedded counters are per-call (race-free to assert on); the driver
/// folds them into the process-wide totals when it returns.
struct PanelArena<T> {
    slots: Vec<PanelSlot<T>>,
    slabs: usize,
    packed: AtomicU64,
    reused: AtomicU64,
    claims: AtomicU64,
}

impl<T> PanelArena<T> {
    fn new(jcb: usize, slabs: usize) -> Self {
        note_par_op();
        LIVE_ARENAS.fetch_add(1, Ordering::SeqCst);
        let mut slots = Vec::with_capacity(jcb * slabs);
        slots.resize_with(jcb * slabs, PanelSlot::new);
        Self {
            slots,
            slabs,
            packed: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            claims: AtomicU64::new(0),
        }
    }
}

impl<T> Drop for PanelArena<T> {
    fn drop(&mut self) {
        LIVE_ARENAS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Sets the slot POISONED if the packing sweep unwinds, so sibling
/// workers spinning on CLAIMED fail fast (with a typed panic that drains
/// through the pool's barrier) instead of spinning forever.
struct PoisonGuard<'a>(&'a AtomicU8);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        self.0.store(SLOT_POISONED, Ordering::Release);
    }
}

/// The [`BPanelSource`] a worker hands to `gemm_st_core` for one cell:
/// resolves KC-slab indices to shared arena slots of the cell's jc block,
/// claiming + packing on first demand.
struct SharedPanels<'a, T: Scalar> {
    arena: &'a PanelArena<T>,
    b: Side<'a, T>,
    /// jc block index and its column window in the full operand.
    jc_idx: usize,
    jc0: usize,
    cols: usize,
    kc: usize,
    k: usize,
    nr: usize,
    /// Pack fused ABFT row sums alongside the panel.
    checked: bool,
}

impl<T: Scalar> SharedPanels<'_, T> {
    /// Pack slab `slab` into `slot` (exclusive access granted by the
    /// EMPTY→CLAIMED CAS), then publish READY.
    fn pack_into(&self, slot: &PanelSlot<T>, slab: usize) {
        let pc = slab * self.kc;
        let kc = self.kc.min(self.k - pc);
        let guard = PoisonGuard(&slot.state);
        // SAFETY: this worker won the CAS; no other thread touches the
        // cells until the READY store below.
        unsafe {
            let buf = &mut *slot.buf.get();
            let (sum, mag) = (&mut *slot.sum.get(), &mut *slot.mag.get());
            match self.b {
                Side::Plain(b) => {
                    let sub = b.subview(pc, self.jc0, kc, self.cols);
                    if self.checked {
                        pack_b_with_sums(sub, buf, self.nr, sum, mag);
                    } else {
                        pack_b(sub, buf, self.nr);
                    }
                }
                Side::Terms(terms) => {
                    with_subviews(terms, pc, self.jc0, kc, self.cols, |sub| {
                        if self.checked {
                            pack_b_combined_with_sums(sub, buf, self.nr, sum, mag);
                        } else {
                            pack_b_combined(sub, buf, self.nr);
                        }
                    });
                }
            }
            // The single pack site of the call: injected pack-B flips
            // land here (and are then seen by every consumer, exactly as
            // a single-threaded run would propagate them).
            #[cfg(feature = "fault-inject")]
            crate::blocked::flip_pack_b(buf, self.cols, kc, self.nr);
        }
        self.arena.packed.fetch_add(1, Ordering::Relaxed);
        std::mem::forget(guard);
        slot.state.store(SLOT_READY, Ordering::Release);
    }
}

impl<T: Scalar> BPanelSource<T> for SharedPanels<'_, T> {
    fn panel(&self, slab: usize) -> PackedPanel<'_, T> {
        let slot = &self.arena.slots[self.jc_idx * self.arena.slabs + slab];
        let mut packed_here = false;
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                SLOT_READY => break,
                SLOT_EMPTY => {
                    note_par_op();
                    self.arena.claims.fetch_add(1, Ordering::Relaxed);
                    if slot
                        .state
                        .compare_exchange(
                            SLOT_EMPTY,
                            SLOT_CLAIMED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        self.pack_into(slot, slab);
                        packed_here = true;
                        break;
                    }
                }
                SLOT_CLAIMED => {
                    // Another worker is packing; on oversubscribed or
                    // single-core machines it may be descheduled, so
                    // yield periodically instead of pure spinning.
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                _ => panic!("shared B panel poisoned by a packing-lane panic"),
            }
        }
        if !packed_here {
            self.arena.reused.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: READY was published with Release by the packer and
        // loaded with Acquire above; the slot is never written again.
        unsafe {
            let buf: &[T] = &*slot.buf.get();
            let sums = if self.checked {
                Some(((*slot.sum.get()).as_slice(), (*slot.mag.get()).as_slice()))
            } else {
                None
            };
            (buf, sums)
        }
    }
}

/// Atomic cell queue: the cell list (jc-major, so one lane's contiguous
/// chunk shares jc panels) is split into one balanced contiguous chunk per
/// worker, each encoded `head << 32 | tail` in a single atomic. A worker
/// pops from its own chunk's front; when dry it steals one cell from the
/// *back* of the most-loaded victim (back-stealing keeps the victim's
/// panel locality intact longest).
struct CellQueue {
    chunks: Vec<AtomicU64>,
    steals: AtomicU64,
}

impl CellQueue {
    fn new(cells: usize, workers: usize) -> Self {
        let chunks = (0..workers)
            .map(|w| {
                let lo = (cells * w / workers) as u64;
                let hi = (cells * (w + 1) / workers) as u64;
                AtomicU64::new(lo << 32 | hi)
            })
            .collect();
        Self {
            chunks,
            steals: AtomicU64::new(0),
        }
    }

    fn pop(&self, w: usize) -> Option<usize> {
        note_par_op();
        let me = &self.chunks[w];
        loop {
            let cur = me.load(Ordering::Acquire);
            let (h, t) = ((cur >> 32) as u32, cur as u32);
            if h >= t {
                break;
            }
            let next = (u64::from(h) + 1) << 32 | u64::from(t);
            if me
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(h as usize);
            }
        }
        loop {
            let mut best: Option<(usize, u64, u32)> = None;
            for (i, ch) in self.chunks.iter().enumerate() {
                if i == w {
                    continue;
                }
                let cur = ch.load(Ordering::Acquire);
                let (h, t) = ((cur >> 32) as u32, cur as u32);
                if t > h && best.is_none_or(|(_, _, rem)| t - h > rem) {
                    best = Some((i, cur, t - h));
                }
            }
            let (i, cur, _) = best?;
            let (h, t) = ((cur >> 32) as u32, cur as u32);
            let next = u64::from(h) << 32 | u64::from(t - 1);
            if self.chunks[i]
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((t - 1) as usize);
            }
        }
    }
}

/// Disjoint mutable cell views of the output, handed out by raw parts.
/// Disjointness holds because the queue yields every cell index exactly
/// once and cells tile `C` without overlap.
struct CellGrid<T> {
    ptr: *mut T,
    rs: usize,
}

// SAFETY: workers receive views of pairwise-disjoint cells (see above);
// the pointer itself is Send/Sync-neutral data.
unsafe impl<T: Send> Sync for CellGrid<T> {}

impl<T: Scalar> CellGrid<T> {
    /// # Safety
    /// The caller must pass each `(ic0, jc0)` cell at most once per queue
    /// drain so no two live views overlap.
    unsafe fn cell(&self, ic0: usize, jc0: usize, rows: usize, cols: usize) -> MatMut<'_, T> {
        MatMut::from_raw_parts(self.ptr.add(ic0 * self.rs + jc0), rows, cols, self.rs)
    }
}

/// Run one operand pair single-threaded with explicit blocking — the
/// ≤1-worker fast path of the 2D driver and the reference the bitwise
/// tests compare against. Touches none of the arena/queue machinery.
fn run_st_with_blocks<T: Scalar>(
    alpha: T,
    a: Side<'_, T>,
    b: Side<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    bs: BlockSizes,
) {
    let spec = kernel_spec::<T>();
    let session = abft::current();
    with_cached_scratch(|scratch| match (a, b) {
        (Side::Plain(a), Side::Plain(b)) => {
            gemm_st_core(
                &spec,
                bs,
                alpha,
                a,
                b,
                beta,
                c,
                scratch,
                session.as_deref(),
                None,
            );
        }
        (Side::Terms(at), Side::Terms(bt)) => {
            gemm_combined_core(
                &spec,
                bs,
                alpha,
                at,
                bt,
                beta,
                c,
                scratch,
                session.as_deref(),
                None,
            );
        }
        _ => unreachable!("operand sides always match"),
    });
}

/// The 2D parallel driver shared by the plain and fused entry points.
/// Returns this call's cooperative-packing stats (also folded into the
/// process totals) so tests can assert pack-once behaviour race-free.
fn gemm_2d<T: Scalar>(
    alpha: T,
    a: Side<'_, T>,
    b: Side<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
    threads: usize,
    bs: BlockSizes,
) -> Result<ParStats, PoolError> {
    let (m, k) = a.dims();
    let (bk, n) = b.dims();
    assert_eq!(k, bk, "inner dimensions must match");
    assert_eq!(m, c.rows(), "C row count mismatch");
    assert_eq!(n, c.cols(), "C column count mismatch");

    if m == 0 || n == 0 {
        return Ok(ParStats::default());
    }

    if threads <= 1 {
        // A degenerate thread budget gains nothing from claim machinery;
        // run the sequential core directly (no arena, no atomics —
        // asserted by the Seq-path regression test).
        run_st_with_blocks(alpha, a, b, beta, c, bs);
        return Ok(ParStats::default());
    }

    let icb = m.div_ceil(bs.mc);
    let jcb = n.div_ceil(bs.nc);
    let cells = icb * jcb;
    // A multi-lane request always dispatches through the pool, even when
    // the tuned blocking collapses the grid to fewer cells than lanes:
    // callers asking for threads >= 2 are buying the pool's panic
    // isolation and watchdog (ClassicalMatmul::try_multiply_into must
    // surface a lane death as a typed error on any shape), not just
    // throughput.
    let workers = threads.min(cells);

    let slabs = k.div_ceil(bs.kc);
    let arena = PanelArena::<T>::new(jcb, slabs);
    let queue = CellQueue::new(cells, workers);
    let grid = CellGrid {
        ptr: c.as_mut_ptr(),
        rs: c.row_stride(),
    };
    // One session grab for the whole call; every cell checks under it.
    let session = abft::current();
    let checked = session.is_some();

    let arena_ref = &arena;
    let queue_ref = &queue;
    let grid_ref = &grid;
    let session_ref = session.as_deref();

    let result = pool(workers).try_scope(|s| {
        for w in 0..workers {
            s.spawn(move |_| {
                let spec = kernel_spec::<T>();
                with_cached_scratch::<T, _>(|scratch| {
                    while let Some(cell) = queue_ref.pop(w) {
                        // jc-major: consecutive cells of a chunk share
                        // the jc block and therefore its shared panels.
                        let jc_idx = cell / icb;
                        let ic_idx = cell % icb;
                        let ic0 = ic_idx * bs.mc;
                        let jc0 = jc_idx * bs.nc;
                        let rows = bs.mc.min(m - ic0);
                        let cols = bs.nc.min(n - jc0);
                        let panels = SharedPanels {
                            arena: arena_ref,
                            b,
                            jc_idx,
                            jc0,
                            cols,
                            kc: bs.kc,
                            k,
                            nr: spec.nr,
                            checked,
                        };
                        // SAFETY: the queue yields each cell exactly once.
                        let c_cell = unsafe { grid_ref.cell(ic0, jc0, rows, cols) };
                        match (a, b) {
                            (Side::Plain(a), Side::Plain(b)) => {
                                gemm_st_core(
                                    &spec,
                                    bs,
                                    alpha,
                                    a.subview(ic0, 0, rows, k),
                                    b.subview(0, jc0, k, cols),
                                    beta,
                                    c_cell,
                                    scratch,
                                    session_ref,
                                    Some(&panels),
                                );
                            }
                            (Side::Terms(at), Side::Terms(bt)) => {
                                with_subviews(at, ic0, 0, rows, k, |a_sub| {
                                    with_subviews(bt, 0, jc0, k, cols, |b_sub| {
                                        gemm_combined_core(
                                            &spec,
                                            bs,
                                            alpha,
                                            a_sub,
                                            b_sub,
                                            beta,
                                            c_cell,
                                            scratch,
                                            session_ref,
                                            Some(&panels),
                                        );
                                    })
                                });
                            }
                            _ => unreachable!("operand sides always match"),
                        }
                    }
                });
            });
        }
    });

    let stats = ParStats {
        panels_packed: arena.packed.load(Ordering::Relaxed),
        panels_reused: arena.reused.load(Ordering::Relaxed),
        cells_stolen: queue.steals.load(Ordering::Relaxed),
        claim_ops: arena.claims.load(Ordering::Relaxed),
    };
    PANELS_PACKED.fetch_add(stats.panels_packed, Ordering::Relaxed);
    PANELS_REUSED.fetch_add(stats.panels_reused, Ordering::Relaxed);
    CELLS_STOLEN.fetch_add(stats.cells_stolen, Ordering::Relaxed);
    CLAIM_OPS.fetch_add(stats.claim_ops, Ordering::Relaxed);
    result.map(|_| stats)
}

/// `C ← α·A·B + β·C` with the requested parallelism. Panics if a worker
/// lane panics; [`try_gemm`] is the non-panicking variant.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    par: Par,
) {
    try_gemm(alpha, a, b, beta, c, par).unwrap_or_else(|e| panic!("apa_gemm::gemm: {e}"));
}

/// [`gemm`] surfacing a panicked worker lane as a typed
/// [`PoolError::WorkerPanicked`] instead of unwinding. On `Err` the pool
/// has already drained (no lane is left running, the shared packing arena
/// is released) and stays usable, but `C` may be partially written.
pub fn try_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
    par: Par,
) -> Result<(), PoolError> {
    match par.normalize() {
        Par::Seq => {
            gemm_st(alpha, a, b, beta, c);
            Ok(())
        }
        Par::Threads(t) => gemm_2d(
            alpha,
            Side::Plain(a),
            Side::Plain(b),
            beta,
            c,
            t,
            block_sizes::<T>(),
        )
        .map(|_| ()),
    }
}

/// Fused-operand GEMM with the requested parallelism:
/// `C ← α·(Σ cᵃᵢ·Aᵢ)·(Σ cᵇⱼ·Bⱼ) + β·C`, operand combinations formed inside
/// the pack sweep (see [`gemm_combined_st`]). Same 2D decomposition and
/// shared-panel protocol as [`gemm`] — the combined B panels are packed
/// once per `(jc, pc)` block per call, not once per worker. Panics if a
/// worker lane panics; [`try_gemm_combined`] is the non-panicking variant.
pub fn gemm_combined<T: Scalar>(
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    c: MatMut<'_, T>,
    par: Par,
) {
    try_gemm_combined(alpha, a_terms, b_terms, beta, c, par)
        .unwrap_or_else(|e| panic!("apa_gemm::gemm_combined: {e}"));
}

/// [`gemm_combined`] surfacing a panicked worker lane as a typed
/// [`PoolError::WorkerPanicked`]. Same drain/partial-write semantics as
/// [`try_gemm`].
pub fn try_gemm_combined<T: Scalar>(
    alpha: T,
    a_terms: &[(T, MatRef<'_, T>)],
    b_terms: &[(T, MatRef<'_, T>)],
    beta: T,
    c: MatMut<'_, T>,
    par: Par,
) -> Result<(), PoolError> {
    assert!(
        !a_terms.is_empty() && !b_terms.is_empty(),
        "gemm_combined needs at least one term per operand"
    );
    match par.normalize() {
        Par::Seq => {
            gemm_combined_st(alpha, a_terms, b_terms, beta, c);
            Ok(())
        }
        Par::Threads(t) => gemm_2d(
            alpha,
            Side::Terms(a_terms),
            Side::Terms(b_terms),
            beta,
            c,
            t,
            block_sizes::<T>(),
        )
        .map(|_| ()),
    }
}

/// Convenience: allocate and return `C = A · B` with given parallelism.
pub fn matmul_par<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>, par: Par) -> Mat<T> {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm(T::ONE, a, b, T::ZERO, c.as_mut(), par);
    c
}

/// Test seams: the 2D driver and its single-threaded reference with
/// *explicit* block sizes, so integration tests can force multi-cell
/// grids (and real panel sharing) on shapes small enough to proptest.
/// Semantics match the public entry points, which always use the tuned
/// [`block_sizes`].
#[doc(hidden)]
pub mod hooks {
    use super::*;

    /// 2D-parallel plain gemm with explicit blocking. Returns the call's
    /// cooperative-packing stats.
    pub fn gemm_2d_with_blocks<T: Scalar>(
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        c: MatMut<'_, T>,
        threads: usize,
        bs: BlockSizes,
    ) -> Result<ParStats, PoolError> {
        gemm_2d(alpha, Side::Plain(a), Side::Plain(b), beta, c, threads, bs)
    }

    /// 2D-parallel fused gemm with explicit blocking. Returns the call's
    /// cooperative-packing stats.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_combined_2d_with_blocks<T: Scalar>(
        alpha: T,
        a_terms: &[(T, MatRef<'_, T>)],
        b_terms: &[(T, MatRef<'_, T>)],
        beta: T,
        c: MatMut<'_, T>,
        threads: usize,
        bs: BlockSizes,
    ) -> Result<ParStats, PoolError> {
        assert!(!a_terms.is_empty() && !b_terms.is_empty());
        gemm_2d(
            alpha,
            Side::Terms(a_terms),
            Side::Terms(b_terms),
            beta,
            c,
            threads,
            bs,
        )
    }

    /// Single-threaded reference with the same explicit blocking.
    pub fn gemm_st_with_blocks<T: Scalar>(
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        c: MatMut<'_, T>,
        bs: BlockSizes,
    ) {
        run_st_with_blocks(alpha, Side::Plain(a), Side::Plain(b), beta, c, bs);
    }

    /// Single-threaded fused reference with the same explicit blocking.
    pub fn gemm_combined_st_with_blocks<T: Scalar>(
        alpha: T,
        a_terms: &[(T, MatRef<'_, T>)],
        b_terms: &[(T, MatRef<'_, T>)],
        beta: T,
        c: MatMut<'_, T>,
        bs: BlockSizes,
    ) {
        run_st_with_blocks(
            alpha,
            Side::Terms(a_terms),
            Side::Terms(b_terms),
            beta,
            c,
            bs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::matmul_naive;

    fn rand_mat<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Mat<T> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            T::from_f64(((state >> 32) as u32 as f64 / (1u64 << 31) as f64) - 1.0)
        })
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = rand_mat::<f32>(97, 53, 1);
        let b = rand_mat::<f32>(53, 41, 2);
        let seq = matmul_par(a.as_ref(), b.as_ref(), Par::Seq);
        for threads in [2, 3, 4] {
            let par = matmul_par(a.as_ref(), b.as_ref(), Par::Threads(threads));
            assert!(par.rel_frobenius_error(&seq) < 1e-6, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_naive_f64() {
        let a = rand_mat::<f64>(64, 80, 3);
        let b = rand_mat::<f64>(80, 48, 4);
        let got = matmul_par(a.as_ref(), b.as_ref(), Par::Threads(4));
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-12);
    }

    #[test]
    fn beta_accumulation_under_parallelism() {
        let a = rand_mat::<f64>(32, 32, 5);
        let b = rand_mat::<f64>(32, 32, 6);
        let c0 = rand_mat::<f64>(32, 32, 7);
        let mut c = c0.clone();
        gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c.as_mut(),
            Par::Threads(3),
        );
        let ab = matmul_naive(a.as_ref(), b.as_ref());
        for i in 0..32 {
            for j in 0..32 {
                assert!((c.at(i, j) - (ab.at(i, j) + c0.at(i, j))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let a = rand_mat::<f32>(3, 10, 8);
        let b = rand_mat::<f32>(10, 5, 9);
        let got = matmul_par(a.as_ref(), b.as_ref(), Par::Threads(8));
        let expect = matmul_naive(a.as_ref(), b.as_ref());
        assert!(got.rel_frobenius_error(&expect) < 1e-6);
    }

    #[test]
    fn combined_parallel_matches_sequential_bitwise() {
        let a0 = rand_mat::<f32>(67, 41, 30);
        let a1 = rand_mat::<f32>(67, 41, 31);
        let b0 = rand_mat::<f32>(41, 53, 32);
        let b1 = rand_mat::<f32>(41, 53, 33);
        let a_terms = [(1.0f32, a0.as_ref()), (-0.5, a1.as_ref())];
        let b_terms = [(0.25f32, b0.as_ref()), (2.0, b1.as_ref())];
        let mut seq = Mat::<f32>::zeros(67, 53);
        gemm_combined(1.0, &a_terms, &b_terms, 0.0, seq.as_mut(), Par::Seq);
        for threads in [2, 3, 4] {
            let mut par = Mat::<f32>::zeros(67, 53);
            gemm_combined(
                1.0,
                &a_terms,
                &b_terms,
                0.0,
                par.as_mut(),
                Par::Threads(threads),
            );
            // Cells run the same per-element FMA chains as the ST loop
            // nest, so the decomposition never changes a single bit.
            for i in 0..67 {
                for j in 0..53 {
                    assert_eq!(
                        par.at(i, j).to_bits(),
                        seq.at(i, j).to_bits(),
                        "threads={threads} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn awkward_shapes_match_naive_under_parallelism() {
        for &(m, threads) in &[(64usize, 6usize), (65, 7), (17, 5), (9, 8), (33, 2)] {
            let a = rand_mat::<f64>(m, 40, m as u64);
            let b = rand_mat::<f64>(40, 31, threads as u64);
            let got = matmul_par(a.as_ref(), b.as_ref(), Par::Threads(threads));
            let expect = matmul_naive(a.as_ref(), b.as_ref());
            assert!(
                got.rel_frobenius_error(&expect) < 1e-12,
                "m={m} threads={threads}"
            );
        }
    }

    #[test]
    fn empty_matrices_are_noops() {
        let a = Mat::<f32>::zeros(0, 5);
        let b = Mat::<f32>::zeros(5, 4);
        let mut c = Mat::<f32>::zeros(0, 4);
        gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
            Par::Threads(2),
        );
    }

    #[test]
    fn k_zero_scales_in_parallel() {
        // k = 0 means the cells only apply β; the arena has zero slabs
        // and must never be consulted.
        let a = Mat::<f64>::zeros(40, 0);
        let b = Mat::<f64>::zeros(0, 40);
        let mut c = Mat::from_fn(40, 40, |i, j| (i + 2 * j) as f64);
        let orig = c.clone();
        let bs = BlockSizes {
            mc: 16,
            kc: 16,
            nc: 16,
        };
        hooks::gemm_2d_with_blocks(1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut(), 4, bs).unwrap();
        for i in 0..40 {
            for j in 0..40 {
                assert_eq!(c.at(i, j), 0.5 * orig.at(i, j));
            }
        }
    }

    #[test]
    fn multi_cell_grid_is_bitwise_equal_to_st() {
        // Small blocks force a real multi-cell grid (3×3 cells, 2 slabs)
        // so panel sharing and stealing actually engage.
        let bs = BlockSizes {
            mc: 24,
            kc: 32,
            nc: 24,
        };
        let a = rand_mat::<f32>(70, 50, 40);
        let b = rand_mat::<f32>(50, 60, 41);
        let mut want = rand_mat::<f32>(70, 60, 42);
        let mut got = want.clone();
        hooks::gemm_st_with_blocks(1.25, a.as_ref(), b.as_ref(), -0.5, want.as_mut(), bs);
        hooks::gemm_2d_with_blocks(1.25, a.as_ref(), b.as_ref(), -0.5, got.as_mut(), 4, bs)
            .unwrap();
        for i in 0..70 {
            for j in 0..60 {
                assert_eq!(got.at(i, j).to_bits(), want.at(i, j).to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn shared_panels_are_packed_once_per_call() {
        let bs = BlockSizes {
            mc: 16,
            kc: 64,
            nc: 32,
        };
        let a = rand_mat::<f64>(64, 64, 50);
        let b = rand_mat::<f64>(64, 64, 51);
        let mut c = Mat::<f64>::zeros(64, 64);
        let stats = hooks::gemm_2d_with_blocks(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), 4, bs)
            .unwrap();
        // Grid: icb=4, jcb=2, slabs=1 → exactly jcb·slabs = 2 panels
        // packed once each; every one of the 8 cells fetches its panel
        // exactly once.
        assert_eq!(
            stats.panels_packed, 2,
            "each (jc, pc) panel must be packed exactly once: {stats:?}"
        );
        assert_eq!(
            stats.panels_packed + stats.panels_reused,
            8,
            "every cell fetches its panel exactly once (4 ic × 2 jc × 1 slab): {stats:?}"
        );
    }

    #[test]
    fn seq_path_performs_zero_parallel_ops() {
        let a = rand_mat::<f32>(40, 30, 60);
        let b = rand_mat::<f32>(30, 20, 61);
        let mut c = Mat::<f32>::zeros(40, 20);
        // Warm caches so lazy init doesn't count.
        gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), Par::Seq);
        let before = thread_par_ops();
        gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut(), Par::Seq);
        gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
            Par::Threads(1),
        );
        gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
            Par::Threads(0),
        );
        assert_eq!(
            thread_par_ops(),
            before,
            "single-threaded calls must never touch claim/queue machinery"
        );
    }
}
